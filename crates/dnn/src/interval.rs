//! Interval (perturbation-aware) forward evaluation — §IV-D of the paper.
//!
//! When PAS has retrieved only the high-order byte planes of the weights,
//! each weight is known to lie in an interval `[w_min, w_max]`. This module
//! evaluates the network carrying 2-D perturbation bounds instead of point
//! activations, and implements the error-determinism condition (Lemma 4):
//! if one class's lower output bound exceeds every other class's upper
//! bound, the prediction is certain and the low-order bytes never need to
//! be read.

use crate::forward::activate;
use crate::layer::{LayerKind, PoolKind};
use crate::network::{Network, NetworkError};
use crate::simd;
use crate::weights::Weights;
use mh_tensor::{Matrix, Tensor3};
use std::collections::BTreeMap;

/// An activation tensor with elementwise lower/upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalTensor {
    pub lo: Tensor3,
    pub hi: Tensor3,
}

impl IntervalTensor {
    /// Exact (zero-width) interval around a tensor.
    pub fn exact(t: &Tensor3) -> Self {
        Self {
            lo: t.clone(),
            hi: t.clone(),
        }
    }

    pub fn shape(&self) -> (usize, usize, usize) {
        self.lo.shape()
    }

    /// Maximum interval width across elements.
    pub fn max_width(&self) -> f32 {
        self.lo
            .as_slice()
            .iter()
            .zip(self.hi.as_slice())
            .map(|(l, h)| h - l)
            .fold(0.0, f32::max)
    }

    /// Every element's interval must be non-empty.
    pub fn is_valid(&self) -> bool {
        self.lo
            .as_slice()
            .iter()
            .zip(self.hi.as_slice())
            .all(|(l, h)| l <= h && l.is_finite() && h.is_finite())
    }

    /// Whether `t` lies within the bounds elementwise.
    pub fn contains(&self, t: &Tensor3) -> bool {
        self.lo
            .as_slice()
            .iter()
            .zip(self.hi.as_slice())
            .zip(t.as_slice())
            .all(|((l, h), x)| l <= x && x <= h)
    }
}

/// Weight bounds per parametric layer: `(W_min, W_max)`.
#[derive(Debug, Clone, Default)]
pub struct IntervalWeights {
    pub bounds: BTreeMap<String, (Matrix, Matrix)>,
}

impl IntervalWeights {
    /// Zero-width intervals from exact weights.
    pub fn exact(w: &Weights) -> Self {
        Self {
            bounds: w
                .layers()
                .map(|(n, m)| (n.clone(), (m.clone(), m.clone())))
                .collect(),
        }
    }

    pub fn insert(&mut self, layer: &str, lo: Matrix, hi: Matrix) {
        assert_eq!(lo.shape(), hi.shape(), "interval bound shapes differ");
        self.bounds.insert(layer.to_string(), (lo, hi));
    }

    pub fn get(&self, layer: &str) -> Option<(&Matrix, &Matrix)> {
        self.bounds.get(layer).map(|(l, h)| (l, h))
    }
}

/// Interval product bound: `[wl,wh] * x` for exact `x >= or < 0`, or the
/// general four-product min/max.
#[inline]
fn imul(wl: f32, wh: f32, xl: f32, xh: f32) -> (f32, f32) {
    // General case: extremes among the four corner products.
    let a = wl * xl;
    let b = wl * xh;
    let c = wh * xl;
    let d = wh * xh;
    (a.min(b).min(c).min(d), a.max(b).max(c).max(d))
}

/// Evaluate the network on an exact input with interval weights, returning
/// bounds on the final activation.
pub fn interval_forward(
    net: &Network,
    iw: &IntervalWeights,
    input: &Tensor3,
) -> Result<IntervalTensor, NetworkError> {
    let order = net.topo_order()?;
    let input_id = net.input_node()?;
    let mut acts: BTreeMap<usize, IntervalTensor> = BTreeMap::new();
    let mut last = input_id;
    for id in order {
        let node = net.node(id)?;
        let x = if id == input_id {
            IntervalTensor::exact(input)
        } else {
            let prev = net.prev(id);
            if prev.len() != 1 {
                return Err(NetworkError::NotAChain {
                    node: node.name.clone(),
                });
            }
            acts[&prev[0]].clone()
        };
        let y = apply_interval_layer(&node.kind, &node.name, iw, &x)?;
        acts.insert(id, y);
        last = id;
    }
    Ok(acts.remove(&last).expect("last node evaluated"))
}

fn apply_interval_layer(
    kind: &LayerKind,
    name: &str,
    iw: &IntervalWeights,
    x: &IntervalTensor,
) -> Result<IntervalTensor, NetworkError> {
    let missing = || NetworkError::ShapeMismatch {
        node: name.to_string(),
    };
    match *kind {
        LayerKind::Input { .. } => Ok(x.clone()),
        LayerKind::Full { out } => {
            let (wl, wh) = iw.get(name).ok_or_else(missing)?;
            let n_in = x.lo.len();
            if wl.cols() != n_in + 1 || wl.rows() != out {
                return Err(missing());
            }
            let mut lo = Tensor3::zeros(out, 1, 1);
            let mut hi = Tensor3::zeros(out, 1, 1);
            for o in 0..out {
                let rl = wl.row(o);
                let rh = wh.row(o);
                // Same lane-structured kernel as the exact forward path:
                // a zero-width interval reproduces forward's dot product
                // bit-for-bit, so containment of the exact output holds
                // with equality rather than by a tolerance.
                let (acc_l, acc_h) = simd::interval_dot_bias(
                    &rl[..n_in],
                    &rh[..n_in],
                    x.lo.as_slice(),
                    x.hi.as_slice(),
                    rl[n_in],
                    rh[n_in],
                );
                lo.as_mut_slice()[o] = acc_l;
                hi.as_mut_slice()[o] = acc_h;
            }
            Ok(IntervalTensor { lo, hi })
        }
        LayerKind::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        } => {
            let (wl, wh) = iw.get(name).ok_or_else(missing)?;
            let in_shape = x.lo.shape();
            let (oc, oh, ow) = kind.output_shape(in_shape).ok_or_else(missing)?;
            let in_c = in_shape.0;
            if wl.shape() != (out_channels, in_c * kernel * kernel + 1) {
                return Err(missing());
            }
            let bias_col = in_c * kernel * kernel;
            let mut lo = Tensor3::zeros(oc, oh, ow);
            let mut hi = Tensor3::zeros(oc, oh, ow);
            for o in 0..oc {
                let rl = wl.row(o);
                let rh = wh.row(o);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc_l = rl[bias_col];
                        let mut acc_h = rh[bias_col];
                        let y0 = (oy * stride) as isize - pad as isize;
                        let x0 = (ox * stride) as isize - pad as isize;
                        for ic in 0..in_c {
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    let yy = y0 + ky as isize;
                                    let xx = x0 + kx as isize;
                                    let (xl, xh) =
                                        (x.lo.get_padded(ic, yy, xx), x.hi.get_padded(ic, yy, xx));
                                    if xl == 0.0 && xh == 0.0 {
                                        continue;
                                    }
                                    let widx = (ic * kernel + ky) * kernel + kx;
                                    let (pl, ph) = imul(rl[widx], rh[widx], xl, xh);
                                    acc_l += pl;
                                    acc_h += ph;
                                }
                            }
                        }
                        lo.set(o, oy, ox, acc_l);
                        hi.set(o, oy, ox, acc_h);
                    }
                }
            }
            Ok(IntervalTensor { lo, hi })
        }
        LayerKind::Pool {
            kind: pk,
            size,
            stride,
        } => {
            let (c, _, _) = x.lo.shape();
            let (_, oh, ow) = kind.output_shape(x.lo.shape()).ok_or_else(missing)?;
            let mut lo = Tensor3::zeros(c, oh, ow);
            let mut hi = Tensor3::zeros(c, oh, ow);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let (mut best_l, mut best_h) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
                        let (mut sum_l, mut sum_h) = (0.0f32, 0.0f32);
                        for ky in 0..size {
                            for kx in 0..size {
                                let l = x.lo.get(ch, oy * stride + ky, ox * stride + kx);
                                let h = x.hi.get(ch, oy * stride + ky, ox * stride + kx);
                                best_l = best_l.max(l);
                                best_h = best_h.max(h);
                                sum_l += l;
                                sum_h += h;
                            }
                        }
                        let (l, h) = match pk {
                            // max is monotone: bound by max of los / max of his.
                            PoolKind::Max => (best_l, best_h),
                            PoolKind::Avg => {
                                let n = (size * size) as f32;
                                (sum_l / n, sum_h / n)
                            }
                        };
                        lo.set(ch, oy, ox, l);
                        hi.set(ch, oy, ox, h);
                    }
                }
            }
            Ok(IntervalTensor { lo, hi })
        }
        LayerKind::Act(a) => {
            // All supported activations are monotone non-decreasing.
            Ok(IntervalTensor {
                lo: x.lo.map(|v| activate(a, v)),
                hi: x.hi.map(|v| activate(a, v)),
            })
        }
        LayerKind::Flatten | LayerKind::Dropout { .. } => {
            let n = x.lo.len();
            Ok(IntervalTensor {
                lo: Tensor3::from_vec(n, 1, 1, x.lo.as_slice().to_vec()),
                hi: Tensor3::from_vec(n, 1, 1, x.hi.as_slice().to_vec()),
            })
        }
        LayerKind::Lrn {
            size,
            alpha,
            beta,
            k,
        } => {
            // y = x · b^{-β} with b ≥ k > 0. Bound b from the squared
            // interval extremes, then take the four-corner extremes of the
            // quotient (x may straddle zero, so all corners matter).
            let (c, h, w) = x.lo.shape();
            let scale = alpha / size as f32;
            let mut lo = Tensor3::zeros(c, h, w);
            let mut hi = Tensor3::zeros(c, h, w);
            for yy in 0..h {
                for xx in 0..w {
                    for i in 0..c {
                        let (wl, wh) = crate::forward::lrn_window(i, c, size);
                        let (mut b_lo, mut b_hi) = (k, k);
                        for j in wl..wh {
                            let (l, hgh) = (x.lo.get(j, yy, xx), x.hi.get(j, yy, xx));
                            // Square bounds: min is 0 if the interval
                            // straddles zero.
                            let sq_hi = (l * l).max(hgh * hgh);
                            let sq_lo = if l <= 0.0 && hgh >= 0.0 {
                                0.0
                            } else {
                                (l * l).min(hgh * hgh)
                            };
                            b_lo += scale * sq_lo;
                            b_hi += scale * sq_hi;
                        }
                        let (f_lo, f_hi) = (b_hi.powf(-beta), b_lo.powf(-beta)); // decreasing
                        let (xl, xh) = (x.lo.get(i, yy, xx), x.hi.get(i, yy, xx));
                        let corners = [xl * f_lo, xl * f_hi, xh * f_lo, xh * f_hi];
                        lo.set(
                            i,
                            yy,
                            xx,
                            corners.iter().copied().fold(f32::INFINITY, f32::min),
                        );
                        hi.set(
                            i,
                            yy,
                            xx,
                            corners.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                        );
                    }
                }
            }
            Ok(IntervalTensor { lo, hi })
        }
        LayerKind::Softmax => {
            // p_i = exp(o_i) / sum_j exp(o_j). Lower bound: own logit at lo,
            // competitors at hi; upper bound: the reverse.
            let n = x.lo.len();
            let lo_in = x.lo.as_slice();
            let hi_in = x.hi.as_slice();
            // Stabilize with the global max upper bound.
            let m = hi_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp_lo: Vec<f32> = lo_in.iter().map(|&v| (v - m).exp()).collect();
            let exp_hi: Vec<f32> = hi_in.iter().map(|&v| (v - m).exp()).collect();
            let sum_hi: f32 = exp_hi.iter().sum();
            let sum_lo: f32 = exp_lo.iter().sum();
            let mut lo = Vec::with_capacity(n);
            let mut hi = Vec::with_capacity(n);
            for i in 0..n {
                // With very wide logit bounds the exponentials can
                // underflow to 0, making these ratios 0/0; fall back to the
                // trivially sound probability bounds in that case.
                let dl = exp_lo[i] + (sum_hi - exp_hi[i]);
                let l = if dl > 0.0 { exp_lo[i] / dl } else { 0.0 };
                let dh = exp_hi[i] + (sum_lo - exp_lo[i]);
                let h = if dh > 0.0 {
                    (exp_hi[i] / dh).min(1.0)
                } else {
                    1.0
                };
                // The denominators above re-associate the exp sum, so the
                // ratios can land a few ulps on the wrong side of the true
                // worst case; widen outward to keep the bounds sound.
                let slack = 4.0 * f32::EPSILON;
                lo.push((l.min(h) * (1.0 - slack)).max(0.0));
                hi.push((h * (1.0 + slack)).min(1.0));
            }
            Ok(IntervalTensor {
                lo: Tensor3::from_vec(n, 1, 1, lo),
                hi: Tensor3::from_vec(n, 1, 1, hi),
            })
        }
    }
}

/// Lemma 4 generalized to top-k: the top-k prediction set is *determined*
/// iff the k-th largest lower bound exceeds the largest upper bound of
/// every index outside the candidate set. Returns the determined indices
/// (sorted by lower bound, descending) or `None` if low-order bytes are
/// needed.
pub fn determined_top_k(out: &IntervalTensor, k: usize) -> Option<Vec<usize>> {
    let n = out.lo.len();
    if k == 0 || k > n {
        return None;
    }
    // Any non-finite bound means the interval evaluation lost precision
    // entirely; never declare determination from it (f32::max would
    // silently drop NaNs below).
    if !out.is_valid() {
        return None;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| out.lo.as_slice()[b].total_cmp(&out.lo.as_slice()[a]));
    let candidates = &idx[..k];
    let threshold = out.lo.as_slice()[candidates[k - 1]];
    let rest_max = idx[k..]
        .iter()
        .map(|&i| out.hi.as_slice()[i])
        .fold(f32::NEG_INFINITY, f32::max);
    if threshold > rest_max {
        Some(candidates.to_vec())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward;
    use crate::layer::{Activation, LayerKind, PoolKind};
    use crate::network::Network;
    use crate::weights::Weights;
    use mh_tensor::SegmentedMatrix;

    fn tiny() -> (Network, Weights) {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 6,
                width: 6,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 4 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let w = Weights::init(&n, 11).unwrap();
        (n, w)
    }

    fn sample_input() -> Tensor3 {
        Tensor3::from_vec(
            1,
            6,
            6,
            (0..36).map(|i| ((i as f32) * 0.41).cos()).collect(),
        )
    }

    #[test]
    fn exact_intervals_match_point_forward() {
        let (n, w) = tiny();
        let x = sample_input();
        let exact = forward(&n, &w, &x).unwrap();
        let iv = interval_forward(&n, &IntervalWeights::exact(&w), &x).unwrap();
        for i in 0..exact.len() {
            assert!((iv.lo.as_slice()[i] - exact.as_slice()[i]).abs() < 1e-5);
            assert!((iv.hi.as_slice()[i] - exact.as_slice()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn true_output_always_inside_bounds() {
        let (n, w) = tiny();
        let x = sample_input();
        let exact = forward(&n, &w, &x).unwrap();
        for planes in 1..=4usize {
            let mut iw = IntervalWeights::default();
            for (name, m) in w.layers() {
                let seg = SegmentedMatrix::from_matrix(m);
                let (lo, hi) = seg.bounds(planes);
                iw.insert(name, lo, hi);
            }
            let iv = interval_forward(&n, &iw, &x).unwrap();
            assert!(iv.is_valid());
            assert!(
                iv.contains(&exact),
                "true output escapes bounds at {planes} planes"
            );
        }
    }

    #[test]
    fn bounds_tighten_with_more_planes() {
        let (n, w) = tiny();
        let x = sample_input();
        let mut widths = Vec::new();
        for planes in 1..=4usize {
            let mut iw = IntervalWeights::default();
            for (name, m) in w.layers() {
                let (lo, hi) = SegmentedMatrix::from_matrix(m).bounds(planes);
                iw.insert(name, lo, hi);
            }
            let iv = interval_forward(&n, &iw, &x).unwrap();
            widths.push(iv.max_width());
        }
        assert!(widths[0] >= widths[1] && widths[1] >= widths[2] && widths[2] >= widths[3]);
        assert!(
            widths[3] < 1e-5,
            "full precision width ~0, got {}",
            widths[3]
        );
    }

    #[test]
    fn determinism_condition() {
        // Clearly separated intervals.
        let iv = IntervalTensor {
            lo: Tensor3::from_vec(3, 1, 1, vec![0.8, 0.0, 0.1]),
            hi: Tensor3::from_vec(3, 1, 1, vec![0.9, 0.3, 0.2]),
        };
        assert_eq!(determined_top_k(&iv, 1), Some(vec![0]));
        // Overlapping: 2nd candidate's hi exceeds winner's lo.
        let iv2 = IntervalTensor {
            lo: Tensor3::from_vec(3, 1, 1, vec![0.5, 0.0, 0.1]),
            hi: Tensor3::from_vec(3, 1, 1, vec![0.9, 0.6, 0.2]),
        };
        assert_eq!(determined_top_k(&iv2, 1), None);
        // Top-2 of the first example: {0, 1}? lo order: 0 (0.8), 2 (0.1), 1 (0.0)
        // candidates {0,2}, threshold 0.1, rest max = hi[1] = 0.3 -> undetermined.
        assert_eq!(determined_top_k(&iv, 2), None);
    }

    #[test]
    fn determinism_with_exact_weights_matches_prediction() {
        let (n, w) = tiny();
        let x = sample_input();
        let iv = interval_forward(&n, &IntervalWeights::exact(&w), &x).unwrap();
        let pred = forward(&n, &w, &x).unwrap().argmax();
        let det = determined_top_k(&iv, 1).expect("exact weights must be determined");
        assert_eq!(det[0], pred);
    }

    #[test]
    fn softmax_interval_probabilities_valid() {
        let iv_in = IntervalTensor {
            lo: Tensor3::from_vec(3, 1, 1, vec![1.0, -1.0, 0.0]),
            hi: Tensor3::from_vec(3, 1, 1, vec![1.5, -0.5, 0.5]),
        };
        let out = apply_interval_layer(
            &LayerKind::Softmax,
            "p",
            &IntervalWeights::default(),
            &iv_in,
        )
        .unwrap();
        assert!(out.is_valid());
        for (l, h) in out.lo.as_slice().iter().zip(out.hi.as_slice()) {
            assert!(*l >= 0.0 && *h <= 1.0 && l <= h);
        }
    }

    #[test]
    fn interval_multiplication_corner_cases() {
        assert_eq!(imul(-1.0, 2.0, -3.0, 1.0), (-6.0, 3.0));
        assert_eq!(imul(0.0, 0.0, -5.0, 5.0), (0.0, 0.0));
        assert_eq!(imul(2.0, 3.0, 4.0, 5.0), (8.0, 15.0));
        assert_eq!(imul(-3.0, -2.0, 4.0, 5.0), (-15.0, -8.0));
    }
}
