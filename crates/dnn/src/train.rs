//! SGD training: the "train/test model" stage of the lifecycle loop.
//!
//! Produces exactly the artifacts ModelHub manages: checkpointed weight
//! snapshots, per-iteration loss/accuracy logs, and the hyperparameters
//! that generated them.

use crate::backward::{backward_from_trace, cross_entropy, Gradients};
use crate::data::Dataset;
use crate::forward::{accuracy, forward_trace};
use crate::layer::LayerKind;
use crate::network::{Network, NetworkError};
use crate::weights::Weights;
use mh_tensor::Matrix;
use std::collections::BTreeMap;

/// Optimizer hyperparameters (the `H` the paper's catalog records).
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperparams {
    pub base_lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    pub batch_size: usize,
    /// Multiplicative lr decay applied every `lr_step` iterations (1.0 = none).
    pub lr_gamma: f32,
    pub lr_step: usize,
    /// Per-layer learning-rate multipliers (DQL `config.net["conv*"].lr`).
    pub layer_lr: BTreeMap<String, f32>,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 8,
            lr_gamma: 1.0,
            lr_step: 1000,
            layer_lr: BTreeMap::new(),
        }
    }
}

/// One measurement row extracted into the metadata catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    pub iteration: usize,
    pub loss: f32,
    /// Test accuracy, measured only at snapshot iterations.
    pub accuracy: Option<f32>,
    pub lr: f32,
}

/// The result of a training run: final weights, checkpointed snapshots, and
/// the training log.
#[derive(Debug, Clone)]
pub struct TrainResult {
    pub weights: Weights,
    /// `(iteration, weights)` checkpoints, oldest first, including the final
    /// iteration.
    pub snapshots: Vec<(usize, Weights)>,
    pub log: Vec<LogEntry>,
    /// Test accuracy of the final weights.
    pub final_accuracy: f32,
}

/// SGD trainer with momentum, weight decay and snapshotting.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    pub hp: Hyperparams,
    /// Checkpoint every N iterations (0 = only the final snapshot).
    pub snapshot_every: usize,
}

impl Trainer {
    pub fn new(hp: Hyperparams) -> Self {
        Self {
            hp,
            snapshot_every: 0,
        }
    }

    /// Train for `iterations` minibatch steps starting from `init`.
    pub fn train(
        &self,
        net: &Network,
        init: Weights,
        data: &Dataset,
        iterations: usize,
    ) -> Result<TrainResult, NetworkError> {
        init.validate(net)?;
        let mut weights = init;
        let mut velocity: BTreeMap<String, Matrix> = weights
            .layers()
            .map(|(n, m)| (n.clone(), Matrix::zeros(m.rows(), m.cols())))
            .collect();
        let mut log = Vec::new();
        let mut snapshots = Vec::new();
        let n_train = data.train.len();
        if n_train == 0 {
            return Err(NetworkError::BadInput);
        }
        let mut cursor = 0usize;
        for iter in 0..iterations {
            let lr = self.hp.base_lr
                * self
                    .hp
                    .lr_gamma
                    .powi((iter / self.hp.lr_step.max(1)) as i32);
            // Accumulate gradients over the minibatch.
            let mut acc = Gradients::default();
            for _ in 0..self.hp.batch_size {
                let (x, label) = &data.train[cursor];
                cursor = (cursor + 1) % n_train;
                let trace = forward_trace(net, &weights, x)?;
                let g = backward_from_trace(net, &weights, x, *label, &trace)?;
                acc.accumulate(&g);
            }
            acc.scale(1.0 / self.hp.batch_size as f32);

            // SGD update with momentum and L2 weight decay.
            for (name, g) in &acc.mats {
                let layer_mult = self.hp.layer_lr.get(name).copied().unwrap_or(1.0);
                if layer_mult == 0.0 {
                    continue; // frozen layer
                }
                let w = weights.get_mut(name).expect("validated above");
                let v = velocity.get_mut(name).expect("same key set");
                let eff_lr = lr * layer_mult;
                let vs = v.as_mut_slice();
                let ws = w.as_mut_slice();
                for ((vi, wi), gi) in vs.iter_mut().zip(ws.iter_mut()).zip(g.as_slice()) {
                    *vi = self.hp.momentum * *vi - eff_lr * (gi + self.hp.weight_decay * *wi);
                    *wi += *vi;
                }
            }

            let snap_due = self.snapshot_every > 0 && (iter + 1) % self.snapshot_every == 0;
            let acc_now = if snap_due {
                Some(accuracy(net, &weights, &data.test)?)
            } else {
                None
            };
            log.push(LogEntry {
                iteration: iter + 1,
                loss: acc.loss,
                accuracy: acc_now,
                lr,
            });
            if snap_due {
                snapshots.push((iter + 1, weights.clone()));
            }
        }
        let final_accuracy = accuracy(net, &weights, &data.test)?;
        if snapshots.last().map(|(i, _)| *i) != Some(iterations) {
            snapshots.push((iterations, weights.clone()));
        }
        Ok(TrainResult {
            weights,
            snapshots,
            log,
            final_accuracy,
        })
    }

    /// Evaluate mean loss over a labelled set without updating weights.
    pub fn eval_loss(
        &self,
        net: &Network,
        weights: &Weights,
        data: &[(mh_tensor::Tensor3, usize)],
    ) -> Result<f32, NetworkError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for (x, label) in data {
            let t = forward_trace(net, weights, x)?;
            total += cross_entropy(&t.output, *label);
        }
        Ok(total / data.len() as f32)
    }
}

/// Fine-tuning (§II "Model Adjustment"): reuse trained weights, replace the
/// final fully-connected layer for a new label count, and return the new
/// network + warm-started weights. The replaced layer gets a fresh
/// initialization; everything else is copied.
pub fn fine_tune_setup(
    net: &Network,
    trained: &Weights,
    new_classes: usize,
    seed: u64,
) -> Result<(Network, Weights), NetworkError> {
    let mut new_net = net.clone();
    // Find the last parametric Full layer.
    let order = new_net.topo_order()?;
    let last_full = order
        .iter()
        .rev()
        .find(|id| {
            matches!(
                new_net.node(**id).map(|n| &n.kind),
                Ok(LayerKind::Full { .. })
            )
        })
        .copied()
        .ok_or(NetworkError::BadInput)?;
    let old_name = new_net.node(last_full)?.name.clone();
    // Mutate the layer in place by replacing its kind: delete + insert keeps
    // names stable for the unchanged layers.
    let prev = new_net.prev(last_full);
    let next = new_net.next(last_full);
    new_net.delete_node(last_full)?;
    let new_name = format!("{old_name}_ft");
    let new_id = new_net.add_layer(&new_name, LayerKind::Full { out: new_classes })?;
    for p in prev {
        // delete_node() bridged prev->next; remove the bridges.
        for n in &next {
            let _ = new_net_remove_edge(&mut new_net, p, *n);
        }
        new_net.connect(p, new_id)?;
    }
    for n in next {
        new_net.connect(new_id, n)?;
    }

    let fresh = Weights::init(&new_net, seed)?;
    let mut w = Weights::new();
    for (name, m) in fresh.layers() {
        if name == &new_name {
            w.insert(name, m.clone());
        } else if let Some(old) = trained.get(name) {
            w.insert(name, old.clone());
        } else {
            w.insert(name, m.clone());
        }
    }
    Ok((new_net, w))
}

fn new_net_remove_edge(net: &mut Network, from: usize, to: usize) -> bool {
    // Network has no public edge-removal; emulate by deleting and
    // reinserting is overkill, so expose through this helper using
    // delete-free reconnect semantics.
    net.remove_edge(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synth_dataset, SynthConfig};
    use crate::layer::{Activation, PoolKind};

    fn tiny_net(classes: usize) -> Network {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 8,
                width: 8,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: classes }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        n
    }

    fn tiny_data(classes: usize) -> Dataset {
        synth_dataset(&SynthConfig {
            num_classes: classes,
            height: 8,
            width: 8,
            train_per_class: 12,
            test_per_class: 6,
            noise: 0.05,
            seed: 3,
        })
    }

    #[test]
    fn training_learns_the_task() {
        let net = tiny_net(3);
        let data = tiny_data(3);
        let init = Weights::init(&net, 1).unwrap();
        let before = accuracy(&net, &init, &data.test).unwrap();
        let trainer = Trainer::new(Hyperparams {
            base_lr: 0.1,
            ..Default::default()
        });
        let result = trainer.train(&net, init, &data, 60).unwrap();
        assert!(
            result.final_accuracy > before.max(0.5),
            "accuracy {} should beat initial {}",
            result.final_accuracy,
            before
        );
        assert_eq!(result.log.len(), 60);
        // Loss trend: mean of last 10 below mean of first 10.
        let first: f32 = result.log[..10].iter().map(|e| e.loss).sum::<f32>() / 10.0;
        let last: f32 = result.log[50..].iter().map(|e| e.loss).sum::<f32>() / 10.0;
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn snapshots_taken_at_interval() {
        let net = tiny_net(2);
        let data = tiny_data(2);
        let init = Weights::init(&net, 1).unwrap();
        let trainer = Trainer {
            snapshot_every: 5,
            ..Default::default()
        };
        let result = trainer.train(&net, init, &data, 20).unwrap();
        let iters: Vec<usize> = result.snapshots.iter().map(|(i, _)| *i).collect();
        assert_eq!(iters, vec![5, 10, 15, 20]);
        // Adjacent snapshots are close but not identical.
        let d01 = result.snapshots[0].1.distance(&result.snapshots[1].1);
        assert!(d01 > 0.0);
    }

    #[test]
    fn frozen_layer_does_not_move() {
        let net = tiny_net(2);
        let data = tiny_data(2);
        let init = Weights::init(&net, 1).unwrap();
        let conv_before = init.get("conv1").unwrap().clone();
        let mut hp = Hyperparams::default();
        hp.layer_lr.insert("conv1".into(), 0.0);
        let trainer = Trainer::new(hp);
        let result = trainer.train(&net, init, &data, 10).unwrap();
        assert_eq!(result.weights.get("conv1").unwrap(), &conv_before);
        assert_ne!(
            result.weights.get("fc1").unwrap(),
            Weights::init(&net, 1).unwrap().get("fc1").unwrap()
        );
    }

    #[test]
    fn lr_schedule_decays() {
        let net = tiny_net(2);
        let data = tiny_data(2);
        let init = Weights::init(&net, 1).unwrap();
        let hp = Hyperparams {
            base_lr: 0.1,
            lr_gamma: 0.5,
            lr_step: 5,
            ..Default::default()
        };
        let trainer = Trainer::new(hp);
        let result = trainer.train(&net, init, &data, 12).unwrap();
        assert!((result.log[0].lr - 0.1).abs() < 1e-6);
        assert!((result.log[5].lr - 0.05).abs() < 1e-6);
        assert!((result.log[10].lr - 0.025).abs() < 1e-6);
    }

    #[test]
    fn fine_tune_reuses_feature_layers() {
        let net = tiny_net(3);
        let data = tiny_data(3);
        let init = Weights::init(&net, 1).unwrap();
        let trainer = Trainer::default();
        let result = trainer.train(&net, init, &data, 20).unwrap();

        let (ft_net, ft_w) = fine_tune_setup(&net, &result.weights, 5, 77).unwrap();
        assert_eq!(ft_w.get("conv1"), result.weights.get("conv1"));
        assert!(ft_w.get("fc1").is_none());
        let fc = ft_w.get("fc1_ft").unwrap();
        assert_eq!(fc.rows(), 5);
        ft_w.validate(&ft_net).unwrap();
        // The fine-tuned net trains on the new task.
        let data5 = tiny_data(5);
        let r2 = trainer.train(&ft_net, ft_w, &data5, 10).unwrap();
        assert_eq!(r2.log.len(), 10);
    }
}
