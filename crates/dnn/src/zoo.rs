//! Model zoo: architecture constructors.
//!
//! Two tiers:
//!
//! * **Full-scale descriptors** of the paper's Table I models (LeNet,
//!   AlexNet, VGG-16, ResNet pattern) — `Network` objects with the real
//!   published layer shapes, used for parameter counting and architecture
//!   strings; never trained here.
//! * **Scaled trainable models** (`lenet_s`, `alexnet_s`, `vgg_s`) sized
//!   for CPU training on synthetic data, preserving the architectural
//!   shape (conv/pool stacking depth, fc head) of their namesakes.

// Every constructor appends to a fresh linear network with fixed, hand-
// checked shapes; `append` cannot fail there, so unwraps are structural.
#![allow(clippy::unwrap_used)]

use crate::layer::{Activation, LayerKind, PoolKind};
use crate::network::Network;

fn conv(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> LayerKind {
    LayerKind::Conv {
        out_channels,
        kernel,
        stride,
        pad,
    }
}

fn maxpool(size: usize, stride: usize) -> LayerKind {
    LayerKind::Pool {
        kind: PoolKind::Max,
        size,
        stride,
    }
}

/// The classic LeNet of Fig. 2 (28×28 input, 431,080 parameters).
pub fn lenet() -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 1,
            height: 28,
            width: 28,
        },
    )
    .unwrap();
    n.append("conv1", conv(20, 5, 1, 0)).unwrap();
    n.append("pool1", maxpool(2, 2)).unwrap();
    n.append("conv2", conv(50, 5, 1, 0)).unwrap();
    n.append("pool2", maxpool(2, 2)).unwrap();
    n.append("ip1", LayerKind::Full { out: 500 }).unwrap();
    n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("ip2", LayerKind::Full { out: 10 }).unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// Full-scale AlexNet layer shapes (227×227×3 input), for Table I counting.
pub fn alexnet() -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 3,
            height: 227,
            width: 227,
        },
    )
    .unwrap();
    n.append("conv1", conv(96, 11, 4, 0)).unwrap();
    n.append("pool1", maxpool(3, 2)).unwrap();
    n.append("conv2", conv(256, 5, 1, 2)).unwrap();
    n.append("pool2", maxpool(3, 2)).unwrap();
    n.append("conv3", conv(384, 3, 1, 1)).unwrap();
    n.append("conv4", conv(384, 3, 1, 1)).unwrap();
    n.append("conv5", conv(256, 3, 1, 1)).unwrap();
    n.append("pool5", maxpool(3, 2)).unwrap();
    n.append("fc6", LayerKind::Full { out: 4096 }).unwrap();
    n.append("fc7", LayerKind::Full { out: 4096 }).unwrap();
    n.append("fc8", LayerKind::Full { out: 1000 }).unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// Full-scale VGG-16 layer shapes (224×224×3 input), for Table I counting.
pub fn vgg16() -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 3,
            height: 224,
            width: 224,
        },
    )
    .unwrap();
    let blocks: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (b, &(ch, reps)) in blocks.iter().enumerate() {
        for r in 0..reps {
            n.append(&format!("conv{}_{}", b + 1, r + 1), conv(ch, 3, 1, 1))
                .unwrap();
        }
        n.append(&format!("pool{}", b + 1), maxpool(2, 2)).unwrap();
    }
    n.append("fc6", LayerKind::Full { out: 4096 }).unwrap();
    n.append("fc7", LayerKind::Full { out: 4096 }).unwrap();
    n.append("fc8", LayerKind::Full { out: 1000 }).unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// Scaled LeNet for CPU training: 16×16 input, two conv/pool stages.
pub fn lenet_s(num_classes: usize) -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 1,
            height: 16,
            width: 16,
        },
    )
    .unwrap();
    n.append("conv1", conv(8, 3, 1, 0)).unwrap();
    n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("pool1", maxpool(2, 2)).unwrap();
    n.append("conv2", conv(16, 3, 1, 0)).unwrap();
    n.append("relu2", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("pool2", maxpool(2, 2)).unwrap();
    n.append("ip1", LayerKind::Full { out: 64 }).unwrap();
    n.append("relu3", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("ip2", LayerKind::Full { out: num_classes })
        .unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// Scaled AlexNet-like model (deeper conv stack, two fc layers).
pub fn alexnet_s(num_classes: usize) -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 1,
            height: 16,
            width: 16,
        },
    )
    .unwrap();
    n.append("conv1", conv(12, 3, 1, 1)).unwrap();
    n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("pool1", maxpool(2, 2)).unwrap();
    n.append(
        "norm1",
        LayerKind::Lrn {
            size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        },
    )
    .unwrap();
    n.append("conv2", conv(24, 3, 1, 1)).unwrap();
    n.append("relu2", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("conv3", conv(24, 3, 1, 1)).unwrap();
    n.append("relu3", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("pool2", maxpool(2, 2)).unwrap();
    n.append("fc6", LayerKind::Full { out: 128 }).unwrap();
    n.append("relu6", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("fc7", LayerKind::Full { out: 64 }).unwrap();
    n.append("relu7", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("fc8", LayerKind::Full { out: num_classes })
        .unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// Scaled VGG-like model (stacked 3×3 conv blocks, three fc layers).
pub fn vgg_s(num_classes: usize) -> Network {
    let mut n = Network::new();
    n.append(
        "data",
        LayerKind::Input {
            channels: 1,
            height: 16,
            width: 16,
        },
    )
    .unwrap();
    let blocks: &[(usize, usize)] = &[(16, 2), (32, 2)];
    for (b, &(ch, reps)) in blocks.iter().enumerate() {
        for r in 0..reps {
            n.append(&format!("conv{}_{}", b + 1, r + 1), conv(ch, 3, 1, 1))
                .unwrap();
            n.append(
                &format!("relu{}_{}", b + 1, r + 1),
                LayerKind::Act(Activation::ReLU),
            )
            .unwrap();
        }
        n.append(&format!("pool{}", b + 1), maxpool(2, 2)).unwrap();
    }
    n.append("fc6", LayerKind::Full { out: 160 }).unwrap();
    n.append("relu6", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("fc7", LayerKind::Full { out: 96 }).unwrap();
    n.append("relu7", LayerKind::Act(Activation::ReLU)).unwrap();
    n.append("fc8", LayerKind::Full { out: num_classes })
        .unwrap();
    n.append("prob", LayerKind::Softmax).unwrap();
    n
}

/// One Table I row: published figures next to counts recomputed from the
/// constructed architectures.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub name: &'static str,
    pub architecture: String,
    /// Parameter count computed from the constructed network, if built.
    pub computed_params: Option<usize>,
    /// The |W| figure printed in the paper.
    pub published_w: f64,
}

/// Reproduce Table I ("Popular CNN Models for Object Recognition").
pub fn table1() -> Vec<Table1Row> {
    let lenet_net = lenet();
    let alexnet_net = alexnet();
    let vgg_net = vgg16();
    vec![
        Table1Row {
            name: "LeNet",
            architecture: lenet_net.architecture_string(),
            computed_params: lenet_net.param_count().ok(),
            published_w: 4.31e5,
        },
        Table1Row {
            name: "AlexNet",
            architecture: alexnet_net.architecture_string(),
            computed_params: alexnet_net.param_count().ok(),
            published_w: 6e7,
        },
        Table1Row {
            name: "VGG",
            architecture: vgg_net.architecture_string(),
            computed_params: vgg_net.param_count().ok(),
            published_w: 1.96e10,
        },
        Table1Row {
            name: "ResNet",
            // Not constructed (residual joins are out of chain-eval scope);
            // the architecture string comes from the paper.
            architecture: "(LconvLpool)(Lconv){150}LpoolLip".into(),
            computed_params: None,
            published_w: 1.13e10,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_matches_paper_count() {
        assert_eq!(lenet().param_count().unwrap(), 431_080);
        assert_eq!(lenet().architecture_string(), "LconvLpoolLconvLpoolLip{2}");
    }

    #[test]
    fn alexnet_count_near_published() {
        // ~61M parameters (the paper rounds to 6e7).
        let count = alexnet().param_count().unwrap() as f64;
        assert!((5.5e7..6.5e7).contains(&count), "alexnet params {count}");
    }

    #[test]
    fn vgg16_count_is_138m() {
        let count = vgg16().param_count().unwrap() as f64;
        assert!((1.3e8..1.45e8).contains(&count), "vgg params {count}");
        assert_eq!(
            vgg16().architecture_string(),
            "Lconv{2}LpoolLconv{2}LpoolLconv{3}LpoolLconv{3}LpoolLconv{3}LpoolLip{3}"
        );
    }

    #[test]
    fn scaled_models_are_well_formed() {
        for net in [lenet_s(10), alexnet_s(10), vgg_s(10)] {
            let count = net.param_count().unwrap();
            assert!(count > 1000, "model too small: {count}");
            net.infer_shapes().unwrap();
        }
        // Size ordering mirrors the real families.
        let l = lenet_s(10).param_count().unwrap();
        let a = alexnet_s(10).param_count().unwrap();
        let v = vgg_s(10).param_count().unwrap();
        assert!(l < a && a < v, "sizes: lenet {l}, alexnet {a}, vgg {v}");
    }

    #[test]
    fn table1_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].computed_params, Some(431_080));
        assert!(rows[3].computed_params.is_none());
    }
}
