//! Layer definitions: the building blocks of a DNN in the ModelHub data
//! model (§II). A layer maps `(W, H, X) -> Y` where `W` are learned
//! parameters and `H` hyperparameters fixed at construction.

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    Max,
    Avg,
}

/// Activation flavour for unary nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    ReLU,
    Sigmoid,
    Tanh,
}

/// The kind of a layer plus its hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Data entry point with a fixed shape (channels, height, width).
    Input {
        channels: usize,
        height: usize,
        width: usize,
    },
    /// 2-D convolution with zero padding. Parametric.
    Conv {
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    /// Spatial pooling. Non-parametric.
    Pool {
        kind: PoolKind,
        size: usize,
        stride: usize,
    },
    /// Fully-connected ("ip"/"full") layer. Parametric.
    Full { out: usize },
    /// Elementwise activation. Non-parametric.
    Act(Activation),
    /// Flatten C×H×W to 1×1×(C·H·W). Non-parametric.
    Flatten,
    /// Softmax over the flattened output. Non-parametric.
    Softmax,
    /// Dropout: identity at inference; scales gradients during training.
    Dropout { rate: f32 },
    /// Local response normalization across channels (AlexNet's "norm"
    /// layer): `y_i = x_i / (k + (alpha/size)·Σ_{j∈window(i)} x_j²)^beta`.
    /// Non-parametric.
    Lrn {
        size: usize,
        alpha: f32,
        beta: f32,
        k: f32,
    },
}

impl LayerKind {
    /// Whether the layer carries learned parameters (`W != ∅`).
    pub fn is_parametric(&self) -> bool {
        matches!(self, LayerKind::Conv { .. } | LayerKind::Full { .. })
    }

    /// Short conventional name used in descriptions and DQL templates
    /// (CONV, POOL, FULL, RELU, ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "INPUT",
            LayerKind::Conv { .. } => "CONV",
            LayerKind::Pool { .. } => "POOL",
            LayerKind::Full { .. } => "FULL",
            LayerKind::Act(Activation::ReLU) => "RELU",
            LayerKind::Act(Activation::Sigmoid) => "SIGMOID",
            LayerKind::Act(Activation::Tanh) => "TANH",
            LayerKind::Flatten => "FLATTEN",
            LayerKind::Softmax => "SOFTMAX",
            LayerKind::Dropout { .. } => "DROPOUT",
            LayerKind::Lrn { .. } => "NORM",
        }
    }

    /// Output shape for a given input shape, or None if incompatible.
    pub fn output_shape(&self, input: (usize, usize, usize)) -> Option<(usize, usize, usize)> {
        let (c, h, w) = input;
        match *self {
            LayerKind::Input {
                channels,
                height,
                width,
            } => Some((channels, height, width)),
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                if stride == 0 || kernel == 0 {
                    return None;
                }
                let he = h + 2 * pad;
                let we = w + 2 * pad;
                if he < kernel || we < kernel {
                    return None;
                }
                Some((
                    out_channels,
                    (he - kernel) / stride + 1,
                    (we - kernel) / stride + 1,
                ))
            }
            LayerKind::Pool { size, stride, .. } => {
                if stride == 0 || size == 0 || h < size || w < size {
                    return None;
                }
                Some((c, (h - size) / stride + 1, (w - size) / stride + 1))
            }
            LayerKind::Full { out } => Some((out, 1, 1)),
            LayerKind::Act(_) | LayerKind::Dropout { .. } | LayerKind::Lrn { .. } => {
                Some((c, h, w))
            }
            LayerKind::Flatten => Some((c * h * w, 1, 1)),
            LayerKind::Softmax => Some((c * h * w, 1, 1)),
        }
    }

    /// Shape of the parameter matrix (rows, cols) with the bias folded in as
    /// the last column (the paper's `W·(x,1)` convention), or None for
    /// non-parametric layers.
    pub fn param_shape(&self, input: (usize, usize, usize)) -> Option<(usize, usize)> {
        let (c, _, _) = input;
        match *self {
            LayerKind::Conv {
                out_channels,
                kernel,
                ..
            } => Some((out_channels, c * kernel * kernel + 1)),
            LayerKind::Full { out } => {
                let (ci, hi, wi) = input;
                Some((out, ci * hi * wi + 1))
            }
            _ => None,
        }
    }

    /// Number of learned parameters for a given input shape.
    pub fn param_count(&self, input: (usize, usize, usize)) -> usize {
        self.param_shape(input).map_or(0, |(r, c)| r * c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        let conv = LayerKind::Conv {
            out_channels: 20,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        assert_eq!(conv.output_shape((1, 28, 28)), Some((20, 24, 24)));
        assert_eq!(conv.param_shape((1, 28, 28)), Some((20, 26)));
        let conv_s2 = LayerKind::Conv {
            out_channels: 8,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(conv_s2.output_shape((3, 12, 12)), Some((8, 6, 6)));
    }

    #[test]
    fn pool_shapes() {
        let pool = LayerKind::Pool {
            kind: PoolKind::Max,
            size: 2,
            stride: 2,
        };
        assert_eq!(pool.output_shape((20, 24, 24)), Some((20, 12, 12)));
        assert_eq!(pool.param_count((20, 24, 24)), 0);
        assert!(!pool.is_parametric());
    }

    #[test]
    fn full_shapes() {
        let full = LayerKind::Full { out: 500 };
        assert_eq!(full.output_shape((50, 4, 4)), Some((500, 1, 1)));
        assert_eq!(full.param_shape((50, 4, 4)), Some((500, 801)));
    }

    #[test]
    fn lenet_param_count_matches_paper() {
        // LeNet in Fig. 2: conv1(20@5x5 on 1ch), conv2(50@5x5 on 20ch),
        // ip1(500 on 50*4*4), ip2(10 on 500). Paper: |W| = 4.31e5 (431,080
        // including biases).
        let conv1 = LayerKind::Conv {
            out_channels: 20,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let conv2 = LayerKind::Conv {
            out_channels: 50,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let ip1 = LayerKind::Full { out: 500 };
        let ip2 = LayerKind::Full { out: 10 };
        let total = conv1.param_count((1, 28, 28))
            + conv2.param_count((20, 12, 12))
            + ip1.param_count((50, 4, 4))
            + ip2.param_count((500, 1, 1));
        assert_eq!(total, 431_080);
    }

    #[test]
    fn invalid_shapes_rejected() {
        let conv = LayerKind::Conv {
            out_channels: 4,
            kernel: 7,
            stride: 1,
            pad: 0,
        };
        assert_eq!(conv.output_shape((1, 5, 5)), None);
        let pool = LayerKind::Pool {
            kind: PoolKind::Avg,
            size: 3,
            stride: 0,
        };
        assert_eq!(pool.output_shape((1, 5, 5)), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(LayerKind::Softmax.type_name(), "SOFTMAX");
        assert_eq!(LayerKind::Act(Activation::ReLU).type_name(), "RELU");
        assert_eq!(
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2
            }
            .type_name(),
            "POOL"
        );
    }
}
