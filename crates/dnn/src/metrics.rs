//! Evaluation metrics beyond top-1 accuracy: confusion matrices, top-k
//! accuracy, and pairwise model comparison on a dataset (the paper's
//! retrieval query type (d), "comparing the results of different models on
//! a dataset").

use crate::forward::forward;
use crate::network::{Network, NetworkError};
use crate::weights::Weights;
use mh_tensor::Tensor3;

/// A confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall per class (diagonal / row sum); None for unseen classes.
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    None
                } else {
                    Some(row[i] as f64 / total as f64)
                }
            })
            .collect()
    }

    /// Render as an aligned text grid.
    pub fn render(&self) -> String {
        let n = self.counts.len();
        let mut out = String::from("truth\\pred");
        for j in 0..n {
            out.push_str(&format!(" {j:>5}"));
        }
        out.push('\n');
        for (i, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{i:>10}"));
            for c in row {
                out.push_str(&format!(" {c:>5}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Confusion matrix of a model over a labelled set.
pub fn confusion_matrix(
    net: &Network,
    weights: &Weights,
    data: &[(Tensor3, usize)],
    num_classes: usize,
) -> Result<ConfusionMatrix, NetworkError> {
    let mut counts = vec![vec![0usize; num_classes]; num_classes];
    for (x, label) in data {
        let pred = forward(net, weights, x)?.argmax();
        if *label < num_classes && pred < num_classes {
            counts[*label][pred] += 1;
        }
    }
    Ok(ConfusionMatrix { counts })
}

/// Top-k accuracy: the true label appears among the k highest outputs.
pub fn top_k_accuracy(
    net: &Network,
    weights: &Weights,
    data: &[(Tensor3, usize)],
    k: usize,
) -> Result<f64, NetworkError> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let mut hits = 0usize;
    for (x, label) in data {
        let out = forward(net, weights, x)?;
        let mut idx: Vec<usize> = (0..out.len()).collect();
        idx.sort_by(|&a, &b| out.as_slice()[b].total_cmp(&out.as_slice()[a]));
        if idx.iter().take(k).any(|i| i == label) {
            hits += 1;
        }
    }
    Ok(hits as f64 / data.len() as f64)
}

/// Pairwise comparison of two models on the same dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// Fraction of inputs where both predict the same class.
    pub agreement: f64,
    /// Accuracy of each model.
    pub accuracy_a: f64,
    pub accuracy_b: f64,
    /// Inputs where A is right and B wrong / B right and A wrong.
    pub only_a_correct: usize,
    pub only_b_correct: usize,
    pub total: usize,
}

/// Compare two (network, weights) pairs sample by sample.
pub fn compare_models(
    a: (&Network, &Weights),
    b: (&Network, &Weights),
    data: &[(Tensor3, usize)],
) -> Result<ModelComparison, NetworkError> {
    let mut agree = 0usize;
    let mut correct_a = 0usize;
    let mut correct_b = 0usize;
    let mut only_a = 0usize;
    let mut only_b = 0usize;
    for (x, label) in data {
        let pa = forward(a.0, a.1, x)?.argmax();
        let pb = forward(b.0, b.1, x)?.argmax();
        if pa == pb {
            agree += 1;
        }
        let (ca, cb) = (pa == *label, pb == *label);
        correct_a += usize::from(ca);
        correct_b += usize::from(cb);
        only_a += usize::from(ca && !cb);
        only_b += usize::from(cb && !ca);
    }
    let n = data.len().max(1) as f64;
    Ok(ModelComparison {
        agreement: agree as f64 / n,
        accuracy_a: correct_a as f64 / n,
        accuracy_b: correct_b as f64 / n,
        only_a_correct: only_a,
        only_b_correct: only_b,
        total: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synth_dataset, SynthConfig};
    use crate::train::{Hyperparams, Trainer};
    use crate::zoo;

    fn trained(seed: u64, iters: usize) -> (Network, Weights, crate::data::Dataset) {
        let net = zoo::lenet_s(3);
        let data = synth_dataset(&SynthConfig {
            num_classes: 3,
            train_per_class: 10,
            test_per_class: 6,
            noise: 0.05,
            seed: 4,
            ..Default::default()
        });
        let trainer = Trainer::new(Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        });
        let init = Weights::init(&net, seed).unwrap();
        let r = trainer.train(&net, init, &data, iters).unwrap();
        (net, r.weights, data)
    }

    #[test]
    fn confusion_matrix_consistent_with_accuracy() {
        let (net, w, data) = trained(1, 25);
        let cm = confusion_matrix(&net, &w, &data.test, 3).unwrap();
        assert_eq!(cm.total(), data.test.len());
        let acc = crate::forward::accuracy(&net, &w, &data.test).unwrap();
        assert!((cm.accuracy() - f64::from(acc)).abs() < 1e-9);
        assert_eq!(cm.per_class_recall().len(), 3);
        let text = cm.render();
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn top_k_monotone_in_k() {
        let (net, w, data) = trained(1, 10);
        let t1 = top_k_accuracy(&net, &w, &data.test, 1).unwrap();
        let t2 = top_k_accuracy(&net, &w, &data.test, 2).unwrap();
        let t3 = top_k_accuracy(&net, &w, &data.test, 3).unwrap();
        assert!(t1 <= t2 && t2 <= t3);
        assert!(
            (t3 - 1.0).abs() < 1e-9,
            "top-3 of 3 classes is always a hit"
        );
    }

    #[test]
    fn self_comparison_is_total_agreement() {
        let (net, w, data) = trained(2, 10);
        let cmp = compare_models((&net, &w), (&net, &w), &data.test).unwrap();
        assert_eq!(cmp.agreement, 1.0);
        assert_eq!(cmp.only_a_correct, 0);
        assert_eq!(cmp.only_b_correct, 0);
        assert_eq!(cmp.accuracy_a, cmp.accuracy_b);
    }

    #[test]
    fn different_models_disagree_somewhere() {
        let (net, w1, data) = trained(3, 25);
        let (_, w2, _) = trained(99, 2); // barely trained
        let cmp = compare_models((&net, &w1), (&net, &w2), &data.test).unwrap();
        assert!(cmp.accuracy_a >= cmp.accuracy_b);
        assert!(cmp.agreement <= 1.0);
        assert_eq!(cmp.total, data.test.len());
    }
}
