//! Learned parameters: an ordered collection of named float matrices, one
//! per parametric layer, with the bias folded in as the last column
//! (`W·(x,1)` — the paper's convention).

use crate::network::{Network, NetworkError};
use mh_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Weight assignment for a network: layer name -> parameter matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Weights {
    mats: BTreeMap<String, Matrix>,
}

impl Weights {
    pub fn new() -> Self {
        Self::default()
    }

    /// Xavier/Glorot-style initialization for every parametric layer of
    /// `net`, deterministic for a given seed.
    pub fn init(net: &Network, seed: u64) -> Result<Self, NetworkError> {
        let shapes = net.infer_shapes()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mats = BTreeMap::new();
        for node in net.nodes() {
            if let Some((rows, cols)) = node.kind.param_shape(shapes[&node.id].0) {
                let fan_in = (cols - 1).max(1) as f32;
                let bound = (3.0 / fan_in).sqrt();
                let mut m = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    for c in 0..cols - 1 {
                        m.set(r, c, rng.gen_range(-bound..bound));
                    }
                    m.set(r, cols - 1, 0.0); // bias starts at zero
                }
                mats.insert(node.name.clone(), m);
            }
        }
        Ok(Self { mats })
    }

    pub fn insert(&mut self, layer: &str, m: Matrix) {
        self.mats.insert(layer.to_string(), m);
    }

    pub fn get(&self, layer: &str) -> Option<&Matrix> {
        self.mats.get(layer)
    }

    pub fn get_mut(&mut self, layer: &str) -> Option<&mut Matrix> {
        self.mats.get_mut(layer)
    }

    pub fn remove(&mut self, layer: &str) -> Option<Matrix> {
        self.mats.remove(layer)
    }

    pub fn layers(&self) -> impl Iterator<Item = (&String, &Matrix)> {
        self.mats.iter()
    }

    pub fn layer_names(&self) -> Vec<String> {
        self.mats.keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.mats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.mats.values().map(Matrix::len).sum()
    }

    /// Total bytes at full f32 precision.
    pub fn byte_size(&self) -> usize {
        self.param_count() * 4
    }

    /// Check the weights cover exactly the parametric layers of `net` with
    /// the right shapes.
    pub fn validate(&self, net: &Network) -> Result<(), NetworkError> {
        let shapes = net.infer_shapes()?;
        for node in net.nodes() {
            if let Some(shape) = node.kind.param_shape(shapes[&node.id].0) {
                match self.mats.get(&node.name) {
                    Some(m) if m.shape() == shape => {}
                    _ => {
                        return Err(NetworkError::ShapeMismatch {
                            node: node.name.clone(),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Mean absolute difference across shared layers (used by `dlv diff`).
    pub fn distance(&self, other: &Weights) -> f32 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (name, m) in &self.mats {
            if let Some(o) = other.mats.get(name) {
                if o.shape() == m.shape() {
                    total += f64::from(m.mean_abs_diff(o)) * m.len() as f64;
                    count += m.len();
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }
}

impl FromIterator<(String, Matrix)> for Weights {
    fn from_iter<T: IntoIterator<Item = (String, Matrix)>>(iter: T) -> Self {
        Self {
            mats: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, LayerKind};

    fn net() -> Network {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 6,
                width: 6,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 2,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append("fc1", LayerKind::Full { out: 3 }).unwrap();
        n
    }

    #[test]
    fn init_shapes_match_network() {
        let n = net();
        let w = Weights::init(&n, 1).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.get("conv1").unwrap().shape(), (2, 10));
        assert_eq!(w.get("fc1").unwrap().shape(), (3, 2 * 4 * 4 + 1));
        w.validate(&n).unwrap();
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let n = net();
        assert_eq!(Weights::init(&n, 7).unwrap(), Weights::init(&n, 7).unwrap());
        assert_ne!(Weights::init(&n, 7).unwrap(), Weights::init(&n, 8).unwrap());
    }

    #[test]
    fn validate_catches_missing_layer() {
        let n = net();
        let mut w = Weights::init(&n, 1).unwrap();
        w.remove("fc1");
        assert!(w.validate(&n).is_err());
    }

    #[test]
    fn distance_zero_to_self() {
        let n = net();
        let w = Weights::init(&n, 3).unwrap();
        assert_eq!(w.distance(&w), 0.0);
        let w2 = Weights::init(&n, 4).unwrap();
        assert!(w.distance(&w2) > 0.0);
    }

    #[test]
    fn param_count_and_bytes() {
        let n = net();
        let w = Weights::init(&n, 1).unwrap();
        assert_eq!(w.param_count(), 2 * 10 + 3 * 33);
        assert_eq!(w.byte_size(), w.param_count() * 4);
    }
}
