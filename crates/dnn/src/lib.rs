//! # mh-dnn
//!
//! The deep-network substrate of the ModelHub reproduction: layer DAGs,
//! forward evaluation, SGD training with checkpoint snapshots, fine-tuning,
//! synthetic vision datasets, a model zoo, and the interval (perturbation)
//! evaluation machinery behind PAS's progressive queries.
//!
//! ```
//! use mh_dnn::{zoo, weights::Weights, forward::predict};
//! use mh_tensor::Tensor3;
//! let net = zoo::lenet_s(10);
//! let w = Weights::init(&net, 42).unwrap();
//! let x = Tensor3::zeros(1, 16, 16);
//! let label = predict(&net, &w, &x).unwrap();
//! assert!(label < 10);
//! ```

pub mod backward;
pub mod data;
pub mod forward;
pub mod interval;
pub mod layer;
pub mod metrics;
pub mod network;
pub mod simd;
pub mod train;
pub mod weights;
pub mod zoo;

pub use data::{synth_dataset, Dataset, SynthConfig};
pub use forward::{accuracy, forward, forward_trace, predict};
pub use interval::{determined_top_k, interval_forward, IntervalTensor, IntervalWeights};
pub use layer::{Activation, LayerKind, PoolKind};
pub use metrics::{
    compare_models, confusion_matrix, top_k_accuracy, ConfusionMatrix, ModelComparison,
};
pub use network::{Network, NetworkError, Node, NodeId};
pub use train::{fine_tune_setup, Hyperparams, LogEntry, TrainResult, Trainer};
pub use weights::Weights;
