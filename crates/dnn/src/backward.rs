//! Backpropagation for chain networks with a softmax + cross-entropy head.
//!
//! ModelHub only needs training to *generate* realistic checkpoint
//! trajectories (close-by snapshots, fine-tuned variants) — the substrate
//! the archival experiments run on — so this is a straightforward
//! CPU implementation.

use crate::forward::{activate_grad, forward_trace, Trace};
use crate::layer::{LayerKind, PoolKind};
use crate::network::{Network, NetworkError, NodeId};
use crate::weights::Weights;
use mh_tensor::{Matrix, Tensor3};
use std::collections::BTreeMap;

/// Per-layer weight gradients (same shapes as the weights).
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    pub mats: BTreeMap<String, Matrix>,
    /// Cross-entropy loss of the forward pass that produced these gradients.
    pub loss: f32,
}

impl Gradients {
    /// Elementwise accumulate another gradient set (for minibatching).
    pub fn accumulate(&mut self, other: &Gradients) {
        for (name, g) in &other.mats {
            match self.mats.get_mut(name) {
                Some(acc) => {
                    let s = acc.as_mut_slice();
                    for (a, b) in s.iter_mut().zip(g.as_slice()) {
                        *a += b;
                    }
                }
                None => {
                    self.mats.insert(name.clone(), g.clone());
                }
            }
        }
        self.loss += other.loss;
    }

    /// Scale all gradients (e.g. by 1/batch).
    pub fn scale(&mut self, s: f32) {
        for g in self.mats.values_mut() {
            for v in g.as_mut_slice() {
                *v *= s;
            }
        }
        self.loss *= s;
    }
}

/// Cross-entropy loss of a probability vector against a label.
pub fn cross_entropy(probs: &Tensor3, label: usize) -> f32 {
    let p = probs.as_slice().get(label).copied().unwrap_or(0.0);
    -(p.max(1e-12)).ln()
}

/// Run forward + backward for one labelled example, returning weight
/// gradients and the loss. The network's final layer must be Softmax.
pub fn backward(
    net: &Network,
    weights: &Weights,
    input: &Tensor3,
    label: usize,
) -> Result<Gradients, NetworkError> {
    let trace = forward_trace(net, weights, input)?;
    backward_from_trace(net, weights, input, label, &trace)
}

/// Backward pass reusing a recorded forward trace.
#[allow(clippy::needless_range_loop)] // index loops mirror the math
pub fn backward_from_trace(
    net: &Network,
    weights: &Weights,
    input: &Tensor3,
    label: usize,
    trace: &Trace,
) -> Result<Gradients, NetworkError> {
    let order = net.topo_order()?;
    let input_id = net.input_node()?;
    let last = *order.last().ok_or(NetworkError::BadInput)?;
    let last_node = net.node(last)?;
    if !matches!(last_node.kind, LayerKind::Softmax) {
        return Err(NetworkError::ShapeMismatch {
            node: last_node.name.clone(),
        });
    }

    let probs = &trace.activations[&last];
    let loss = cross_entropy(probs, label);

    // dL/d(softmax input) = p - onehot.
    let mut grad: Tensor3 = {
        let mut g = probs.clone();
        let s = g.as_mut_slice();
        if label < s.len() {
            s[label] -= 1.0;
        }
        g
    };

    let node_input = |id: NodeId| -> Result<Tensor3, NetworkError> {
        if id == input_id {
            Ok(input.clone())
        } else {
            let prev = net.prev(id);
            if prev.len() != 1 {
                return Err(NetworkError::NotAChain {
                    node: net.node(id)?.name.clone(),
                });
            }
            Ok(trace.activations[&prev[0]].clone())
        }
    };

    let mut grads = Gradients {
        mats: BTreeMap::new(),
        loss,
    };
    // Skip the softmax node itself: `grad` is already dL/d(its input).
    for &id in order.iter().rev().skip(1) {
        let node = net.node(id)?;
        let x = node_input(id)?;
        grad = match &node.kind {
            LayerKind::Input { .. } => break,
            LayerKind::Full { out } => {
                let w = weights.get(&node.name).ok_or(NetworkError::ShapeMismatch {
                    node: node.name.clone(),
                })?;
                let n_in = x.len();
                let mut dw = Matrix::zeros(*out, n_in + 1);
                let mut dx = Tensor3::zeros(x.shape().0, x.shape().1, x.shape().2);
                let g = grad.as_slice();
                let xs = x.as_slice();
                for o in 0..*out {
                    let go = g[o];
                    if go != 0.0 {
                        for i in 0..n_in {
                            dw.set(o, i, go * xs[i]);
                        }
                        dw.set(o, n_in, go);
                        let row = w.row(o);
                        for (dxi, wi) in dx.as_mut_slice().iter_mut().zip(&row[..n_in]) {
                            *dxi += go * wi;
                        }
                    }
                }
                grads.mats.insert(node.name.clone(), dw);
                dx
            }
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let w = weights.get(&node.name).ok_or(NetworkError::ShapeMismatch {
                    node: node.name.clone(),
                })?;
                let (in_c, _, _) = x.shape();
                let (oc, oh, ow) = grad.shape();
                debug_assert_eq!(oc, *out_channels);
                let k = *kernel;
                let bias_col = in_c * k * k;
                let mut dw = Matrix::zeros(oc, bias_col + 1);
                let mut dx = Tensor3::zeros(x.shape().0, x.shape().1, x.shape().2);
                let (_, ih, iw) = x.shape();
                for o in 0..oc {
                    let wrow = w.row(o);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = grad.get(o, oy, ox);
                            if g == 0.0 {
                                continue;
                            }
                            dw.set(o, bias_col, dw.get(o, bias_col) + g);
                            let y0 = (oy * stride) as isize - *pad as isize;
                            let x0 = (ox * stride) as isize - *pad as isize;
                            for ic in 0..in_c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        let yy = y0 + ky as isize;
                                        let xx = x0 + kx as isize;
                                        if yy < 0
                                            || xx < 0
                                            || yy as usize >= ih
                                            || xx as usize >= iw
                                        {
                                            continue;
                                        }
                                        let widx = (ic * k + ky) * k + kx;
                                        let xv = x.get(ic, yy as usize, xx as usize);
                                        dw.set(o, widx, dw.get(o, widx) + g * xv);
                                        let cur = dx.get(ic, yy as usize, xx as usize);
                                        dx.set(ic, yy as usize, xx as usize, cur + g * wrow[widx]);
                                    }
                                }
                            }
                        }
                    }
                }
                grads.mats.insert(node.name.clone(), dw);
                dx
            }
            LayerKind::Pool { kind, size, stride } => {
                let (c, _, _) = x.shape();
                let (_, oh, ow) = grad.shape();
                let mut dx = Tensor3::zeros(x.shape().0, x.shape().1, x.shape().2);
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = grad.get(ch, oy, ox);
                            if g == 0.0 {
                                continue;
                            }
                            match kind {
                                PoolKind::Max => {
                                    // Route to the (first) argmax position.
                                    let mut best = f32::NEG_INFINITY;
                                    let (mut by, mut bx) = (0, 0);
                                    for ky in 0..*size {
                                        for kx in 0..*size {
                                            let v = x.get(ch, oy * stride + ky, ox * stride + kx);
                                            if v > best {
                                                best = v;
                                                by = oy * stride + ky;
                                                bx = ox * stride + kx;
                                            }
                                        }
                                    }
                                    dx.set(ch, by, bx, dx.get(ch, by, bx) + g);
                                }
                                PoolKind::Avg => {
                                    let share = g / (*size * *size) as f32;
                                    for ky in 0..*size {
                                        for kx in 0..*size {
                                            let (yy, xx) = (oy * stride + ky, ox * stride + kx);
                                            dx.set(ch, yy, xx, dx.get(ch, yy, xx) + share);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                dx
            }
            LayerKind::Act(a) => {
                let mut dx = grad.clone();
                for (d, xi) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *d *= activate_grad(*a, *xi);
                }
                // Reshape to the input's shape (identical sizes).
                Tensor3::from_vec(x.shape().0, x.shape().1, x.shape().2, dx.into_vec())
            }
            LayerKind::Flatten | LayerKind::Dropout { .. } => Tensor3::from_vec(
                x.shape().0,
                x.shape().1,
                x.shape().2,
                grad.as_slice().to_vec(),
            ),
            LayerKind::Lrn {
                size,
                alpha,
                beta,
                k,
            } => {
                // y_i = x_i · b_i^{-β} with b_i = k + (α/n)·Σ_{j∈W(i)} x_j².
                // dx_m = g_m·b_m^{-β} − (2αβ/n)·x_m·Σ_{i: m∈W(i)} g_i·x_i·b_i^{-β-1}.
                let (c, h, w) = x.shape();
                let n = *size as f32;
                let scale = *alpha / n;
                let mut dx = Tensor3::zeros(c, h, w);
                for yy in 0..h {
                    for xx in 0..w {
                        // Precompute b_i per channel at this position.
                        let mut b = vec![*k; c];
                        for (i, bi) in b.iter_mut().enumerate() {
                            let (lo, hi) = crate::forward::lrn_window(i, c, *size);
                            for j in lo..hi {
                                let v = x.get(j, yy, xx);
                                *bi += scale * v * v;
                            }
                        }
                        for m in 0..c {
                            let gm = grad.get(m, yy, xx);
                            let mut acc = gm * b[m].powf(-beta);
                            // Channels i whose window contains m are the
                            // same set as m's own window (symmetric).
                            let (lo, hi) = crate::forward::lrn_window(m, c, *size);
                            let xm = x.get(m, yy, xx);
                            let mut cross = 0.0f32;
                            for i in lo..hi {
                                cross +=
                                    grad.get(i, yy, xx) * x.get(i, yy, xx) * b[i].powf(-beta - 1.0);
                            }
                            acc -= 2.0 * scale * *beta * xm * cross;
                            dx.set(m, yy, xx, acc);
                        }
                    }
                }
                dx
            }
            LayerKind::Softmax => unreachable!("softmax skipped above"),
        };
    }
    Ok(grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward;
    use crate::layer::{Activation, LayerKind, PoolKind};
    use crate::network::Network;
    use crate::weights::Weights;

    fn lenet_micro() -> (Network, Weights) {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 6,
                width: 6,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 2,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 3 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let w = Weights::init(&n, 99).unwrap();
        (n, w)
    }

    fn numeric_grad(
        net: &Network,
        weights: &Weights,
        input: &Tensor3,
        label: usize,
        layer: &str,
        r: usize,
        c: usize,
    ) -> f32 {
        let eps = 1e-3;
        let mut wp = weights.clone();
        let m = wp.get_mut(layer).unwrap();
        let orig = m.get(r, c);
        m.set(r, c, orig + eps);
        let lp = cross_entropy(&forward(net, &wp, input).unwrap(), label);
        let m = wp.get_mut(layer).unwrap();
        m.set(r, c, orig - eps);
        let lm = cross_entropy(&forward(net, &wp, input).unwrap(), label);
        (lp - lm) / (2.0 * eps)
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (net, weights) = lenet_micro();
        let input = Tensor3::from_vec(
            1,
            6,
            6,
            (0..36).map(|i| ((i as f32) * 0.37).sin() * 0.8).collect(),
        );
        let label = 1usize;
        let grads = backward(&net, &weights, &input, label).unwrap();
        for layer in ["conv1", "fc1"] {
            let g = &grads.mats[layer];
            // Spot-check a grid of entries including the bias column.
            let (rows, cols) = g.shape();
            for &(r, c) in &[(0, 0), (0, cols - 1), (rows - 1, cols / 2), (rows / 2, 1)] {
                let num = numeric_grad(&net, &weights, &input, label, layer, r, c);
                let ana = g.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "{layer}[{r},{c}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn loss_decreases_with_a_gradient_step() {
        let (net, mut weights) = lenet_micro();
        let input = Tensor3::filled(1, 6, 6, 0.5);
        let label = 2usize;
        let before = cross_entropy(&forward(&net, &weights, &input).unwrap(), label);
        // Enough steps to overfit a single point from any reasonable init;
        // 10 was borderline and depended on the exact initialization draw.
        for _ in 0..50 {
            let grads = backward(&net, &weights, &input, label).unwrap();
            for (name, g) in &grads.mats {
                let m = weights.get_mut(name).unwrap();
                for (w, d) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *w -= 0.5 * d;
                }
            }
        }
        let after = cross_entropy(&forward(&net, &weights, &input).unwrap(), label);
        assert!(after < before, "loss must drop: {before} -> {after}");
        assert!(
            after < 0.1,
            "overfitting one point should reach near-zero loss: {after}"
        );
    }

    #[test]
    fn avg_pool_gradient_flows() {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 4,
                width: 4,
            },
        )
        .unwrap();
        n.append(
            "pool",
            LayerKind::Pool {
                kind: PoolKind::Avg,
                size: 2,
                stride: 2,
            },
        )
        .unwrap();
        n.append("fc", LayerKind::Full { out: 2 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let w = Weights::init(&n, 5).unwrap();
        let x = Tensor3::filled(1, 4, 4, 1.0);
        let g = backward(&n, &w, &x, 0).unwrap();
        assert!(g.mats.contains_key("fc"));
        assert!(g.loss > 0.0);
    }

    #[test]
    fn training_head_must_be_softmax() {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 2,
                width: 2,
            },
        )
        .unwrap();
        n.append("fc", LayerKind::Full { out: 2 }).unwrap();
        let w = Weights::init(&n, 5).unwrap();
        let x = Tensor3::filled(1, 2, 2, 1.0);
        assert!(backward(&n, &w, &x, 0).is_err());
    }

    #[test]
    fn gradient_accumulate_and_scale() {
        let (net, weights) = lenet_micro();
        let x = Tensor3::filled(1, 6, 6, 0.3);
        let g1 = backward(&net, &weights, &x, 0).unwrap();
        let mut acc = Gradients::default();
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        for (name, g) in &g1.mats {
            let a = &acc.mats[name];
            for (x, y) in a.as_slice().iter().zip(g.as_slice()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
        assert!((acc.loss - g1.loss).abs() < 1e-6);
    }
}

#[cfg(test)]
mod lrn_tests {
    use super::*;
    use crate::forward::{forward, lrn_forward};
    use crate::layer::{Activation, LayerKind};
    use crate::network::Network;
    use crate::weights::Weights;
    use mh_tensor::Tensor3;

    fn lrn_net() -> (Network, Weights) {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 6,
                width: 6,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "norm1",
            LayerKind::Lrn {
                size: 3,
                alpha: 0.5,
                beta: 0.75,
                k: 2.0,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 3 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let w = Weights::init(&n, 31).unwrap();
        (n, w)
    }

    #[test]
    fn lrn_forward_known_values() {
        // Single position, 2 channels, window 3 (covers both).
        let x = Tensor3::from_vec(2, 1, 1, vec![3.0, 4.0]);
        let y = lrn_forward(&x, 3, 3.0, 1.0, 1.0);
        // b = 1 + (3/3)*(9+16) = 26 for both channels; beta=1 -> divide.
        assert!((y.as_slice()[0] - 3.0 / 26.0).abs() < 1e-6);
        assert!((y.as_slice()[1] - 4.0 / 26.0).abs() < 1e-6);
    }

    #[test]
    fn lrn_gradient_matches_finite_difference() {
        let (net, weights) = lrn_net();
        let input = Tensor3::from_vec(
            1,
            6,
            6,
            (0..36).map(|i| ((i as f32) * 0.53).sin() * 0.7).collect(),
        );
        let label = 2usize;
        let grads = backward(&net, &weights, &input, label).unwrap();
        // Finite differences through the whole network including LRN.
        for layer in ["conv1", "fc1"] {
            let g = &grads.mats[layer];
            let (rows, cols) = g.shape();
            for &(r, c) in &[(0usize, 0usize), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let eps = 1e-3;
                let mut wp = weights.clone();
                let m = wp.get_mut(layer).unwrap();
                let orig = m.get(r, c);
                m.set(r, c, orig + eps);
                let lp = cross_entropy(&forward(&net, &wp, &input).unwrap(), label);
                let m = wp.get_mut(layer).unwrap();
                m.set(r, c, orig - eps);
                let lm = cross_entropy(&forward(&net, &wp, &input).unwrap(), label);
                let num = (lp - lm) / (2.0 * eps);
                let ana = g.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "{layer}[{r},{c}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn lrn_interval_contains_exact() {
        use crate::interval::{interval_forward, IntervalWeights};
        use mh_tensor::SegmentedMatrix;
        let (net, weights) = lrn_net();
        let input = Tensor3::from_vec(
            1,
            6,
            6,
            (0..36).map(|i| ((i as f32) * 0.21).cos()).collect(),
        );
        let exact = forward(&net, &weights, &input).unwrap();
        for k in 1..=4usize {
            let mut iw = IntervalWeights::default();
            for (name, m) in weights.layers() {
                let (lo, hi) = SegmentedMatrix::from_matrix(m).bounds(k);
                iw.insert(name, lo, hi);
            }
            let iv = interval_forward(&net, &iw, &input).unwrap();
            assert!(iv.is_valid(), "k={k}");
            assert!(iv.contains(&exact), "k={k}: exact escapes LRN interval");
        }
    }

    #[test]
    fn training_through_lrn_reduces_loss() {
        use crate::data::{synth_dataset, SynthConfig};
        use crate::train::{Hyperparams, Trainer};
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 8,
                width: 8,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "norm1",
            LayerKind::Lrn {
                size: 3,
                alpha: 1e-2,
                beta: 0.75,
                k: 1.0,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 2 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let data = synth_dataset(&SynthConfig {
            num_classes: 2,
            height: 8,
            width: 8,
            train_per_class: 10,
            test_per_class: 5,
            noise: 0.05,
            seed: 6,
        });
        let trainer = Trainer::new(Hyperparams {
            base_lr: 0.1,
            ..Default::default()
        });
        let init = Weights::init(&n, 5).unwrap();
        let r = trainer.train(&n, init, &data, 40).unwrap();
        let first: f32 = r.log[..5].iter().map(|e| e.loss).sum::<f32>() / 5.0;
        let last: f32 = r.log[35..].iter().map(|e| e.loss).sum::<f32>() / 5.0;
        assert!(
            last < first,
            "loss should fall through LRN: {first} -> {last}"
        );
    }
}
