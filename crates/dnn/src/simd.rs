//! Runtime-dispatched kernels for the dense dot-product loops — the
//! inner loops of exact forward evaluation and interval (perturbation-
//! aware) evaluation.
//!
//! Floating-point addition is not associative, so unlike the integer
//! delta kernels these cannot silently change the summation order
//! per-path: the kernel *contract* is a fixed 8-lane strided
//! accumulation (lane `j` sums elements `j, j+8, j+16, …` of the
//! product stream, lanes reduced pairwise `(0+4, 1+5, 2+6, 3+7)` then
//! `(a0+a2, a1+a3)` then `b0+b1`, bias added before the scalar tail).
//! The scalar fallback implements that contract directly; the AVX2 path
//! implements it with one vector accumulator and the matching shuffle
//! reduction. Both therefore produce **bit-identical** results — pinned
//! by the equivalence proptests below — and the exact-forward and
//! interval paths share the same contract, so a zero-width interval
//! evaluation reproduces the point forward bit-for-bit.
//!
//! Min/max use hardware select semantics (`if a < b { a } else { b }`,
//! exactly `_mm256_min_ps`), mirrored in the scalar fallback, so
//! signed-zero and single-NaN selection agree between paths too. (The
//! one excluded case: a multiply where *both* operands are NaN has an
//! order-dependent result payload, and LLVM may commute scalar `fmul`;
//! network weights and activations are never NaN, so the contract
//! covers all non-NaN inputs.)

use std::sync::atomic::{AtomicU8, Ordering};

const LEVEL_UNKNOWN: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const LEVEL_AVX2: u8 = 2;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNKNOWN);

fn level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNKNOWN {
        return l;
    }
    #[cfg(target_arch = "x86_64")]
    let detected = if std::arch::is_x86_feature_detected!("avx2") {
        LEVEL_AVX2
    } else {
        LEVEL_SCALAR
    };
    #[cfg(not(target_arch = "x86_64"))]
    let detected = LEVEL_SCALAR;
    LEVEL.store(detected, Ordering::Relaxed);
    detected
}

/// Hardware-select minimum: `if a < b { a } else { b }` — the exact
/// semantics of `_mm256_min_ps` (second operand on NaN or equality).
#[inline]
fn min_ps(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// Hardware-select maximum: `if a > b { a } else { b }` — the exact
/// semantics of `_mm256_max_ps`.
#[inline]
fn max_ps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// The fixed pairwise lane reduction shared by every path.
#[inline]
fn reduce8(v: [f32; 8]) -> f32 {
    let a = [v[0] + v[4], v[1] + v[5], v[2] + v[6], v[3] + v[7]];
    let b = [a[0] + a[2], a[1] + a[3]];
    b[0] + b[1]
}

/// `bias + Σ row[i]·x[i]` over the common prefix of `row` and `x`, in
/// the 8-lane strided order described in the module docs.
// mh-audit: trusted(total: prefix-length-bounded loops, equivalence proptests in dnn::simd::tests)
pub fn dot_bias(row: &[f32], x: &[f32], bias: f32) -> f32 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by runtime detection.
        LEVEL_AVX2 => unsafe { dot_bias_avx2(row, x, bias) },
        _ => dot_bias_scalar(row, x, bias),
    }
}

fn dot_bias_scalar(row: &[f32], x: &[f32], bias: f32) -> f32 {
    let n = row.len().min(x.len());
    let mut lanes = [0f32; 8];
    let mut i = 0usize;
    while i + 8 <= n {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += row[i + j] * x[i + j];
        }
        i += 8;
    }
    let mut acc = bias + reduce8(lanes);
    while i < n {
        acc += row[i] * x[i];
        i += 1;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// mh-audit: trusted(total: loads bounded by i+8 <= n = min of slice lengths)
unsafe fn dot_bias_avx2(row: &[f32], x: &[f32], bias: f32) -> f32 {
    use std::arch::x86_64::*;
    let n = row.len().min(x.len());
    let mut acc_v = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n <= len of both slices; unaligned loads.
        let r = _mm256_loadu_ps(row.as_ptr().add(i));
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        // No FMA: separate mul/add keeps every path IEEE-identical.
        acc_v = _mm256_add_ps(acc_v, _mm256_mul_ps(r, xv));
        i += 8;
    }
    let mut acc = bias + hreduce(acc_v);
    while i < n {
        acc += row[i] * x[i];
        i += 1;
    }
    acc
}

/// Horizontal reduction matching [`reduce8`]'s pairing exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hreduce(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let a = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    let b = _mm_add_ps(a, _mm_movehl_ps(a, a));
    _mm_cvtss_f32(_mm_add_ss(b, _mm_shuffle_ps(b, b, 0b01)))
}

/// Interval dot product with bias: accumulates the four-corner product
/// bounds `[min(a,b,c,d), max(a,b,c,d)]` of `[rl,rh]·[xl,xh]` per
/// element, in the same 8-lane strided order as [`dot_bias`]. With
/// zero-width inputs (`rl == rh`, `xl == xh`) both bounds reproduce
/// [`dot_bias`] bit-for-bit.
// mh-audit: trusted(total: prefix-length-bounded loops, equivalence proptests in dnn::simd::tests)
pub fn interval_dot_bias(
    rl: &[f32],
    rh: &[f32],
    xl: &[f32],
    xh: &[f32],
    bias_l: f32,
    bias_h: f32,
) -> (f32, f32) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by runtime detection.
        LEVEL_AVX2 => unsafe { interval_dot_bias_avx2(rl, rh, xl, xh, bias_l, bias_h) },
        _ => interval_dot_bias_scalar(rl, rh, xl, xh, bias_l, bias_h),
    }
}

/// Four-corner product bounds for one element, with hardware select
/// semantics and the fixed `(min(a,b), min(c,d))` pairing.
#[inline]
fn corners(wl: f32, wh: f32, xl: f32, xh: f32) -> (f32, f32) {
    let a = wl * xl;
    let b = wl * xh;
    let c = wh * xl;
    let d = wh * xh;
    (
        min_ps(min_ps(a, b), min_ps(c, d)),
        max_ps(max_ps(a, b), max_ps(c, d)),
    )
}

fn interval_dot_bias_scalar(
    rl: &[f32],
    rh: &[f32],
    xl: &[f32],
    xh: &[f32],
    bias_l: f32,
    bias_h: f32,
) -> (f32, f32) {
    let n = rl.len().min(rh.len()).min(xl.len()).min(xh.len());
    let mut lanes_l = [0f32; 8];
    let mut lanes_h = [0f32; 8];
    let mut i = 0usize;
    while i + 8 <= n {
        for j in 0..8 {
            let (pl, ph) = corners(rl[i + j], rh[i + j], xl[i + j], xh[i + j]);
            lanes_l[j] += pl;
            lanes_h[j] += ph;
        }
        i += 8;
    }
    let mut acc_l = bias_l + reduce8(lanes_l);
    let mut acc_h = bias_h + reduce8(lanes_h);
    while i < n {
        let (pl, ph) = corners(rl[i], rh[i], xl[i], xh[i]);
        acc_l += pl;
        acc_h += ph;
        i += 1;
    }
    (acc_l, acc_h)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// mh-audit: trusted(total: loads bounded by i+8 <= n = min of slice lengths)
unsafe fn interval_dot_bias_avx2(
    rl: &[f32],
    rh: &[f32],
    xl: &[f32],
    xh: &[f32],
    bias_l: f32,
    bias_h: f32,
) -> (f32, f32) {
    use std::arch::x86_64::*;
    let n = rl.len().min(rh.len()).min(xl.len()).min(xh.len());
    let mut acc_l_v = _mm256_setzero_ps();
    let mut acc_h_v = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n <= len of all four slices; unaligned loads.
        let wl = _mm256_loadu_ps(rl.as_ptr().add(i));
        let wh = _mm256_loadu_ps(rh.as_ptr().add(i));
        let xlv = _mm256_loadu_ps(xl.as_ptr().add(i));
        let xhv = _mm256_loadu_ps(xh.as_ptr().add(i));
        let a = _mm256_mul_ps(wl, xlv);
        let b = _mm256_mul_ps(wl, xhv);
        let c = _mm256_mul_ps(wh, xlv);
        let d = _mm256_mul_ps(wh, xhv);
        let pl = _mm256_min_ps(_mm256_min_ps(a, b), _mm256_min_ps(c, d));
        let ph = _mm256_max_ps(_mm256_max_ps(a, b), _mm256_max_ps(c, d));
        acc_l_v = _mm256_add_ps(acc_l_v, pl);
        acc_h_v = _mm256_add_ps(acc_h_v, ph);
        i += 8;
    }
    let mut acc_l = bias_l + hreduce(acc_l_v);
    let mut acc_h = bias_h + hreduce(acc_h_v);
    while i < n {
        let (pl, ph) = corners(rl[i], rh[i], xl[i], xh[i]);
        acc_l += pl;
        acc_h += ph;
        i += 1;
    }
    (acc_l, acc_h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Map raw bits to floats with the exponent's top bit cleared:
    /// |f| < 2, covering denormals, signed zeros, and every mantissa
    /// pattern. NaN inputs are excluded deliberately — when BOTH
    /// operands of a multiply are NaN the result payload depends on
    /// operand order, which LLVM may commute for scalar `fmul` while
    /// the intrinsic order is fixed, so both-NaN payloads are outside
    /// the bit-identity contract (single NaNs, produced by the select
    /// ops, still propagate identically — see
    /// `select_semantics_match_hardware`).
    fn to_floats(bits: &[u32]) -> Vec<f32> {
        bits.iter()
            .map(|&b| f32::from_bits(b & 0xBFFF_FFFF))
            .collect()
    }

    fn assert_dot_agrees(row: &[f32], x: &[f32], bias: f32) {
        let want = dot_bias_scalar(row, x, bias);
        let got = dot_bias(row, x, bias);
        assert_eq!(got.to_bits(), want.to_bits(), "dispatched != scalar");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just checked.
            let got = unsafe { dot_bias_avx2(row, x, bias) };
            assert_eq!(got.to_bits(), want.to_bits(), "avx2 != scalar");
        }
    }

    fn assert_interval_dot_agrees(rl: &[f32], rh: &[f32], xl: &[f32], xh: &[f32]) {
        let want = interval_dot_bias_scalar(rl, rh, xl, xh, 0.25, 0.5);
        let got = interval_dot_bias(rl, rh, xl, xh, 0.25, 0.5);
        assert_eq!(
            (got.0.to_bits(), got.1.to_bits()),
            (want.0.to_bits(), want.1.to_bits()),
            "dispatched != scalar"
        );
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just checked.
            let got = unsafe { interval_dot_bias_avx2(rl, rh, xl, xh, 0.25, 0.5) };
            assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (want.0.to_bits(), want.1.to_bits()),
                "avx2 != scalar"
            );
        }
    }

    proptest! {
        #[test]
        fn dot_matches_scalar_on_adversarial_bit_patterns(
            row_bits in vec(any::<u32>(), 0..100),
            x_bits in vec(any::<u32>(), 0..100),
            bias_bits in any::<u32>(),
        ) {
            let row = to_floats(&row_bits);
            let x = to_floats(&x_bits);
            let bias = f32::from_bits(bias_bits & 0xBFFF_FFFF);
            assert_dot_agrees(&row, &x, bias);
            // Misaligned views exercise unaligned loads.
            if !row.is_empty() && !x.is_empty() {
                assert_dot_agrees(&row[1..], &x[1..], bias);
            }
        }

        #[test]
        fn interval_dot_matches_scalar_on_adversarial_bit_patterns(
            rl_bits in vec(any::<u32>(), 0..100),
            rh_bits in vec(any::<u32>(), 0..100),
            x_bits in vec(any::<u32>(), 0..100),
        ) {
            let rl = to_floats(&rl_bits);
            let rh = to_floats(&rh_bits);
            let xl = to_floats(&x_bits);
            let xh: Vec<f32> = xl.iter().map(|v| v + 1.0).collect();
            assert_interval_dot_agrees(&rl, &rh, &xl, &xh);
            if !rl.is_empty() && !rh.is_empty() && !xl.is_empty() {
                assert_interval_dot_agrees(&rl[1..], &rh[1..], &xl[1..], &xh[1..]);
            }
        }
    }

    #[test]
    fn lane_boundary_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
            let row: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.73).cos()).collect();
            assert_dot_agrees(&row, &x, 0.125);
            let rh: Vec<f32> = row.iter().map(|v| v + 0.01).collect();
            let xh: Vec<f32> = x.iter().map(|v| v + 0.01).collect();
            assert_interval_dot_agrees(&row, &rh, &x, &xh);
        }
    }

    #[test]
    fn zero_width_interval_reproduces_point_dot() {
        // The contract that keeps exact-forward containment exact: a
        // degenerate interval dot equals the point dot bit-for-bit.
        let row: Vec<f32> = (0..37).map(|i| ((i * 13) as f32 * 0.11).sin()).collect();
        let x: Vec<f32> = (0..37).map(|i| ((i * 7) as f32 * 0.19).cos()).collect();
        let point = dot_bias(&row, &x, 0.75);
        let (lo, hi) = interval_dot_bias(&row, &row, &x, &x, 0.75, 0.75);
        assert_eq!(lo.to_bits(), point.to_bits());
        assert_eq!(hi.to_bits(), point.to_bits());
    }

    #[test]
    fn select_semantics_match_hardware() {
        // min_ps/max_ps return the SECOND operand on NaN-in-first and on
        // equality — the _mm256_min_ps/_mm256_max_ps contract.
        assert_eq!(min_ps(f32::NAN, 2.0), 2.0);
        assert!(min_ps(2.0, f32::NAN).is_nan());
        assert_eq!(min_ps(-0.0, 0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(max_ps(0.0, -0.0).to_bits(), (-0.0f32).to_bits());
    }
}
