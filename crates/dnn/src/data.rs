//! Synthetic vision datasets.
//!
//! The paper trains on MNIST / ILSVRC; those are substituted with
//! procedurally generated pattern-classification tasks that are (a) cheap
//! to create at any size, (b) genuinely learnable by small CNNs, and (c)
//! deterministic per seed — which is all the lifecycle experiments need.

use mh_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled image classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub train: Vec<(Tensor3, usize)>,
    pub test: Vec<(Tensor3, usize)>,
    pub num_classes: usize,
    pub channels: usize,
    pub height: usize,
    pub width: usize,
}

/// Configuration for the synthetic pattern generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    pub num_classes: usize,
    pub height: usize,
    pub width: usize,
    pub train_per_class: usize,
    pub test_per_class: usize,
    /// Additive Gaussian noise amplitude.
    pub noise: f32,
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            num_classes: 10,
            height: 16,
            width: 16,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.15,
            seed: 42,
        }
    }
}

/// Standard normal via Box-Muller (rand_distr is not in the dependency
/// set).
fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One image of class `label`: an oriented sinusoidal grating whose angle
/// and frequency are class-specific, with random phase and noise. Gratings
/// are a classic stimulus that small convnets separate reliably.
fn render(cfg: &SynthConfig, label: usize, rng: &mut StdRng) -> Tensor3 {
    let angle = std::f32::consts::PI * label as f32 / cfg.num_classes as f32;
    let freq = 0.5 + 0.35 * (label % 3) as f32;
    let (s, c) = angle.sin_cos();
    // Class-anchored phase with a small jitter: enough variation to make
    // the task non-trivial while keeping class means distinct.
    let phase: f32 = label as f32 * 0.7 + rng.gen_range(-0.4..0.4);
    let mut t = Tensor3::zeros(1, cfg.height, cfg.width);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            let u = x as f32 - cfg.width as f32 / 2.0;
            let v = y as f32 - cfg.height as f32 / 2.0;
            let proj = u * c + v * s;
            let val = (proj * freq + phase).sin() * 0.5 + cfg.noise * randn(rng);
            t.set(0, y, x, val);
        }
    }
    t
}

/// Generate a full dataset.
pub fn synth_dataset(cfg: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut train = Vec::with_capacity(cfg.num_classes * cfg.train_per_class);
    let mut test = Vec::with_capacity(cfg.num_classes * cfg.test_per_class);
    for label in 0..cfg.num_classes {
        for _ in 0..cfg.train_per_class {
            train.push((render(cfg, label, &mut rng), label));
        }
        for _ in 0..cfg.test_per_class {
            test.push((render(cfg, label, &mut rng), label));
        }
    }
    // Shuffle the training set deterministically.
    for i in (1..train.len()).rev() {
        let j = rng.gen_range(0..=i);
        train.swap(i, j);
    }
    Dataset {
        train,
        test,
        num_classes: cfg.num_classes,
        channels: 1,
        height: cfg.height,
        width: cfg.width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sizes_and_labels() {
        let cfg = SynthConfig {
            num_classes: 4,
            train_per_class: 5,
            test_per_class: 3,
            ..Default::default()
        };
        let d = synth_dataset(&cfg);
        assert_eq!(d.train.len(), 20);
        assert_eq!(d.test.len(), 12);
        for (x, l) in d.train.iter().chain(&d.test) {
            assert!(*l < 4);
            assert_eq!(x.shape(), (1, 16, 16));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            seed: 9,
            ..Default::default()
        };
        let a = synth_dataset(&cfg);
        let b = synth_dataset(&cfg);
        assert_eq!(a.train[0].0, b.train[0].0);
        let c = synth_dataset(&SynthConfig { seed: 10, ..cfg });
        assert_ne!(a.train[0].0, c.train[0].0);
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean images of different classes should differ much more than two
        // samples of the same class differ from their mean.
        let cfg = SynthConfig {
            num_classes: 2,
            noise: 0.05,
            train_per_class: 20,
            ..Default::default()
        };
        let d = synth_dataset(&cfg);
        let mean = |label: usize| -> Vec<f32> {
            let imgs: Vec<&Tensor3> = d
                .train
                .iter()
                .filter(|(_, l)| *l == label)
                .map(|(x, _)| x)
                .collect();
            let n = imgs.len() as f32;
            let mut acc = vec![0.0f32; imgs[0].len()];
            for img in imgs {
                for (a, b) in acc.iter_mut().zip(img.as_slice()) {
                    *a += b / n;
                }
            }
            acc
        };
        let m0 = mean(0);
        let m1 = mean(1);
        let dist: f32 = m0.iter().zip(&m1).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(dist > 1.0, "class means too close: {dist}");
    }

    #[test]
    fn values_bounded() {
        let d = synth_dataset(&SynthConfig::default());
        for (x, _) in &d.train {
            for &v in x.as_slice() {
                assert!(v.is_finite() && v.abs() < 5.0);
            }
        }
    }
}
