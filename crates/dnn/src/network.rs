//! The network DAG: ModelHub's conceptual DNN data model (§III-A).
//!
//! Nodes are layers (unit operators); edges are dataflow dependencies. The
//! graph is stored as `Node` / `Edge` collections exactly as the paper's
//! relational mapping describes, and supports the structural operations DQL
//! needs: selector matching, 1-hop `prev`/`next` traversal, slicing and
//! mutation (insert/delete).

use crate::layer::LayerKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Stable node identifier within a network.
pub type NodeId = usize;

/// One layer instance in the DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub id: NodeId,
    pub name: String,
    pub kind: LayerKind,
}

/// Errors from structural operations or shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Node id not present.
    NoSuchNode(NodeId),
    /// Node name not present.
    NoSuchName(String),
    /// Duplicate layer name on insert.
    DuplicateName(String),
    /// The graph has a cycle.
    Cyclic,
    /// A layer received an incompatible input shape.
    ShapeMismatch { node: String },
    /// Evaluation requires a single-input chain but found a join/fork.
    NotAChain { node: String },
    /// The graph has no input node or more than one.
    BadInput,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSuchNode(id) => write!(f, "no such node id {id}"),
            Self::NoSuchName(n) => write!(f, "no such layer '{n}'"),
            Self::DuplicateName(n) => write!(f, "duplicate layer name '{n}'"),
            Self::Cyclic => write!(f, "network graph is cyclic"),
            Self::ShapeMismatch { node } => write!(f, "shape mismatch at layer '{node}'"),
            Self::NotAChain { node } => write!(f, "layer '{node}' has multiple inputs"),
            Self::BadInput => write!(f, "network must have exactly one INPUT layer"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A 3-D activation shape `(channels, height, width)`.
pub type Shape3 = (usize, usize, usize);
/// Per-node `(input shape, output shape)` map from shape inference.
pub type ShapeMap = BTreeMap<NodeId, (Shape3, Shape3)>;

/// A DNN as a DAG of named layers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Network {
    nodes: BTreeMap<NodeId, Node>,
    /// Directed edges `from -> to`.
    edges: BTreeSet<(NodeId, NodeId)>,
    next_id: NodeId,
}

impl Network {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a layer, returning its id. Names must be unique.
    pub fn add_layer(&mut self, name: &str, kind: LayerKind) -> Result<NodeId, NetworkError> {
        if self.nodes.values().any(|n| n.name == name) {
            return Err(NetworkError::DuplicateName(name.to_string()));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.nodes.insert(
            id,
            Node {
                id,
                name: name.to_string(),
                kind,
            },
        );
        Ok(id)
    }

    /// Add a dataflow edge.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<(), NetworkError> {
        if !self.nodes.contains_key(&from) {
            return Err(NetworkError::NoSuchNode(from));
        }
        if !self.nodes.contains_key(&to) {
            return Err(NetworkError::NoSuchNode(to));
        }
        self.edges.insert((from, to));
        Ok(())
    }

    /// Remove a dataflow edge; returns whether it existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        self.edges.remove(&(from, to))
    }

    /// Convenience: append a layer after the current chain tail.
    pub fn append(&mut self, name: &str, kind: LayerKind) -> Result<NodeId, NetworkError> {
        let tail = self.sinks().into_iter().next();
        let id = self.add_layer(name, kind)?;
        if let Some(t) = tail {
            if t != id {
                self.connect(t, id)?;
            }
        }
        Ok(id)
    }

    pub fn node(&self, id: NodeId) -> Result<&Node, NetworkError> {
        self.nodes.get(&id).ok_or(NetworkError::NoSuchNode(id))
    }

    pub fn node_by_name(&self, name: &str) -> Result<&Node, NetworkError> {
        self.nodes
            .values()
            .find(|n| n.name == name)
            .ok_or_else(|| NetworkError::NoSuchName(name.to_string()))
    }

    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Direct successors (the DQL `next` attribute).
    pub fn next(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Direct predecessors (the DQL `prev` attribute).
    pub fn prev(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == id)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Nodes with no incoming edges.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .keys()
            .filter(|id| self.prev(**id).is_empty())
            .copied()
            .collect()
    }

    /// Nodes with no outgoing edges.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes
            .keys()
            .filter(|id| self.next(**id).is_empty())
            .copied()
            .collect()
    }

    /// Topological order, or `Cyclic` if none exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetworkError> {
        let mut indeg: BTreeMap<NodeId, usize> = self.nodes.keys().map(|&id| (id, 0)).collect();
        for &(_, t) in &self.edges {
            *indeg
                .get_mut(&t)
                .expect("edge endpoints validated on insert") += 1;
        }
        let mut q: VecDeque<NodeId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = q.pop_front() {
            order.push(id);
            for t in self.next(id) {
                let d = indeg
                    .get_mut(&t)
                    .expect("edge target has an indegree entry");
                *d -= 1;
                if *d == 0 {
                    q.push_back(t);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            Err(NetworkError::Cyclic)
        }
    }

    /// The single INPUT node, if the network is well-formed.
    pub fn input_node(&self) -> Result<NodeId, NetworkError> {
        let inputs: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| matches!(n.kind, LayerKind::Input { .. }))
            .map(|n| n.id)
            .collect();
        if inputs.len() == 1 {
            Ok(inputs[0])
        } else {
            Err(NetworkError::BadInput)
        }
    }

    /// Infer the input shape of every node by propagating from the INPUT
    /// layer in topological order. Requires a single-predecessor graph for
    /// compute layers.
    pub fn infer_shapes(&self) -> Result<ShapeMap, NetworkError> {
        let order = self.topo_order()?;
        let input = self.input_node()?;
        let mut shapes = BTreeMap::new();
        for id in order {
            let node = &self.nodes[&id];
            let in_shape = if id == input {
                (0, 0, 0) // ignored by Input::output_shape
            } else {
                let prev = self.prev(id);
                if prev.len() != 1 {
                    return Err(NetworkError::NotAChain {
                        node: node.name.clone(),
                    });
                }
                let (_, out) = *shapes
                    .get(&prev[0])
                    .ok_or(NetworkError::NoSuchNode(prev[0]))?;
                out
            };
            let out_shape =
                node.kind
                    .output_shape(in_shape)
                    .ok_or(NetworkError::ShapeMismatch {
                        node: node.name.clone(),
                    })?;
            shapes.insert(id, (in_shape, out_shape));
        }
        Ok(shapes)
    }

    /// Total learned parameter count across all layers.
    pub fn param_count(&self) -> Result<usize, NetworkError> {
        let shapes = self.infer_shapes()?;
        Ok(self
            .nodes
            .values()
            .map(|n| {
                let (in_shape, _) = shapes[&n.id];
                n.kind.param_count(in_shape)
            })
            .sum())
    }

    /// Names of parametric layers in topological order.
    pub fn parametric_layers(&self) -> Result<Vec<String>, NetworkError> {
        let order = self.topo_order()?;
        Ok(order
            .into_iter()
            .filter(|id| self.nodes[id].kind.is_parametric())
            .map(|id| self.nodes[&id].name.clone())
            .collect())
    }

    /// Insert a new layer on the edge `from -> to` (the DQL `insert`
    /// mutation: split an outgoing edge).
    pub fn insert_between(
        &mut self,
        from: NodeId,
        to: NodeId,
        name: &str,
        kind: LayerKind,
    ) -> Result<NodeId, NetworkError> {
        if !self.edges.contains(&(from, to)) {
            return Err(NetworkError::NoSuchNode(to));
        }
        let id = self.add_layer(name, kind)?;
        self.edges.remove(&(from, to));
        self.edges.insert((from, id));
        self.edges.insert((id, to));
        Ok(id)
    }

    /// Insert a new layer after `after`, rerouting all of `after`'s outgoing
    /// edges through it.
    pub fn insert_after(
        &mut self,
        after: NodeId,
        name: &str,
        kind: LayerKind,
    ) -> Result<NodeId, NetworkError> {
        self.node(after)?;
        let outs = self.next(after);
        let id = self.add_layer(name, kind)?;
        for t in outs {
            self.edges.remove(&(after, t));
            self.edges.insert((id, t));
        }
        self.edges.insert((after, id));
        Ok(id)
    }

    /// Delete a node, reconnecting its predecessors to its successors (the
    /// DQL `delete` mutation).
    pub fn delete_node(&mut self, id: NodeId) -> Result<(), NetworkError> {
        self.node(id)?;
        let prev = self.prev(id);
        let next = self.next(id);
        self.edges.retain(|&(f, t)| f != id && t != id);
        for &p in &prev {
            for &n in &next {
                self.edges.insert((p, n));
            }
        }
        self.nodes.remove(&id);
        Ok(())
    }

    /// All nodes on any path from `start` to `end`, inclusive — the DQL
    /// `slice` operator. Returns a new network containing exactly those
    /// nodes and the edges among them.
    pub fn slice(&self, start: NodeId, end: NodeId) -> Result<Network, NetworkError> {
        self.node(start)?;
        self.node(end)?;
        // Forward-reachable from start.
        let fwd = self.reachable(start, true);
        // Backward-reachable from end.
        let bwd = self.reachable(end, false);
        let keep: BTreeSet<NodeId> = fwd.intersection(&bwd).copied().collect();
        let mut out = Network::new();
        // Preserve original ids for weight-name stability.
        for (&id, node) in &self.nodes {
            if keep.contains(&id) {
                out.nodes.insert(id, node.clone());
                out.next_id = out.next_id.max(id + 1);
            }
        }
        for &(f, t) in &self.edges {
            if keep.contains(&f) && keep.contains(&t) {
                out.edges.insert((f, t));
            }
        }
        Ok(out)
    }

    fn reachable(&self, from: NodeId, forward: bool) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::from([from]);
        while let Some(id) = q.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            let nbrs = if forward {
                self.next(id)
            } else {
                self.prev(id)
            };
            q.extend(nbrs);
        }
        seen
    }

    /// Regular-expression-style architecture summary (Table I), e.g.
    /// `(LconvLpool){2}Lip{2}`.
    pub fn architecture_string(&self) -> String {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return "<cyclic>".into(),
        };
        let mut tokens: Vec<String> = Vec::new();
        for id in order {
            let t = match &self.nodes[&id].kind {
                LayerKind::Conv { .. } => "Lconv",
                LayerKind::Pool { .. } => "Lpool",
                LayerKind::Full { .. } => "Lip",
                _ => continue,
            };
            tokens.push(t.to_string());
        }
        // Collapse consecutive repeats.
        let mut out = String::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut j = i;
            while j < tokens.len() && tokens[j] == tokens[i] {
                j += 1;
            }
            let count = j - i;
            if count > 1 {
                out.push_str(&format!("{}{{{}}}", tokens[i], count));
            } else {
                out.push_str(&tokens[i]);
            }
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, PoolKind};

    fn tiny_chain() -> Network {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 8,
                width: 8,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append("relu1", LayerKind::Act(Activation::ReLU)).unwrap();
        n.append(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 10 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        n
    }

    #[test]
    fn chain_construction_and_shapes() {
        let n = tiny_chain();
        assert_eq!(n.num_nodes(), 6);
        assert_eq!(n.num_edges(), 5);
        let shapes = n.infer_shapes().unwrap();
        let fc = n.node_by_name("fc1").unwrap().id;
        assert_eq!(shapes[&fc].0, (4, 3, 3));
        assert_eq!(shapes[&fc].1, (10, 1, 1));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = tiny_chain();
        assert!(matches!(
            n.add_layer("conv1", LayerKind::Softmax),
            Err(NetworkError::DuplicateName(_))
        ));
    }

    #[test]
    fn param_count() {
        let n = tiny_chain();
        // conv1: 4*(1*9+1)=40 ; fc1: 10*(4*3*3+1)=370
        assert_eq!(n.param_count().unwrap(), 410);
        assert_eq!(n.parametric_layers().unwrap(), vec!["conv1", "fc1"]);
    }

    #[test]
    fn cyclic_detected() {
        let mut n = tiny_chain();
        let a = n.node_by_name("conv1").unwrap().id;
        let b = n.node_by_name("fc1").unwrap().id;
        n.connect(b, a).unwrap();
        assert_eq!(n.topo_order(), Err(NetworkError::Cyclic));
    }

    #[test]
    fn insert_after_rewires() {
        let mut n = tiny_chain();
        let conv = n.node_by_name("conv1").unwrap().id;
        let id = n
            .insert_after(conv, "bnorm", LayerKind::Act(Activation::Tanh))
            .unwrap();
        assert_eq!(n.next(conv), vec![id]);
        let relu = n.node_by_name("relu1").unwrap().id;
        assert_eq!(n.next(id), vec![relu]);
        // Shapes still propagate.
        assert!(n.infer_shapes().is_ok());
    }

    #[test]
    fn delete_reconnects() {
        let mut n = tiny_chain();
        let relu = n.node_by_name("relu1").unwrap().id;
        let conv = n.node_by_name("conv1").unwrap().id;
        let pool = n.node_by_name("pool1").unwrap().id;
        n.delete_node(relu).unwrap();
        assert_eq!(n.next(conv), vec![pool]);
        assert_eq!(n.num_nodes(), 5);
    }

    #[test]
    fn slice_extracts_middle() {
        let n = tiny_chain();
        let conv = n.node_by_name("conv1").unwrap().id;
        let pool = n.node_by_name("pool1").unwrap().id;
        let sub = n.slice(conv, pool).unwrap();
        let names: Vec<&str> = sub.nodes().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "relu1", "pool1"]);
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn architecture_string_collapses_repeats() {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 28,
                width: 28,
            },
        )
        .unwrap();
        for i in 0..2 {
            n.append(
                &format!("conv{i}"),
                LayerKind::Conv {
                    out_channels: 8,
                    kernel: 5,
                    stride: 1,
                    pad: 0,
                },
            )
            .unwrap();
            n.append(
                &format!("pool{i}"),
                LayerKind::Pool {
                    kind: PoolKind::Max,
                    size: 2,
                    stride: 2,
                },
            )
            .unwrap();
        }
        n.append("ip1", LayerKind::Full { out: 100 }).unwrap();
        n.append("ip2", LayerKind::Full { out: 10 }).unwrap();
        assert_eq!(n.architecture_string(), "LconvLpoolLconvLpoolLip{2}");
    }

    #[test]
    fn input_node_validation() {
        let mut n = Network::new();
        n.append("fc", LayerKind::Full { out: 2 }).unwrap();
        assert_eq!(n.input_node(), Err(NetworkError::BadInput));
    }
}
