//! Forward evaluation of a network on a data point (`dlv eval`, DQL
//! `evaluate`, and the testing half of the lifecycle loop).

use crate::layer::{Activation, LayerKind, PoolKind};
use crate::network::{Network, NetworkError, NodeId};
use crate::simd;
use crate::weights::Weights;
use mh_tensor::Tensor3;
use std::collections::BTreeMap;

/// Full forward trace: activation at every node (kept for backprop and
/// debugging queries).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Output activation per node, in topological order.
    pub activations: BTreeMap<NodeId, Tensor3>,
    /// The final (sink) node's output.
    pub output: Tensor3,
}

/// Run the network forward on one input, recording every activation.
pub fn forward_trace(
    net: &Network,
    weights: &Weights,
    input: &Tensor3,
) -> Result<Trace, NetworkError> {
    let order = net.topo_order()?;
    let input_id = net.input_node()?;
    let mut acts: BTreeMap<NodeId, Tensor3> = BTreeMap::new();
    let mut last = input_id;
    for id in order {
        let node = net.node(id)?;
        let x = if id == input_id {
            input.clone()
        } else {
            let prev = net.prev(id);
            if prev.len() != 1 {
                return Err(NetworkError::NotAChain {
                    node: node.name.clone(),
                });
            }
            acts[&prev[0]].clone()
        };
        let y = apply_layer(&node.kind, &node.name, weights, &x)?;
        acts.insert(id, y);
        last = id;
    }
    let output = acts[&last].clone();
    Ok(Trace {
        activations: acts,
        output,
    })
}

/// Run the network forward, returning only the output activation.
pub fn forward(net: &Network, weights: &Weights, input: &Tensor3) -> Result<Tensor3, NetworkError> {
    Ok(forward_trace(net, weights, input)?.output)
}

/// Predict the class label (argmax of the final activation).
pub fn predict(net: &Network, weights: &Weights, input: &Tensor3) -> Result<usize, NetworkError> {
    Ok(forward(net, weights, input)?.argmax())
}

/// Classification accuracy over a labelled set.
pub fn accuracy(
    net: &Network,
    weights: &Weights,
    data: &[(Tensor3, usize)],
) -> Result<f32, NetworkError> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (x, label) in data {
        if predict(net, weights, x)? == *label {
            correct += 1;
        }
    }
    Ok(correct as f32 / data.len() as f32)
}

/// Apply a single layer.
pub fn apply_layer(
    kind: &LayerKind,
    name: &str,
    weights: &Weights,
    x: &Tensor3,
) -> Result<Tensor3, NetworkError> {
    let missing = || NetworkError::ShapeMismatch {
        node: name.to_string(),
    };
    match *kind {
        LayerKind::Input {
            channels,
            height,
            width,
        } => {
            if x.shape() != (channels, height, width) {
                return Err(missing());
            }
            Ok(x.clone())
        }
        LayerKind::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        } => {
            let w = weights.get(name).ok_or_else(missing)?;
            conv_forward(x, w, out_channels, kernel, stride, pad, name)
        }
        LayerKind::Pool { kind, size, stride } => Ok(pool_forward(x, kind, size, stride)),
        LayerKind::Full { out } => {
            let w = weights.get(name).ok_or_else(missing)?;
            if w.cols() != x.len() + 1 || w.rows() != out {
                return Err(missing());
            }
            let mut y = Tensor3::zeros(out, 1, 1);
            let flat = x.as_slice();
            for o in 0..out {
                let row = w.row(o);
                // Shared lane-structured kernel: interval evaluation uses
                // the same accumulation order, so zero-width intervals
                // reproduce this sum bit-for-bit.
                y.as_mut_slice()[o] = simd::dot_bias(&row[..x.len()], flat, row[x.len()]);
            }
            Ok(y)
        }
        LayerKind::Act(a) => Ok(x.map(|v| activate(a, v))),
        LayerKind::Flatten => Ok(Tensor3::from_vec(x.len(), 1, 1, x.as_slice().to_vec())),
        LayerKind::Softmax => Ok(softmax(x)),
        LayerKind::Dropout { .. } => Ok(x.clone()), // identity at inference
        LayerKind::Lrn {
            size,
            alpha,
            beta,
            k,
        } => Ok(lrn_forward(x, size, alpha, beta, k)),
    }
}

/// Channel window `[lo, hi)` around channel `i` for an LRN of width `size`.
#[inline]
pub(crate) fn lrn_window(i: usize, c: usize, size: usize) -> (usize, usize) {
    let half = size / 2;
    (i.saturating_sub(half), (i + half + 1).min(c))
}

/// Local response normalization across channels.
pub fn lrn_forward(x: &Tensor3, size: usize, alpha: f32, beta: f32, k: f32) -> Tensor3 {
    let (c, h, w) = x.shape();
    let mut y = Tensor3::zeros(c, h, w);
    let scale = alpha / size as f32;
    for yy in 0..h {
        for xx in 0..w {
            for i in 0..c {
                let (lo, hi) = lrn_window(i, c, size);
                let mut acc = k;
                for j in lo..hi {
                    let v = x.get(j, yy, xx);
                    acc += scale * v * v;
                }
                y.set(i, yy, xx, x.get(i, yy, xx) * acc.powf(-beta));
            }
        }
    }
    y
}

#[inline]
pub fn activate(a: Activation, v: f32) -> f32 {
    match a {
        Activation::ReLU => v.max(0.0),
        Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        Activation::Tanh => v.tanh(),
    }
}

/// Derivative of the activation given its *input* value.
#[inline]
pub fn activate_grad(a: Activation, v: f32) -> f32 {
    match a {
        Activation::ReLU => {
            if v > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Activation::Sigmoid => {
            let s = 1.0 / (1.0 + (-v).exp());
            s * (1.0 - s)
        }
        Activation::Tanh => 1.0 - v.tanh().powi(2),
    }
}

fn conv_forward(
    x: &Tensor3,
    w: &mh_tensor::Matrix,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    name: &str,
) -> Result<Tensor3, NetworkError> {
    let (in_c, h, win) = x.shape();
    let kind = LayerKind::Conv {
        out_channels,
        kernel,
        stride,
        pad,
    };
    let (oc, oh, ow) = kind
        .output_shape((in_c, h, win))
        .ok_or(NetworkError::ShapeMismatch {
            node: name.to_string(),
        })?;
    if w.shape() != (out_channels, in_c * kernel * kernel + 1) {
        return Err(NetworkError::ShapeMismatch {
            node: name.to_string(),
        });
    }
    let mut y = Tensor3::zeros(oc, oh, ow);
    let bias_col = in_c * kernel * kernel;
    for o in 0..oc {
        let row = w.row(o);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = row[bias_col];
                let y0 = (oy * stride) as isize - pad as isize;
                let x0 = (ox * stride) as isize - pad as isize;
                for ic in 0..in_c {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let v = x.get_padded(ic, y0 + ky as isize, x0 + kx as isize);
                            if v != 0.0 {
                                acc += row[(ic * kernel + ky) * kernel + kx] * v;
                            }
                        }
                    }
                }
                y.set(o, oy, ox, acc);
            }
        }
    }
    Ok(y)
}

fn pool_forward(x: &Tensor3, kind: PoolKind, size: usize, stride: usize) -> Tensor3 {
    let (c, h, w) = x.shape();
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let mut y = Tensor3::zeros(c, oh, ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for ky in 0..size {
                    for kx in 0..size {
                        let v = x.get(ch, oy * stride + ky, ox * stride + kx);
                        best = best.max(v);
                        sum += v;
                    }
                }
                let out = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / (size * size) as f32,
                };
                y.set(ch, oy, ox, out);
            }
        }
    }
    y
}

/// Numerically-stable softmax over the flattened tensor.
pub fn softmax(x: &Tensor3) -> Tensor3 {
    let m = x
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.as_slice().iter().map(|&v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    Tensor3::from_vec(x.len(), 1, 1, exps.into_iter().map(|e| e / z).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use mh_tensor::Matrix;

    fn chain() -> (Network, Weights) {
        let mut n = Network::new();
        n.append(
            "data",
            LayerKind::Input {
                channels: 1,
                height: 4,
                width: 4,
            },
        )
        .unwrap();
        n.append(
            "conv1",
            LayerKind::Conv {
                out_channels: 1,
                kernel: 2,
                stride: 1,
                pad: 0,
            },
        )
        .unwrap();
        n.append(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 3,
                stride: 1,
            },
        )
        .unwrap();
        n.append("fc1", LayerKind::Full { out: 2 }).unwrap();
        n.append("prob", LayerKind::Softmax).unwrap();
        let mut w = Weights::new();
        // conv kernel = all ones, bias 1.
        w.insert(
            "conv1",
            Matrix::from_vec(1, 5, vec![1.0, 1.0, 1.0, 1.0, 1.0]),
        );
        w.insert("fc1", Matrix::from_vec(2, 2, vec![1.0, 0.0, -1.0, 0.0]));
        (n, w)
    }

    #[test]
    fn forward_known_values() {
        let (n, w) = chain();
        let x = Tensor3::filled(1, 4, 4, 1.0);
        // conv output: each 2x2 window sums to 4, +1 bias = 5 (3x3 map).
        // max pool 3x3 -> 5. fc: [5*1+0, 5*-1+0] = [5, -5].
        let tr = forward_trace(&n, &w, &x).unwrap();
        let fc = n.node_by_name("fc1").unwrap().id;
        assert_eq!(tr.activations[&fc].as_slice(), &[5.0, -5.0]);
        let p = tr.output;
        assert!((p.as_slice()[0] + p.as_slice()[1] - 1.0).abs() < 1e-6);
        assert!(p.as_slice()[0] > 0.99);
        assert_eq!(predict(&n, &w, &x).unwrap(), 0);
    }

    #[test]
    fn avg_pool() {
        let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = pool_forward(&x, PoolKind::Avg, 2, 2);
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let x = Tensor3::filled(1, 3, 3, 1.0);
        let w = Matrix::from_vec(1, 10, vec![1.0; 10]);
        let y = conv_forward(&x, &w, 1, 3, 2, 1, "c").unwrap();
        assert_eq!(y.shape(), (1, 2, 2));
        // Top-left window covers 4 real pixels (corner) + bias 1 = 5.
        assert_eq!(y.get(0, 0, 0), 5.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = Tensor3::from_vec(3, 1, 1, vec![1000.0, 1000.0, 1000.0]);
        let p = softmax(&x);
        assert!((p.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for &v in p.as_slice() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn missing_weights_is_error() {
        let (n, _) = chain();
        let w = Weights::new();
        let x = Tensor3::filled(1, 4, 4, 1.0);
        assert!(forward(&n, &w, &x).is_err());
    }

    #[test]
    fn accuracy_counts() {
        let (n, w) = chain();
        let pos = Tensor3::filled(1, 4, 4, 1.0);
        let neg = Tensor3::filled(1, 4, 4, -1.0);
        // pos predicts 0; neg: conv = -4+1=-3, fc = [-3, 3] -> class 1.
        let data = vec![(pos, 0), (neg, 1)];
        assert_eq!(accuracy(&n, &w, &data).unwrap(), 1.0);
    }

    #[test]
    fn activation_grads_match_finite_difference() {
        for a in [Activation::ReLU, Activation::Sigmoid, Activation::Tanh] {
            for v in [-1.5f32, -0.3, 0.2, 2.0] {
                let eps = 1e-3;
                let num = (activate(a, v + eps) - activate(a, v - eps)) / (2.0 * eps);
                let ana = activate_grad(a, v);
                assert!((num - ana).abs() < 1e-2, "{a:?} at {v}: {num} vs {ana}");
            }
        }
    }
}
