//! Property tests over network structure mutations: insert/delete/slice
//! keep the DAG well-formed, shapes inferable where expected, and ids
//! stable.

use mh_dnn::{zoo, Activation, LayerKind};
use proptest::prelude::*;

/// Apply a random sequence of structure-preserving mutations.
#[derive(Debug, Clone)]
enum Mutation {
    InsertAfter { victim: usize },
    Delete { victim: usize },
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    proptest::collection::vec(
        prop_oneof![
            any::<usize>().prop_map(|victim| Mutation::InsertAfter { victim }),
            any::<usize>().prop_map(|victim| Mutation::Delete { victim }),
        ],
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutations_preserve_dag_invariants(muts in arb_mutations()) {
        let mut net = zoo::lenet_s(5);
        let input = net.input_node().unwrap();
        let mut inserted = 0usize;
        for m in muts {
            // Only elementwise layers are always shape-compatible.
            match m {
                Mutation::InsertAfter { victim } => {
                    let ids: Vec<usize> = net.nodes().map(|n| n.id).collect();
                    let target = ids[victim % ids.len()];
                    // Never insert after the sink softmax (training head
                    // invariant), and never create duplicate names.
                    if net.next(target).is_empty() {
                        continue;
                    }
                    let name = format!("mut{inserted}");
                    inserted += 1;
                    net.insert_after(target, &name, LayerKind::Act(Activation::Tanh)).unwrap();
                }
                Mutation::Delete { victim } => {
                    let deletable: Vec<usize> = net
                        .nodes()
                        .filter(|n| {
                            matches!(n.kind, LayerKind::Act(_) | LayerKind::Dropout { .. })
                        })
                        .map(|n| n.id)
                        .collect();
                    if deletable.is_empty() {
                        continue;
                    }
                    net.delete_node(deletable[victim % deletable.len()]).unwrap();
                }
            }
            // Invariants after every step.
            prop_assert!(net.topo_order().is_ok());
            prop_assert_eq!(net.input_node().unwrap(), input);
            prop_assert!(net.infer_shapes().is_ok());
            // Parametric layer set unchanged (we only touch elementwise).
            prop_assert_eq!(
                net.parametric_layers().unwrap(),
                vec!["conv1", "conv2", "ip1", "ip2"]
            );
        }
    }

    #[test]
    fn slices_between_random_endpoints_are_well_formed(a in any::<usize>(), b in any::<usize>()) {
        let net = zoo::alexnet_s(5);
        let ids: Vec<usize> = net.nodes().map(|n| n.id).collect();
        let (start, end) = (ids[a % ids.len()], ids[b % ids.len()]);
        let sub = net.slice(start, end).unwrap();
        // Either empty (no path) or a DAG whose sources/sinks are within
        // the requested endpoints.
        prop_assert!(sub.topo_order().is_ok());
        if sub.num_nodes() > 0 {
            for s in sub.sources() {
                prop_assert!(s == start || sub.prev(s).is_empty());
            }
            // Every kept node lies on a start→end path, so start and end
            // themselves are kept.
            prop_assert!(sub.node(start).is_ok());
            prop_assert!(sub.node(end).is_ok());
        }
    }
}
