//! `hubd` — the hosted hub server. A hand-rolled HTTP/1.1-subset server
//! over `std::net::TcpListener`; accepted connections are dispatched to a
//! fixed worker pool fed from an `mh_par::BoundedQueue` (worker count
//! from `--jobs` / `MH_THREADS` / core count, exactly like every other
//! parallel path in the workspace).
//!
//! ## Endpoints
//!
//! | method & path                  | body in            | body out |
//! |--------------------------------|--------------------|----------|
//! | `GET /repos`                   | —                  | repo names, one per line |
//! | `GET /search?q=<pct-pattern>`  | —                  | search hits (see `protocol::encode_hits`) |
//! | `GET /manifest/<name>`         | —                  | committed-content manifest |
//! | `POST /objects/<name>`         | "have" hashes      | object stream of missing objects |
//! | `POST /publish/<name>?phase=negotiate` | manifest   | "want" hashes, one per line |
//! | `POST /publish/<name>?phase=commit`    | manifest + object stream | `ok` |
//! | `GET /stats`                   | —                  | per-endpoint counters |
//! | `GET /metrics`                 | —                  | Prometheus text format (hub + process metrics) |
//!
//! Repository names are validated against path traversal before any
//! filesystem access; publishes are atomic replace-by-rename via
//! `mh_dlv::replace_published`.

use crate::http::{read_request, write_response_head, Request};
use crate::protocol::{
    encode_error, encode_hits, encode_manifest, object_stream_len, parse_manifest, pct_decode,
    read_object_stream, write_object, write_object_stream_end,
};
use crate::stats::{Endpoint, Stats};
use crate::HubError;
use mh_dlv::hash::{sha256_hex, Sha256};
use mh_dlv::{
    committed_manifest, replace_published, validate_rel_path, validate_repo_name, DlvError, Hub,
    ManifestEntry, Repository,
};
use mh_par::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use mh_par::sync::thread::JoinHandle;
use mh_par::BoundedQueue;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection socket deadline: a stalled peer cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Fault-injection knobs for tests: while `drop_object_responses > 0`,
/// each `/objects` response is truncated mid-object and the connection
/// dropped (decremented per faulted response). Exercises client
/// retry/backoff and pull resumption.
#[derive(Debug, Default)]
pub struct Faults {
    pub drop_object_responses: AtomicU32,
}

impl Faults {
    fn take_object_drop(&self) -> bool {
        self.drop_object_responses
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// A running hub server; dropping it (or calling [`HubServer::stop`])
/// shuts down the accept loop and joins every worker.
#[derive(Debug)]
pub struct HubServer {
    root: PathBuf,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    stats: Arc<Stats>,
    faults: Arc<Faults>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl HubServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) serving the
    /// hub rooted at `root`, with `jobs` workers (default: the ambient
    /// `mh_par` thread count).
    pub fn start(root: &Path, addr: &str, jobs: Option<usize>) -> Result<Self, HubError> {
        // Pre-register the process-wide series so `/metrics` exposes the
        // PAS / compression / worker-pool metrics at zero before any
        // request touches those code paths.
        mh_compress::register_metrics();
        mh_pas::register_metrics();
        mh_par::register_metrics();
        // Hub::open creates the root directory and validates access.
        Hub::open(root).map_err(HubError::Dlv)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = jobs.unwrap_or_else(mh_par::current_threads).clamp(1, 64);
        let queue = Arc::new(BoundedQueue::<TcpStream>::new(workers * 4));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::new());
        let faults = Arc::new(Faults::default());

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let faults = Arc::clone(&faults);
            let root = root.to_path_buf();
            worker_handles.push(mh_par::sync::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    handle_conn(&root, stream, &stats, &faults);
                }
            }));
        }

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            Some(mh_par::sync::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if queue.push(stream).is_err() {
                            break; // queue closed: shutting down
                        }
                    }
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }))
        };

        Ok(Self {
            root: root.to_path_buf(),
            local_addr,
            stop,
            queue,
            stats,
            faults,
            accept_handle,
            worker_handles,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The `http://host:port` URL clients should use.
    pub fn url(&self) -> String {
        format!("http://{}", self.local_addr)
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn stats(&self) -> Arc<Stats> {
        Arc::clone(&self.stats)
    }

    pub fn faults(&self) -> Arc<Faults> {
        Arc::clone(&self.faults)
    }

    /// Graceful shutdown: stop accepting, drain workers, join threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Serve until the process is killed (the `modelhub hubd` CLI path).
    pub fn run(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(500));
        self.queue.close_and_discard();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HubServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How a request was answered: a buffered body, or a response streamed
/// directly to the socket (the `/objects` path).
enum Handled {
    Full { status: u16, body: Vec<u8> },
    Streamed { bytes_out: u64, error: bool },
}

fn classify(path: &str) -> Endpoint {
    if path == "/repos" {
        Endpoint::Repos
    } else if path == "/stats" {
        Endpoint::Stats
    } else if path == "/metrics" {
        Endpoint::Metrics
    } else if path == "/search" {
        Endpoint::Search
    } else if path.starts_with("/manifest/") {
        Endpoint::Manifest
    } else if path.starts_with("/objects/") {
        Endpoint::Objects
    } else if path.starts_with("/publish/") {
        Endpoint::Publish
    } else {
        Endpoint::Other
    }
}

fn dlv_status(e: &DlvError) -> (u16, &'static str) {
    match e {
        DlvError::InvalidName(_) => (422, "invalid-name"),
        DlvError::NoSuchVersion(_) => (404, "not-found"),
        DlvError::AlreadyExists(_) => (409, "conflict"),
        _ => (500, "internal"),
    }
}

fn error_body(e: &DlvError) -> Handled {
    let (status, code) = dlv_status(e);
    Handled::Full {
        status,
        body: encode_error(code, &e.to_string()).into_bytes(),
    }
}

/// Protocol-level errors from request parsing: declared-size cap
/// violations are 422 `too-large` (well-formed but unacceptable);
/// everything else is a plain 400.
fn hub_error_body(e: &HubError) -> Handled {
    let (status, code) = match e {
        HubError::TooLarge(_) => (422, "too-large"),
        _ => (400, "bad-request"),
    };
    Handled::Full {
        status,
        body: encode_error(code, &e.to_string()).into_bytes(),
    }
}

/// Write a buffered response, reporting how many body bytes actually
/// reached the socket and whether the write completed. A peer that hangs
/// up mid-response must not be accounted as a full transfer.
fn write_full(stream: &mut TcpStream, status: u16, body: &[u8]) -> (u64, bool) {
    if write_response_head(stream, status, body.len() as u64).is_err() {
        return (0, false);
    }
    let mut written = 0usize;
    while written < body.len() {
        let rest = body.get(written..).unwrap_or_default();
        match stream.write(rest) {
            Ok(0) => return (written as u64, false),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (written as u64, false),
        }
    }
    (written as u64, stream.flush().is_ok())
}

/// Per-connection worker body: everything reachable from here handles
/// attacker-controlled bytes, so the whole router is a no-panic zone — a
/// request must never be able to kill a worker.
// mh-audit: no_panic_zone
fn handle_conn(root: &Path, stream: TcpStream, stats: &Stats, faults: &Faults) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut stream = stream;
    let mut reader = BufReader::new(read_half);
    let req = match read_request(&mut reader) {
        Ok(r) => r,
        Err(_) => {
            let body = encode_error("bad-request", "malformed request");
            let (bytes_out, _) = write_full(&mut stream, 400, body.as_bytes());
            stats.record(Endpoint::Other, 0, bytes_out, true);
            return;
        }
    };
    let ep = classify(&req.path);
    let bytes_in = req.body.len() as u64;
    let mut sp = mh_obs::span("hub.request");
    if sp.is_recording() {
        sp.field("endpoint", ep.name());
        sp.field("method", &req.method);
        sp.add_bytes_in(bytes_in);
    }
    // Stats are recorded at exactly one point per outcome, from the bytes
    // that actually hit the socket — never from the intended body length.
    let (bytes_out, error) = match route(root, &req, stats, faults, &mut stream) {
        Handled::Full { status, body } => {
            let (bytes_out, write_ok) = write_full(&mut stream, status, &body);
            (bytes_out, status >= 400 || !write_ok)
        }
        Handled::Streamed { bytes_out, error } => (bytes_out, error),
    };
    stats.record(ep, bytes_in, bytes_out, error);
    if sp.is_recording() {
        sp.add_bytes_out(bytes_out);
        sp.field("error", error);
    }
}

fn route(
    root: &Path,
    req: &Request,
    stats: &Stats,
    faults: &Faults,
    stream: &mut TcpStream,
) -> Handled {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/repos") => match Hub::open(root).and_then(|h| h.repositories()) {
            Ok(names) => Handled::Full {
                status: 200,
                body: names
                    .iter()
                    .map(|n| format!("{n}\n"))
                    .collect::<String>()
                    .into_bytes(),
            },
            Err(e) => error_body(&e),
        },
        ("GET", "/stats") => Handled::Full {
            status: 200,
            body: stats.render().into_bytes(),
        },
        ("GET", "/metrics") => Handled::Full {
            status: 200,
            body: stats.render_prometheus().into_bytes(),
        },
        ("GET", "/search") => {
            let pattern = req
                .query
                .as_deref()
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("q=").map(str::to_string))
                })
                .and_then(|enc| pct_decode(&enc).ok());
            let Some(pattern) = pattern else {
                return Handled::Full {
                    status: 400,
                    body: encode_error("bad-request", "search needs ?q=<pattern>").into_bytes(),
                };
            };
            match Hub::open(root).and_then(|h| h.search(&pattern)) {
                Ok(hits) => Handled::Full {
                    status: 200,
                    body: encode_hits(&hits).into_bytes(),
                },
                Err(e) => error_body(&e),
            }
        }
        ("GET", path) if path.starts_with("/manifest/") => {
            let name = path.strip_prefix("/manifest/").unwrap_or_default();
            match published_manifest(root, name) {
                Ok(manifest) => Handled::Full {
                    status: 200,
                    body: encode_manifest(&manifest).into_bytes(),
                },
                Err(e) => error_body(&e),
            }
        }
        ("POST", path) if path.starts_with("/objects/") => {
            let name = path.strip_prefix("/objects/").unwrap_or_default();
            let haves: BTreeSet<String> = std::str::from_utf8(&req.body)
                .unwrap_or("")
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            respond_objects(root, name, &haves, faults, stream)
        }
        ("POST", path) if path.starts_with("/publish/") => {
            let name = path.strip_prefix("/publish/").unwrap_or_default();
            let phase = req
                .query
                .as_deref()
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("phase=").map(str::to_string))
                })
                .unwrap_or_default();
            match phase.as_str() {
                "negotiate" => handle_negotiate(root, name, &req.body),
                "commit" => handle_commit(root, name, &req.body),
                other => Handled::Full {
                    status: 400,
                    body: encode_error("bad-request", &format!("unknown phase '{other}'"))
                        .into_bytes(),
                },
            }
        }
        _ => Handled::Full {
            status: 404,
            body: encode_error("not-found", "no such endpoint").into_bytes(),
        },
    }
}

/// The committed-content manifest of a published repository.
fn published_manifest(root: &Path, name: &str) -> Result<Vec<ManifestEntry>, DlvError> {
    validate_repo_name(name)?;
    let dir = root.join(name);
    if !dir.join("catalog.mhs").exists() {
        return Err(DlvError::NoSuchVersion(name.to_string()));
    }
    committed_manifest(&Repository::open(&dir)?)
}

/// Stream the objects of `name` the client does not yet have. The
/// response body is length-prefixed per object with a trailing
/// whole-transfer checksum; `Content-Length` is exact, so payload bytes
/// stream straight from disk without buffering the transfer.
fn respond_objects(
    root: &Path,
    name: &str,
    haves: &BTreeSet<String>,
    faults: &Faults,
    stream: &mut TcpStream,
) -> Handled {
    let manifest = match published_manifest(root, name) {
        Ok(m) => m,
        Err(e) => return error_body(&e),
    };
    let mut seen = BTreeSet::new();
    let missing: Vec<&ManifestEntry> = manifest
        .iter()
        .filter(|e| !haves.contains(&e.hash) && seen.insert(e.hash.clone()))
        .collect();
    let lens: Vec<(String, u64)> = missing.iter().map(|e| (e.hash.clone(), e.size)).collect();
    let total = object_stream_len(&lens);
    let dir = root.join(name);

    if faults.take_object_drop() {
        // Injected fault: promise the full stream, deliver a truncated
        // first object, then drop the connection.
        let mut partial = 0u64;
        if write_response_head(stream, 200, total).is_ok() {
            if let Some(first) = missing.first() {
                if let Ok(data) = std::fs::read(dir.join(&first.path)) {
                    let header = format!("obj {} {}\n", first.hash, data.len());
                    let half = data.get(..data.len() / 2).unwrap_or_default();
                    if stream.write_all(header.as_bytes()).is_ok() && stream.write_all(half).is_ok()
                    {
                        partial = half.len() as u64;
                    }
                }
            }
            let _ = stream.flush();
        }
        return Handled::Streamed {
            bytes_out: partial,
            error: true,
        };
    }

    if write_response_head(stream, 200, total).is_err() {
        return Handled::Streamed {
            bytes_out: 0,
            error: true,
        };
    }
    let mut transfer = Sha256::new();
    let mut bytes_out = 0u64;
    for entry in &missing {
        let data = match std::fs::read(dir.join(&entry.path)) {
            Ok(d) => d,
            Err(_) => {
                // Raced with a concurrent republish: drop the connection;
                // the client will retry against the new content.
                return Handled::Streamed {
                    bytes_out,
                    error: true,
                };
            }
        };
        if sha256_hex(&data) != entry.hash {
            return Handled::Streamed {
                bytes_out,
                error: true,
            };
        }
        if write_object(stream, &entry.hash, &data, &mut transfer).is_err() {
            return Handled::Streamed {
                bytes_out,
                error: true,
            };
        }
        bytes_out += data.len() as u64;
    }
    let end_ok = write_object_stream_end(stream, transfer)
        .and_then(|()| stream.flush())
        .is_ok();
    Handled::Streamed {
        bytes_out: if end_ok { total } else { bytes_out },
        error: !end_ok,
    }
}

/// Publish negototiation: given the client's manifest, answer with the
/// hashes the hub does not already hold under this name.
fn handle_negotiate(root: &Path, name: &str, body: &[u8]) -> Handled {
    if let Err(e) = validate_repo_name(name) {
        return error_body(&e);
    }
    let Ok(body) = std::str::from_utf8(body) else {
        return Handled::Full {
            status: 400,
            body: encode_error("bad-request", "manifest must be utf-8").into_bytes(),
        };
    };
    let manifest = match parse_manifest(body) {
        Ok(m) => m,
        Err(e) => return hub_error_body(&e),
    };
    let existing = match Hub::open(root).and_then(|h| h.published_objects(name)) {
        Ok(m) => m,
        Err(e) => return error_body(&e),
    };
    let wants: BTreeSet<&str> = manifest
        .iter()
        .filter(|e| !existing.contains_key(&e.hash))
        .map(|e| e.hash.as_str())
        .collect();
    let body: String = wants.iter().map(|h| format!("{h}\n")).collect();
    Handled::Full {
        status: 200,
        body: body.into_bytes(),
    }
}

/// Publish commit: body = `<manifest-byte-length>\n` + manifest + object
/// stream of the negotiated objects. Assembles the new publication from
/// received objects plus objects reused from the previous publication of
/// the same name, then atomically replaces it.
fn handle_commit(root: &Path, name: &str, body: &[u8]) -> Handled {
    if let Err(e) = validate_repo_name(name) {
        return error_body(&e);
    }
    let bad = |msg: &str| Handled::Full {
        status: 400,
        body: encode_error("bad-request", msg).into_bytes(),
    };
    let Some(nl) = body.iter().position(|&b| b == b'\n') else {
        return bad("missing manifest length prefix");
    };
    let Ok(manifest_len) = std::str::from_utf8(body.get(..nl).unwrap_or_default())
        .unwrap_or("")
        .trim()
        .parse::<usize>()
    else {
        return bad("bad manifest length prefix");
    };
    let rest = body.get(nl + 1..).unwrap_or_default();
    // The length-prefix check and the slice are one `get`: a prefix
    // exceeding the remaining body cannot reach the parser, and no
    // arithmetic on the attacker's length happens outside it.
    let Some(manifest_bytes) = rest.get(..manifest_len) else {
        return bad("manifest length prefix exceeds body");
    };
    let Ok(manifest_str) = std::str::from_utf8(manifest_bytes) else {
        return bad("manifest must be utf-8");
    };
    let manifest = match parse_manifest(manifest_str) {
        Ok(m) => m,
        Err(e) => return hub_error_body(&e),
    };
    for entry in &manifest {
        if let Err(e) = validate_rel_path(&entry.path) {
            return error_body(&e);
        }
    }
    let mut received: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut reader = std::io::BufReader::new(rest.get(manifest_len..).unwrap_or_default());
    if let Err(e) = read_object_stream(&mut reader, |hash, payload| {
        received.insert(hash.to_string(), payload.to_vec());
        Ok(())
    }) {
        if matches!(e, HubError::TooLarge(_)) {
            return hub_error_body(&e);
        }
        return bad(&format!("bad object stream: {e}"));
    }
    let existing = match Hub::open(root).and_then(|h| h.published_objects(name)) {
        Ok(m) => m,
        Err(e) => return error_body(&e),
    };
    // Every manifest hash must be covered before we stage anything.
    for entry in &manifest {
        if !received.contains_key(&entry.hash) && !existing.contains_key(&entry.hash) {
            return Handled::Full {
                status: 409,
                body: encode_error(
                    "conflict",
                    &format!("object {} neither uploaded nor already held", entry.hash),
                )
                .into_bytes(),
            };
        }
    }
    let old_dir = root.join(name);
    let result = replace_published(root, name, |stage| {
        mh_dlv::create_standard_dirs(stage).map_err(DlvError::Io)?;
        for entry in &manifest {
            let to = stage.join(&entry.path);
            if let Some(parent) = to.parent() {
                std::fs::create_dir_all(parent).map_err(DlvError::Io)?;
            }
            if let Some(data) = received.get(&entry.hash) {
                std::fs::write(&to, data).map_err(DlvError::Io)?;
            } else if let Some(rel) = existing.get(&entry.hash) {
                std::fs::copy(old_dir.join(rel), &to).map_err(DlvError::Io)?;
            }
        }
        Ok(())
    });
    match result {
        Ok(()) => Handled::Full {
            status: 200,
            body: b"ok\n".to_vec(),
        },
        Err(e) => error_body(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    #[test]
    fn write_full_reports_actual_bytes_on_broken_pipe() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");
        drop(client); // peer hangs up before we respond
        server_side
            .set_write_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // Far larger than any socket buffer, so the write must hit the
        // dead peer before completing.
        let body = vec![0u8; 32 * 1024 * 1024];
        let (written, ok) = write_full(&mut server_side, 200, &body);
        assert!(!ok, "write to a closed peer must be reported as failed");
        assert!(
            (written as usize) < body.len(),
            "partial write ({written} bytes) must not be accounted as the full body"
        );
    }

    #[test]
    fn write_full_counts_complete_writes_exactly() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = mh_par::sync::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).expect("connect");
            let mut sink = Vec::new();
            let _ = client.read_to_end(&mut sink);
            sink
        });
        let (mut server_side, _) = listener.accept().expect("accept");
        let body = vec![7u8; 256 * 1024];
        let (written, ok) = write_full(&mut server_side, 200, &body);
        drop(server_side);
        let received = reader.join().expect("reader");
        assert!(ok);
        assert_eq!(written as usize, body.len());
        assert!(received.ends_with(&body), "client saw the whole body");
    }
}
