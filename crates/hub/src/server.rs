//! `hubd` — the hosted hub server, built on a nonblocking reactor.
//!
//! One reactor thread owns every socket: a nonblocking listener, a wake
//! socket, and up to `--max-conns` client connections, multiplexed
//! through [`crate::reactor::Poller`] (epoll on Linux, portable
//! fallback elsewhere). Each connection is a small state machine:
//!
//! ```text
//!   accept ──▶ Reading ──▶ Dispatched ──▶ Writing ──▶ close
//!                │  (request complete:      ▲  │
//!                │   job → mh_par pool)     │  └─ partial writes resume
//!                │                          │     on EPOLLOUT
//!                └─ parse error ────────────┘  (completion queue + wake
//!                   (error response)            socket re-enter reactor)
//! ```
//!
//! CPU-bound request handling (manifest diffing, hash verification,
//! publish assembly) runs on the fixed `mh_par` worker pool; finished
//! responses come back through an `mh_par::CompletionQueue` whose waker
//! writes one byte to the wake socket, so the reactor never misses a
//! completion while parked in the poller (the handoff discipline is
//! model-checked in `mh_par::completion`).
//!
//! Two timeout axes defend every connection slot: an **idle timeout**
//! (no read/write progress) and a **per-state deadline** (maximum wall
//! time in one state, which a byte-at-a-time slowloris cannot reset by
//! trickling traffic). Backpressure answers `503` + `Retry-After` in
//! two places: at accept once `--max-conns` connections are open
//! (counted in `hub_connections_rejected_total`), and at head-parse
//! when a declared request body would overrun the reactor-wide
//! [`BodyBudget`] (counted in `hub_body_rejected_total`). A full worker
//! queue is *not* a rejection: complete requests park FIFO in
//! `ConnState::Queued` and retry as completions free slots. Hot objects
//! and manifest responses serve from the byte-budgeted
//! [`crate::cache::ObjectCache`] as zero-copy `Arc` segments on the
//! write buffer; payloads past the per-response
//! [`RESPONSE_LOAD_BUDGET`] (or too large for the cache to ever admit)
//! stream lazily from disk in bounded chunks, so per-connection staged
//! memory stays bounded no matter how large the repo.
//!
//! ## Endpoints
//!
//! | method & path                  | body in            | body out |
//! |--------------------------------|--------------------|----------|
//! | `GET /repos`                   | —                  | repo names, one per line |
//! | `GET /search?q=<pct-pattern>`  | —                  | search hits (see `protocol::encode_hits`) |
//! | `GET /manifest/<name>`         | —                  | committed-content manifest |
//! | `POST /objects/<name>`         | "have" hashes      | object stream of missing objects |
//! | `POST /publish/<name>?phase=negotiate` | manifest   | "want" hashes, one per line |
//! | `POST /publish/<name>?phase=commit`    | manifest + object stream | `ok` |
//! | `GET /stats`                   | —                  | per-endpoint counters |
//! | `GET /metrics`                 | —                  | Prometheus text format (hub + process metrics) |
//!
//! Repository names are validated against path traversal before any
//! filesystem access; publishes are atomic replace-by-rename via
//! `mh_dlv::replace_published` and invalidate the repo's cached
//! manifest.

use crate::cache::{manifest_key, manifest_prefix, object_key, ObjectCache};
use crate::http::{parse_request_head, response_head_bytes, Request, RequestHead, MAX_BODY_BYTES};
use crate::protocol::{
    encode_error, encode_hits, encode_manifest, object_stream_len, parse_manifest, pct_decode,
    read_object_stream,
};
use crate::reactor::{fd_of_listener, fd_of_stream, Event, Interest, Poller};
use crate::stats::{Endpoint, Stats};
use crate::HubError;
use mh_dlv::hash::{sha256_hex, Sha256};
use mh_dlv::{
    committed_manifest, replace_published, validate_rel_path, validate_repo_name, DlvError, Hub,
    ManifestEntry, Repository,
};
use mh_par::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use mh_par::sync::thread::JoinHandle;
use mh_par::{sync, BoundedQueue, CompletionQueue, TryPushError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Seek, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reactor tuning; [`HubServer::start`] uses the defaults, the CLI and
/// tests override through [`HubServer::start_with`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker pool width (default: the ambient `mh_par` thread count).
    pub jobs: Option<usize>,
    /// Maximum simultaneously open connections; beyond this, accepts are
    /// answered `503` + `Retry-After`.
    pub max_conns: usize,
    /// Byte budget for the hot-object/manifest cache (0 disables it).
    pub cache_bytes: usize,
    /// Reap a connection making no read/write progress for this long.
    pub idle_timeout: Duration,
    /// Reap a connection stuck in one state this long regardless of
    /// trickled progress (the anti-slowloris axis).
    pub state_deadline: Duration,
    /// Aggregate budget for declared request-body bytes buffered in
    /// userspace across all connections. A request whose declared body
    /// would overrun it is answered `503` + `Retry-After`; when nothing
    /// is in flight one body is always admitted regardless of size (so
    /// a single max-size publish can always make progress). Without
    /// this, `--max-conns` connections each declaring the per-request
    /// body cap could drive `max_conns × MAX_BODY_BYTES` of allocation.
    pub body_budget_bytes: u64,
    /// Worker-side handling time (ms) above which a request gets a
    /// slow-request warn line naming its trace id (0 disables).
    pub slow_ms: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            jobs: None,
            max_conns: 1024,
            cache_bytes: 64 << 20,
            idle_timeout: Duration::from_secs(10),
            state_deadline: Duration::from_secs(30),
            body_budget_bytes: 256 << 20,
            slow_ms: 1_000,
        }
    }
}

/// `Retry-After` seconds advertised on backpressure 503s.
const RETRY_AFTER_SECS: u32 = 1;

/// Poller tokens 0 and 1 are reserved; connections start at 2.
const WAKE_TOKEN: usize = 0;
const LISTENER_TOKEN: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

/// Per-read chunk size in the Reading state.
const READ_CHUNK: usize = 16 << 10;

/// Most bytes one connection may pull off its socket in a single read
/// pass. Bounds how far a fast sender can grow its buffer before the
/// head is parsed (and its declared body admitted against the
/// [`BodyBudget`]), and keeps one firehose connection from hogging the
/// reactor. Level-triggered readiness re-delivers the remainder on the
/// next tick.
const MAX_READ_PASS_BYTES: usize = 256 << 10;

/// Aggregate declared request-body bytes admitted for userspace
/// buffering across all live connections (reactor-thread state, no
/// atomics needed). Reserved when a request head parses, released when
/// its connection closes — the body `Vec` lives until the response is
/// done, and connections carry one request each.
#[derive(Debug)]
struct BodyBudget {
    cap: u64,
    in_use: u64,
}

impl BodyBudget {
    fn new(cap: u64) -> Self {
        Self { cap, in_use: 0 }
    }

    /// Admit `want` declared body bytes, or refuse. When nothing is in
    /// flight one body is always admitted (even past the cap): a single
    /// max-size request must be able to make progress, and the resulting
    /// bound is `max(cap, MAX_BODY_BYTES)` rather than unbounded.
    fn try_reserve(&mut self, want: u64) -> bool {
        if want == 0 {
            return true;
        }
        if self.in_use > 0 && self.in_use.saturating_add(want) > self.cap {
            return false;
        }
        self.in_use = self.in_use.saturating_add(want);
        true
    }

    fn release(&mut self, reserved: u64) {
        self.in_use = self.in_use.saturating_sub(reserved);
    }
}

/// Fault-injection knobs for tests: while `drop_object_responses > 0`,
/// each `/objects` response is truncated mid-object and the connection
/// dropped (decremented per faulted response). Exercises client
/// retry/backoff and pull resumption.
#[derive(Debug, Default)]
pub struct Faults {
    pub drop_object_responses: AtomicU32,
}

impl Faults {
    fn take_object_drop(&self) -> bool {
        self.drop_object_responses
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// A running hub server; dropping it (or calling [`HubServer::stop`])
/// shuts down the reactor, drains the worker pool, and joins every
/// thread.
#[derive(Debug)]
pub struct HubServer {
    root: PathBuf,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Waker,
    jobs: Arc<BoundedQueue<Job>>,
    stats: Arc<Stats>,
    faults: Arc<Faults>,
    reactor_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

/// One byte to the reactor's wake socket. Nonblocking: a full socket
/// buffer means a wakeup is already pending, so `WouldBlock` is success.
#[derive(Debug)]
struct Waker {
    tx: TcpStream,
}

impl Waker {
    fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            tx: self.tx.try_clone()?,
        })
    }
}

/// Loopback socketpair for the wake channel: connect to an ephemeral
/// listener and accept our own connection back (verified by peer
/// address, so a port-scanner racing the accept cannot hijack it).
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let ours = tx.local_addr()?;
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == ours {
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            let _ = tx.set_nodelay(true);
            return Ok((tx, rx));
        }
    }
    Err(std::io::Error::other("wake socketpair: peer never matched"))
}

impl HubServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) serving the
    /// hub rooted at `root`, with `jobs` workers (default: the ambient
    /// `mh_par` thread count) and default reactor limits.
    pub fn start(root: &Path, addr: &str, jobs: Option<usize>) -> Result<Self, HubError> {
        Self::start_with(
            root,
            addr,
            Config {
                jobs,
                ..Config::default()
            },
        )
    }

    /// [`HubServer::start`] with full reactor tuning.
    pub fn start_with(root: &Path, addr: &str, config: Config) -> Result<Self, HubError> {
        // Pre-register the process-wide series so `/metrics` exposes the
        // PAS / compression / worker-pool metrics at zero before any
        // request touches those code paths.
        mh_compress::register_metrics();
        mh_pas::register_metrics();
        mh_par::register_metrics();
        // The flight recorder is always on while a hub serves: recent
        // spans and warn/error events stay available at
        // `GET /debug/flightrec` even with span tracing off.
        mh_obs::flightrec::enable();
        // Hub::open creates the root directory and validates access.
        Hub::open(root).map_err(HubError::Dlv)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = config
            .jobs
            .unwrap_or_else(mh_par::current_threads)
            .clamp(1, 64);
        let jobs = Arc::new(BoundedQueue::<Job>::new(workers * 4));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::new());
        let faults = Arc::new(Faults::default());
        let cache = Arc::new(ObjectCache::new(config.cache_bytes, stats.cache_metrics()));

        let (wake_tx, wake_rx) = wake_pair()?;
        let wake = Waker { tx: wake_tx };
        let completion_waker = wake.try_clone()?;
        let completions: Arc<CompletionQueue<Completion>> =
            Arc::new(CompletionQueue::new(move || completion_waker.wake()));

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let stats = Arc::clone(&stats);
            let faults = Arc::clone(&faults);
            let cache = Arc::clone(&cache);
            let root = root.to_path_buf();
            let slow_ms = config.slow_ms;
            worker_handles.push(sync::thread::spawn(move || {
                while let Some(job) = jobs.pop() {
                    let resp = process(&root, &job, &stats, &faults, &cache, slow_ms);
                    // Make the request's trace durable before answering:
                    // the JSONL sink buffers, and a served hub is usually
                    // stopped by signal, which never reaches a flush.
                    if mh_obs::enabled() {
                        mh_obs::flush();
                    }
                    completions.push(Completion {
                        token: job.token,
                        resp,
                    });
                }
            }));
        }

        let reactor_handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let jobs = Arc::clone(&jobs);
            let config = config.clone();
            Some(sync::thread::spawn(move || {
                let mut reactor =
                    match Reactor::new(listener, wake_rx, stop, stats, jobs, completions, config) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                reactor.run();
            }))
        };

        Ok(Self {
            root: root.to_path_buf(),
            local_addr,
            stop,
            wake,
            jobs,
            stats,
            faults,
            reactor_handle,
            worker_handles,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The `http://host:port` URL clients should use.
    pub fn url(&self) -> String {
        format!("http://{}", self.local_addr)
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn stats(&self) -> Arc<Stats> {
        Arc::clone(&self.stats)
    }

    pub fn faults(&self) -> Arc<Faults> {
        Arc::clone(&self.faults)
    }

    /// Graceful shutdown: stop the reactor, drain workers, join threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Serve until the process is killed (the `modelhub hubd` CLI path).
    pub fn run(mut self) {
        if let Some(h) = self.reactor_handle.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(h) = self.reactor_handle.take() {
            let _ = h.join();
        }
        self.jobs.close_and_discard();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HubServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A parsed request handed to the worker pool.
#[derive(Debug)]
struct Job {
    token: usize,
    req: Request,
    ep: Endpoint,
}

/// A finished response on its way back to the reactor.
#[derive(Debug)]
struct Completion {
    token: usize,
    resp: Response,
}

/// Chunk size for lazily-streamed file segments (and for the streaming
/// hash-verify pass that stages them).
const FILE_CHUNK: usize = 64 << 10;

/// A payload streamed from disk in bounded chunks on write readiness:
/// the staged segment costs one scratch buffer (≤ [`FILE_CHUNK`]), not
/// the whole object — so a never-reading client holds kilobytes, not
/// the multi-GiB object it requested. The open handle pins the inode,
/// so a raced republish (replace-by-rename) cannot swap the verified
/// bytes out from under the stream. Chunk reads are blocking disk I/O
/// on the reactor thread, bounded at [`FILE_CHUNK`] per pass — the
/// standard tradeoff for a sendfile-less event loop.
#[derive(Debug)]
struct FileSeg {
    file: std::fs::File,
    /// Total payload length (what the object header declared).
    len: u64,
    /// Bytes not yet read out of the file.
    remaining: u64,
    /// Scratch chunk awaiting socket writes; the write cursor into it is
    /// the connection's `seg_pos`.
    buf: Vec<u8>,
}

impl FileSeg {
    fn new(file: std::fs::File, len: u64) -> Self {
        Self {
            file,
            len,
            remaining: len,
            buf: Vec::new(),
        }
    }

    /// Refill the scratch buffer with the next chunk. Errors (including
    /// premature EOF: the file shrank under us) are unrecoverable — the
    /// declared Content-Length can no longer be honored and the caller
    /// must drop the connection.
    // mh-audit: no_panic_zone
    fn refill(&mut self) -> Result<(), ()> {
        let want = usize::try_from(self.remaining.min(FILE_CHUNK as u64)).unwrap_or(FILE_CHUNK);
        self.buf.resize(want, 0);
        loop {
            // mh-audit: allow(R002, bounded FILE_CHUNK read of a local segment file — the documented serve-from-reactor tradeoff, see DESIGN.md)
            match self.file.read(&mut self.buf) {
                Ok(0) => return Err(()), // premature EOF
                Ok(n) => {
                    self.buf.truncate(n);
                    self.remaining = self.remaining.saturating_sub(n as u64);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }
}

/// One write-buffer segment: owned bytes (heads, error bodies, framing
/// lines), a zero-copy reference into the object cache, or a lazily
/// chunk-streamed file.
#[derive(Debug)]
enum Seg {
    Owned(Vec<u8>),
    Shared(Arc<Vec<u8>>),
    File(FileSeg),
}

impl Seg {
    /// In-memory bytes of this segment right now (a `File` segment
    /// exposes only its current scratch chunk).
    fn as_slice(&self) -> &[u8] {
        match self {
            Self::Owned(v) => v,
            Self::Shared(v) => v,
            Self::File(f) => &f.buf,
        }
    }

    /// Total bytes this segment contributes to the response body.
    fn len(&self) -> u64 {
        match self {
            Self::Owned(v) => v.len() as u64,
            Self::Shared(v) => v.len() as u64,
            Self::File(f) => f.len,
        }
    }
}

/// A fully-staged response: HTTP head + body segments. `truncated`
/// marks fault-injected partial streams (declared length not delivered)
/// so stats record the outcome as an error even on status 200.
#[derive(Debug)]
struct Response {
    status: u16,
    segs: Vec<Seg>,
    head_len: u64,
    truncated: bool,
}

impl Response {
    fn new(status: u16, declared_len: u64, body: Vec<Seg>, truncated: bool) -> Self {
        let head = response_head_bytes(status, declared_len, None);
        let head_len = head.len() as u64;
        let mut segs = Vec::with_capacity(body.len() + 1);
        segs.push(Seg::Owned(head));
        segs.extend(body);
        Self {
            status,
            segs,
            head_len,
            truncated,
        }
    }

    fn full(status: u16, body: Vec<u8>) -> Self {
        let len = body.len() as u64;
        Self::new(status, len, vec![Seg::Owned(body)], false)
    }

    fn error(status: u16, code: &str, message: &str) -> Self {
        Self::full(status, encode_error(code, message).into_bytes())
    }

    /// Backpressure answer: 503 with `Retry-After`.
    fn saturated(message: &str) -> Self {
        let body = encode_error("saturated", message).into_bytes();
        let head = response_head_bytes(503, body.len() as u64, Some(RETRY_AFTER_SECS));
        let head_len = head.len() as u64;
        Self {
            status: 503,
            segs: vec![Seg::Owned(head), Seg::Owned(body)],
            head_len,
            truncated: false,
        }
    }
}

/// Per-connection state. `Reading` accumulates the head+body buffer;
/// `Queued` parks a complete request while the worker queue is full
/// (retried FIFO as completions free slots); `Dispatched` parks the
/// socket (interest `None`) while the worker pool holds the request;
/// `Writing` drains the segment list across partial writes.
#[derive(Debug)]
enum ConnState {
    Reading {
        buf: Vec<u8>,
        head: Option<RequestHead>,
        eof: bool,
    },
    Queued {
        job: Job,
    },
    Dispatched,
    Writing {
        resp: Response,
        seg_idx: usize,
        seg_pos: usize,
        written: u64,
    },
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    state: ConnState,
    interest: Interest,
    ep: Endpoint,
    bytes_in: u64,
    /// Declared body bytes this connection holds against the reactor's
    /// [`BodyBudget`]; released at close.
    body_reserved: u64,
    last_activity: Instant,
    state_entered: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            state: ConnState::Reading {
                buf: Vec::new(),
                head: None,
                eof: false,
            },
            interest: Interest::Read,
            ep: Endpoint::Other,
            bytes_in: 0,
            body_reserved: 0,
            last_activity: now,
            state_entered: now,
        }
    }

    /// Body bytes that actually reached the socket so far.
    fn body_bytes_written(&self) -> u64 {
        match &self.state {
            ConnState::Writing { resp, written, .. } => written.saturating_sub(resp.head_len),
            _ => 0,
        }
    }
}

/// What to do with a connection after an I/O pass.
enum Disposition {
    Keep,
    /// Close and record stats; `error` marks failed/partial outcomes.
    Close {
        error: bool,
    },
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
    jobs: Arc<BoundedQueue<Job>>,
    completions: Arc<CompletionQueue<Completion>>,
    config: Config,
    conns: BTreeMap<usize, Conn>,
    /// Tokens whose requests are parked in `ConnState::Queued`, FIFO.
    queued: VecDeque<usize>,
    body_budget: BodyBudget,
    next_token: usize,
    events: Vec<Event>,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        wake_rx: TcpStream,
        stop: Arc<AtomicBool>,
        stats: Arc<Stats>,
        jobs: Arc<BoundedQueue<Job>>,
        completions: Arc<CompletionQueue<Completion>>,
        config: Config,
    ) -> std::io::Result<Self> {
        let mut poller = Poller::new()?;
        poller.register(fd_of_stream(&wake_rx), WAKE_TOKEN, Interest::Read)?;
        poller.register(fd_of_listener(&listener), LISTENER_TOKEN, Interest::Read)?;
        let body_budget = BodyBudget::new(config.body_budget_bytes);
        Ok(Self {
            poller,
            listener,
            wake_rx,
            stop,
            stats,
            jobs,
            completions,
            config,
            conns: BTreeMap::new(),
            queued: VecDeque::new(),
            body_budget,
            next_token: FIRST_CONN_TOKEN,
            events: Vec::new(),
        })
    }

    /// Poll tick: short enough that timeout reaping stays responsive
    /// even against sub-second test deadlines.
    fn tick(&self) -> Duration {
        let finest = self.config.idle_timeout.min(self.config.state_deadline);
        (finest / 4).clamp(Duration::from_millis(5), Duration::from_millis(200))
    }

    /// The event loop. Everything reachable from here handles
    /// attacker-controlled bytes, so the whole dispatch path is a
    /// no-panic zone — a connection must never be able to kill the
    /// reactor. It is also a nonblocking zone: one parked reactor
    /// stalls every connection, so no transitively-blocking call may
    /// be reachable (the poller's own bounded wait is the single
    /// waived exception).
    // mh-audit: no_panic_zone
    // mh-audit: nonblocking_zone
    fn run(&mut self) {
        loop {
            let tick = self.tick();
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller.wait(&mut events, tick);
            if self.stop.load(Ordering::SeqCst) {
                self.events = events;
                break;
            }
            for ev in &events {
                match ev.token {
                    WAKE_TOKEN => self.drain_wake(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, *ev),
                }
            }
            self.events = events;
            self.deliver_completions();
            self.drain_queued();
            self.reap_expired();
        }
        // Shutdown: every open connection is abandoned; account them as
        // errored so stats never silently lose a connection.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, true);
        }
    }

    fn drain_wake(&mut self) {
        let mut scratch = [0u8; 256];
        loop {
            // mh-audit: allow(R002, wake pipe is set nonblocking at construction — a drained pipe returns WouldBlock instead of parking)
            match (&self.wake_rx).read(&mut scratch) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            // mh-audit: allow(R002, listener is set nonblocking — an empty backlog returns WouldBlock instead of parking)
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock or transient accept failure
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let now = sync::now();
            let token = self.next_token;
            self.next_token = self.next_token.wrapping_add(1).max(FIRST_CONN_TOKEN);
            let mut conn = Conn::new(stream, now);
            if self.conns.len() >= self.config.max_conns {
                // Saturated: answer 503 + Retry-After instead of queueing
                // the connection. The tiny response still goes through
                // the normal Writing machinery so a slow reject cannot
                // block the reactor either.
                self.stats.conn_rejected().inc();
                set_writing(
                    &mut conn,
                    Response::saturated("connection limit reached"),
                    now,
                );
            }
            let interest = conn.interest;
            if self
                .poller
                .register(fd_of_stream(&conn.stream), token, interest)
                .is_err()
            {
                continue;
            }
            self.conns.insert(token, conn);
            let open = self.conns.len() as i64;
            self.stats.conn_open().set(open);
            if open > self.stats.conn_peak().get() {
                self.stats.conn_peak().set(open);
            }
            // Drive freshly-accepted rejects immediately; their sockets
            // are almost always writable right now.
            if let Some(c) = self.conns.get(&token) {
                if matches!(c.state, ConnState::Writing { .. }) {
                    self.conn_ready(
                        token,
                        Event {
                            token,
                            readable: false,
                            writable: true,
                        },
                    );
                }
            }
        }
    }

    /// Advance one connection's state machine for a readiness event.
    fn conn_ready(&mut self, token: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let reading = matches!(conn.state, ConnState::Reading { .. });
        let writing = matches!(conn.state, ConnState::Writing { .. });
        let disposition = if reading && ev.readable {
            read_some(conn, &mut self.body_budget, &self.stats)
        } else if writing && ev.writable {
            write_some(conn)
        } else {
            Disposition::Keep
        };
        match disposition {
            Disposition::Keep => {
                self.after_progress(token);
            }
            Disposition::Close { error } => self.close_conn(token, error),
        }
    }

    /// Post-I/O transitions: dispatch completed requests, update poller
    /// interest to match the state.
    fn after_progress(&mut self, token: usize) {
        // A complete request leaves Reading: hand it to the pool, or
        // park it FIFO when the pool's queue is momentarily full — the
        // connection count is already bounded by `max_conns`, so the
        // parked set is too.
        let dispatch = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            take_ready_request(conn)
        };
        if let Some(req) = dispatch {
            let ep = classify(&req.path);
            let now = sync::now();
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.ep = ep;
            conn.bytes_in = req.body.len() as u64;
            conn.interest = Interest::None;
            conn.state_entered = now;
            conn.last_activity = now;
            match self.jobs.try_push(Job { token, req, ep }) {
                Ok(()) => {
                    conn.state = ConnState::Dispatched;
                }
                Err(TryPushError::Full(job)) => {
                    conn.state = ConnState::Queued { job };
                    self.queued.push_back(token);
                }
                Err(TryPushError::Closed(_)) => {
                    self.close_conn(token, true);
                    return;
                }
            }
        }
        self.sync_interest(token);
    }

    /// Retry parked dispatches in arrival order. Runs every loop pass:
    /// worker completions (and pops) free queue slots between passes.
    fn drain_queued(&mut self) {
        while let Some(&token) = self.queued.front() {
            let Some(conn) = self.conns.get_mut(&token) else {
                // Reaped while parked; drop the stale token.
                self.queued.pop_front();
                continue;
            };
            if !matches!(conn.state, ConnState::Queued { .. }) {
                self.queued.pop_front();
                continue;
            }
            let state = std::mem::replace(&mut conn.state, ConnState::Dispatched);
            let ConnState::Queued { job } = state else {
                continue; // unreachable: matched Queued above
            };
            match self.jobs.try_push(job) {
                Ok(()) => {
                    conn.state_entered = sync::now();
                    self.queued.pop_front();
                }
                Err(TryPushError::Full(job)) => {
                    // Still no room; put it back and stop — FIFO order.
                    conn.state = ConnState::Queued { job };
                    break;
                }
                Err(TryPushError::Closed(_)) => {
                    self.queued.pop_front();
                    self.close_conn(token, true);
                }
            }
        }
    }

    /// Reconcile poller interest with the connection's current state.
    fn sync_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = match &conn.state {
            ConnState::Reading { .. } => Interest::Read,
            ConnState::Queued { .. } | ConnState::Dispatched => Interest::None,
            ConnState::Writing { .. } => Interest::Write,
        };
        if conn.interest != want {
            let fd = fd_of_stream(&conn.stream);
            if self.poller.modify(fd, token, want).is_ok() {
                conn.interest = want;
            }
        }
    }

    /// Move finished worker responses onto their connections' write
    /// buffers and try an immediate flush (the common case: the whole
    /// response fits in the socket buffer in one pass).
    fn deliver_completions(&mut self) {
        for Completion { token, resp } in self.completions.drain() {
            let now = sync::now();
            match self.conns.get_mut(&token) {
                Some(conn) if matches!(conn.state, ConnState::Dispatched) => {
                    set_writing(conn, resp, now);
                }
                // Connection already reaped (timeout) or recycled: the
                // response has nowhere to go.
                _ => continue,
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                match write_some(conn) {
                    Disposition::Keep => self.sync_interest(token),
                    Disposition::Close { error } => self.close_conn(token, error),
                }
            }
        }
    }

    /// Enforce both timeout axes. A stalled connection is reaped without
    /// touching any other connection's progress.
    fn reap_expired(&mut self) {
        let now = sync::now();
        let idle = self.config.idle_timeout;
        let deadline = self.config.state_deadline;
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                let idle_for = now.saturating_duration_since(c.last_activity);
                let in_state = now.saturating_duration_since(c.state_entered);
                match c.state {
                    // The pool decides how long request handling takes;
                    // only the overall state deadline applies while a
                    // request is queued or dispatched.
                    ConnState::Queued { .. } | ConnState::Dispatched => in_state > deadline,
                    _ => idle_for > idle || in_state > deadline,
                }
            })
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            self.close_conn(token, true);
        }
    }

    /// Record the connection's stats exactly once and drop it.
    fn close_conn(&mut self, token: usize, error: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.body_budget.release(conn.body_reserved);
        let _ = self.poller.deregister(fd_of_stream(&conn.stream), token);
        self.stats.conn_open().set(self.conns.len() as i64);
        let status_error = match &conn.state {
            ConnState::Writing { resp, .. } => resp.status >= 400 || resp.truncated,
            _ => false,
        };
        self.stats.record(
            conn.ep,
            conn.bytes_in,
            conn.body_bytes_written(),
            error || status_error,
        );
    }
}

/// Enter the Writing state with a staged response.
fn set_writing(conn: &mut Conn, resp: Response, now: Instant) {
    conn.state = ConnState::Writing {
        resp,
        seg_idx: 0,
        seg_pos: 0,
        written: 0,
    };
    // Poller interest is reconciled by the caller via sync_interest.
    conn.state_entered = now;
    conn.last_activity = now;
}

/// Nonblocking read pass in the Reading state. Returns Close on fatal
/// parse errors only after staging the error response (so the close
/// goes through Writing); returns Close directly on transport failure.
/// At most [`MAX_READ_PASS_BYTES`] are buffered per pass, so the parse
/// (and the [`BodyBudget`] admission decision) runs before a fast
/// sender can grow the buffer unboundedly.
// mh-audit: no_panic_zone
fn read_some(conn: &mut Conn, budget: &mut BodyBudget, stats: &Stats) -> Disposition {
    let mut progressed = false;
    let mut transport_dead = false;
    {
        let ConnState::Reading { buf, head, eof } = &mut conn.state else {
            return Disposition::Keep;
        };
        let mut chunk = [0u8; READ_CHUNK];
        let mut pass_bytes = 0usize;
        loop {
            // Stop reading once the staged request is complete; anything
            // extra is ignored (one request per connection).
            if let Some(h) = head.as_ref() {
                let expect = h.head_len.saturating_add(h.content_length as usize);
                if buf.len() >= expect {
                    break;
                }
            }
            if pass_bytes >= MAX_READ_PASS_BYTES {
                break; // level-triggered readiness re-delivers the rest
            }
            // mh-audit: allow(R002, connection sockets are set nonblocking on accept — reads return WouldBlock instead of parking)
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // EOF with a complete request is the half-close idiom
                    // (send, shutdown write, await the response); an
                    // incomplete request at EOF is answered 400 below.
                    *eof = true;
                    break;
                }
                Ok(n) => {
                    buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                    pass_bytes = pass_bytes.saturating_add(n);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    transport_dead = true;
                    break;
                }
            }
        }
    }
    if transport_dead {
        return Disposition::Close { error: true };
    }
    let now = sync::now();
    if progressed {
        conn.last_activity = now;
    }

    // Parse as far as the buffer allows.
    let ConnState::Reading { buf, head, eof } = &mut conn.state else {
        return Disposition::Keep;
    };
    if head.is_none() {
        match parse_request_head(buf) {
            Ok(Some(h)) => {
                if h.content_length > MAX_BODY_BYTES {
                    set_writing(
                        conn,
                        Response::error(
                            400,
                            "bad-request",
                            &format!("request body too large ({} bytes)", h.content_length),
                        ),
                        now,
                    );
                    return Disposition::Keep;
                }
                // Admit the declared body against the reactor-wide
                // budget before buffering it; refusal is backpressure
                // (retryable), not a protocol error.
                if !budget.try_reserve(h.content_length) {
                    stats.body_rejected().inc();
                    set_writing(
                        conn,
                        Response::saturated("request-body budget exhausted"),
                        now,
                    );
                    return Disposition::Keep;
                }
                conn.body_reserved = h.content_length;
                *head = Some(h);
            }
            Ok(None) => {
                if *eof {
                    // Peer hung up before completing a request head.
                    set_writing(
                        conn,
                        Response::error(400, "bad-request", "malformed request"),
                        now,
                    );
                    return Disposition::Keep;
                }
            }
            Err(e) => {
                let resp = protocol_error_response(&e);
                set_writing(conn, resp, now);
                return Disposition::Keep;
            }
        }
    }
    if let Some(h) = head.as_ref() {
        let expect = h.head_len.saturating_add(h.content_length as usize);
        if buf.len() < expect && *eof {
            set_writing(
                conn,
                Response::error(400, "bad-request", "malformed request"),
                now,
            );
        }
    }
    Disposition::Keep
}

/// If the Reading buffer holds a complete request, extract it.
fn take_ready_request(conn: &mut Conn) -> Option<Request> {
    let ConnState::Reading { buf, head, .. } = &mut conn.state else {
        return None;
    };
    let h = head.as_ref()?;
    let expect = h.head_len.saturating_add(h.content_length as usize);
    if buf.len() < expect {
        return None;
    }
    let body = buf
        .get(h.head_len..expect)
        .map(<[u8]>::to_vec)
        .unwrap_or_default();
    let h = head.take()?;
    buf.clear();
    Some(Request {
        method: h.method,
        path: h.path,
        query: h.query,
        trace: h.trace,
        body,
    })
}

/// Nonblocking write pass in the Writing state: drain segments until
/// done, blocked, or broken. `File` segments refill their bounded
/// scratch chunk from disk as the socket drains it, so per-connection
/// write memory stays O([`FILE_CHUNK`]) regardless of payload size.
// mh-audit: no_panic_zone
fn write_some(conn: &mut Conn) -> Disposition {
    let mut progressed = false;
    let done = {
        let ConnState::Writing {
            resp,
            seg_idx,
            seg_pos,
            written,
        } = &mut conn.state
        else {
            return Disposition::Keep;
        };
        loop {
            let Some(seg) = resp.segs.get_mut(*seg_idx) else {
                break true; // every segment fully written
            };
            if let Seg::File(fs) = seg {
                // Scratch drained with file bytes left: pull the next
                // chunk and restart the write cursor on it.
                if *seg_pos >= fs.buf.len() && fs.remaining > 0 {
                    if fs.refill().is_err() {
                        return Disposition::Close { error: true };
                    }
                    *seg_pos = 0;
                }
            }
            let rest = seg.as_slice().get(*seg_pos..).unwrap_or_default();
            if rest.is_empty() {
                *seg_idx = seg_idx.saturating_add(1);
                *seg_pos = 0;
                continue;
            }
            // mh-audit: allow(R002, connection sockets are set nonblocking on accept — writes return WouldBlock instead of parking)
            match (&conn.stream).write(rest) {
                Ok(0) => return Disposition::Close { error: true },
                Ok(n) => {
                    *seg_pos = seg_pos.saturating_add(n);
                    *written = written.saturating_add(n as u64);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Close { error: true },
            }
        }
    };
    if progressed {
        conn.last_activity = sync::now();
    }
    if done {
        // Connection: close — one request per connection.
        Disposition::Close { error: false }
    } else {
        Disposition::Keep
    }
}

/// Map a request-parse error to its response, preserving the blocking
/// server's status mapping (TooLarge → 422, everything else → 400).
fn protocol_error_response(e: &HubError) -> Response {
    let (status, code) = match e {
        HubError::TooLarge(_) => (422, "too-large"),
        _ => (400, "bad-request"),
    };
    Response::error(status, code, &e.to_string())
}

fn classify(path: &str) -> Endpoint {
    if path == "/repos" {
        Endpoint::Repos
    } else if path == "/stats" {
        Endpoint::Stats
    } else if path == "/metrics" {
        Endpoint::Metrics
    } else if path == "/search" {
        Endpoint::Search
    } else if path == "/debug/flightrec" {
        Endpoint::Flightrec
    } else if path.starts_with("/manifest/") {
        Endpoint::Manifest
    } else if path.starts_with("/objects/") {
        Endpoint::Objects
    } else if path.starts_with("/publish/") {
        Endpoint::Publish
    } else {
        Endpoint::Other
    }
}

fn dlv_status(e: &DlvError) -> (u16, &'static str) {
    match e {
        DlvError::InvalidName(_) => (422, "invalid-name"),
        DlvError::NoSuchVersion(_) => (404, "not-found"),
        DlvError::AlreadyExists(_) => (409, "conflict"),
        _ => (500, "internal"),
    }
}

fn error_response(e: &DlvError) -> Response {
    let (status, code) = dlv_status(e);
    Response::error(status, code, &e.to_string())
}

/// Worker-side request handling: route, stage the response. Everything
/// reachable from here handles attacker-controlled bytes, so the whole
/// router is a no-panic zone — a request must never kill a worker.
///
/// The client's trace context (parsed from the `mh-trace` header) is
/// re-established on the worker thread, so the `hub.request` span — and
/// every span routing opens beneath it — carries the client's 128-bit
/// trace id and parents under the client's rpc span.
// mh-audit: no_panic_zone
fn process(
    root: &Path,
    job: &Job,
    stats: &Stats,
    faults: &Faults,
    cache: &ObjectCache,
    slow_ms: u64,
) -> Response {
    let req = &job.req;
    mh_obs::with_context(req.trace, || {
        let mut sp = mh_obs::span("hub.request");
        if sp.is_recording() {
            sp.field("endpoint", job.ep.name());
            sp.field("method", &req.method);
            sp.add_bytes_in(req.body.len() as u64);
        }
        let start = sync::now();
        let resp = route(root, req, stats, faults, cache);
        let dur_ms = start.elapsed().as_secs_f64() * 1_000.0;
        stats.record_duration(job.ep, dur_ms);
        let error = resp.status >= 400 || resp.truncated;
        if error {
            // Lands in the flight recorder (and stderr when warn is
            // enabled) with the trace id, so a failing request's recent
            // history survives in the server log.
            mh_obs::warn!(
                "hub: request error endpoint={} status={} truncated={} trace={:032x}",
                job.ep.name(),
                resp.status,
                resp.truncated,
                req.trace.trace,
            );
        }
        if slow_ms > 0 && dur_ms >= slow_ms as f64 {
            mh_obs::warn!(
                "hub: slow request endpoint={} dur_ms={:.1} trace={:032x}",
                job.ep.name(),
                dur_ms,
                req.trace.trace,
            );
        }
        if sp.is_recording() {
            let body_len: u64 = resp
                .segs
                .iter()
                .map(Seg::len)
                .sum::<u64>()
                .saturating_sub(resp.head_len);
            sp.add_bytes_out(body_len);
            sp.field("error", error);
        }
        resp
    })
}

fn route(
    root: &Path,
    req: &Request,
    stats: &Stats,
    faults: &Faults,
    cache: &ObjectCache,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/repos") => match Hub::open(root).and_then(|h| h.repositories()) {
            Ok(names) => Response::full(
                200,
                names
                    .iter()
                    .map(|n| format!("{n}\n"))
                    .collect::<String>()
                    .into_bytes(),
            ),
            Err(e) => error_response(&e),
        },
        ("GET", "/stats") => Response::full(200, stats.render().into_bytes()),
        ("GET", "/metrics") => Response::full(200, stats.render_prometheus().into_bytes()),
        // Flight-recorder dump: the most recent span records and
        // warn/error log events, captured even with tracing off.
        ("GET", "/debug/flightrec") => Response::full(200, mh_obs::flightrec::dump().into_bytes()),
        ("GET", "/search") => {
            let pattern = req
                .query
                .as_deref()
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("q=").map(str::to_string))
                })
                .and_then(|enc| pct_decode(&enc).ok());
            let Some(pattern) = pattern else {
                return Response::error(400, "bad-request", "search needs ?q=<pattern>");
            };
            match Hub::open(root).and_then(|h| h.search(&pattern)) {
                Ok(hits) => Response::full(200, encode_hits(&hits).into_bytes()),
                Err(e) => error_response(&e),
            }
        }
        ("GET", path) if path.starts_with("/manifest/") => {
            let name = path.strip_prefix("/manifest/").unwrap_or_default();
            respond_manifest(root, name, cache)
        }
        ("POST", path) if path.starts_with("/objects/") => {
            let name = path.strip_prefix("/objects/").unwrap_or_default();
            let haves: BTreeSet<String> = std::str::from_utf8(&req.body)
                .unwrap_or("")
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            respond_objects(root, name, &haves, faults, cache)
        }
        ("POST", path) if path.starts_with("/publish/") => {
            let name = path.strip_prefix("/publish/").unwrap_or_default();
            let phase = req
                .query
                .as_deref()
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("phase=").map(str::to_string))
                })
                .unwrap_or_default();
            match phase.as_str() {
                "negotiate" => handle_negotiate(root, name, &req.body),
                "commit" => handle_commit(root, name, &req.body, cache),
                other => Response::error(400, "bad-request", &format!("unknown phase '{other}'")),
            }
        }
        _ => Response::error(404, "not-found", "no such endpoint"),
    }
}

/// The committed-content manifest of a published repository.
fn published_manifest(root: &Path, name: &str) -> Result<Vec<ManifestEntry>, DlvError> {
    validate_repo_name(name)?;
    let dir = root.join(name);
    if !dir.join("catalog.mhs").exists() {
        return Err(DlvError::NoSuchVersion(name.to_string()));
    }
    committed_manifest(&Repository::open(&dir)?)
}

/// `GET /manifest/<name>`: encoded manifests for hot repos serve from
/// the cache; publishes invalidate the prefix.
fn respond_manifest(root: &Path, name: &str, cache: &ObjectCache) -> Response {
    if validate_repo_name(name).is_ok() {
        if let Some(cached) = cache.get(&manifest_key(name)) {
            return Response::new(200, cached.len() as u64, vec![Seg::Shared(cached)], false);
        }
    }
    // Snapshot the invalidation generation *before* touching disk: if a
    // publish commits (rename + invalidate) while we read the old
    // manifest, the guarded put below is refused and the pre-publish
    // bytes are never cached.
    let gen = cache.generation();
    match published_manifest(root, name) {
        Ok(manifest) => {
            let body = Arc::new(encode_manifest(&manifest).into_bytes());
            cache.put_if_current(&manifest_key(name), Arc::clone(&body), gen);
            Response::new(200, body.len() as u64, vec![Seg::Shared(body)], false)
        }
        Err(e) => error_response(&e),
    }
}

/// Per-response budget for object payloads loaded privately into memory
/// on a cache miss. Misses up to this many bytes are read whole,
/// verified, and admitted to the cache (zero-copy `Shared` segments);
/// past it — and for any object too large for the cache to ever admit —
/// the payload is staged as a lazy [`FileSeg`] that streams from disk in
/// bounded chunks on write readiness. Cache hits are exempt: they
/// reference memory the cache already accounts for, shared across every
/// connection serving the same object. Net bound per connection: this
/// budget plus one [`FILE_CHUNK`] scratch buffer, no matter how large
/// the repo — a never-reading client cannot hold multi-GiB staged
/// responses for the idle-timeout window.
const RESPONSE_LOAD_BUDGET: u64 = 8 << 20;

/// One staged object payload: resident bytes (cache hit or a
/// budget-admitted load) or an open file streamed lazily at write time.
#[derive(Debug)]
enum Payload {
    Mem(Arc<Vec<u8>>),
    File { file: std::fs::File, len: u64 },
}

impl Payload {
    fn len(&self) -> u64 {
        match self {
            Self::Mem(d) => d.len() as u64,
            Self::File { len, .. } => *len,
        }
    }

    fn into_seg(self) -> Seg {
        match self {
            Self::Mem(d) => Seg::Shared(d),
            Self::File { file, len } => Seg::File(FileSeg::new(file, len)),
        }
    }
}

/// Stage one object's payload, feeding its bytes (in stream order) into
/// the whole-transfer checksum. Cache hit hands back the shared bytes;
/// a small in-budget miss reads, verifies, and admits it; anything else
/// is hash-verified in a streaming pass and staged as an open file
/// handle — the payload is never fully resident.
fn stage_object(
    dir: &Path,
    entry: &ManifestEntry,
    cache: &ObjectCache,
    loaded: &mut u64,
    transfer: &mut Sha256,
) -> Result<Payload, ()> {
    let key = object_key(&entry.hash);
    if let Some(hit) = cache.get(&key) {
        transfer.update(&hit);
        return Ok(Payload::Mem(hit));
    }
    // Raced with a concurrent republish or the content is corrupt: both
    // surface as a load failure and the response becomes an error (the
    // client retries against the new content).
    let path = dir.join(&entry.path);
    let in_budget = entry.size <= cache.admissible_max() as u64
        && loaded.saturating_add(entry.size) <= RESPONSE_LOAD_BUDGET;
    if in_budget {
        let data = std::fs::read(&path).map_err(|_| ())?;
        if sha256_hex(&data) != entry.hash {
            return Err(());
        }
        transfer.update(&data);
        *loaded = loaded.saturating_add(data.len() as u64);
        let data = Arc::new(data);
        cache.put(&key, Arc::clone(&data));
        return Ok(Payload::Mem(data));
    }
    // Streaming verify: hash the file in bounded chunks, then rewind for
    // the lazy write-time stream. The held handle pins the inode, so the
    // bytes that verified here are the bytes that will stream.
    let mut file = std::fs::File::open(&path).map_err(|_| ())?;
    let mut hasher = Sha256::new();
    let mut len = 0u64;
    let mut chunk = vec![0u8; FILE_CHUNK];
    loop {
        match file.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                let part = chunk.get(..n).unwrap_or_default();
                hasher.update(part);
                transfer.update(part);
                len = len.saturating_add(n as u64);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if hasher.finalize_hex() != entry.hash {
        return Err(());
    }
    file.seek(std::io::SeekFrom::Start(0)).map_err(|_| ())?;
    Ok(Payload::File { file, len })
}

/// Stage the objects of `name` the client does not yet have. The
/// response body is length-prefixed per object with a trailing
/// whole-transfer checksum; payload segments are zero-copy references
/// into the cache or lazily-streamed file handles (see
/// [`RESPONSE_LOAD_BUDGET`]).
fn respond_objects(
    root: &Path,
    name: &str,
    haves: &BTreeSet<String>,
    faults: &Faults,
    cache: &ObjectCache,
) -> Response {
    let manifest = match published_manifest(root, name) {
        Ok(m) => m,
        Err(e) => return error_response(&e),
    };
    let mut seen = BTreeSet::new();
    let missing: Vec<&ManifestEntry> = manifest
        .iter()
        .filter(|e| !haves.contains(&e.hash) && seen.insert(e.hash.clone()))
        .collect();
    let dir = root.join(name);

    // Stage every payload (verifying hashes and accumulating the
    // whole-transfer checksum in stream order); lengths come from the
    // staged payloads so the declared Content-Length is always exact.
    let mut loaded = 0u64;
    let mut transfer = Sha256::new();
    let mut payloads: Vec<(&ManifestEntry, Payload)> = Vec::with_capacity(missing.len());
    for entry in &missing {
        match stage_object(&dir, entry, cache, &mut loaded, &mut transfer) {
            Ok(payload) => payloads.push((entry, payload)),
            Err(()) => {
                return Response::error(
                    500,
                    "internal",
                    &format!("object {} unavailable or corrupt", entry.hash),
                )
            }
        }
    }
    let lens: Vec<(String, u64)> = payloads
        .iter()
        .map(|(e, p)| (e.hash.clone(), p.len()))
        .collect();
    let total = object_stream_len(&lens);

    if faults.take_object_drop() {
        // Injected fault: promise the full stream, deliver a truncated
        // first object, then drop the connection.
        let mut segs = Vec::new();
        if let Some((entry, payload)) = payloads.into_iter().next() {
            let len = payload.len();
            let header = format!("obj {} {len}\n", entry.hash);
            let half = match payload {
                Payload::Mem(data) => data.get(..data.len() / 2).unwrap_or_default().to_vec(),
                Payload::File { mut file, .. } => {
                    let mut data = Vec::new();
                    let _ = std::io::Read::take(&mut file, len / 2).read_to_end(&mut data);
                    data
                }
            };
            segs.push(Seg::Owned(header.into_bytes()));
            segs.push(Seg::Owned(half));
        }
        return Response::new(200, total, segs, true);
    }

    let mut segs: Vec<Seg> = Vec::with_capacity(payloads.len() * 2 + 1);
    for (entry, payload) in payloads {
        segs.push(Seg::Owned(
            format!("obj {} {}\n", entry.hash, payload.len()).into_bytes(),
        ));
        segs.push(payload.into_seg());
    }
    segs.push(Seg::Owned(
        format!("end {}\n", transfer.finalize_hex()).into_bytes(),
    ));
    Response::new(200, total, segs, false)
}

/// Publish negotiation: given the client's manifest, answer with the
/// hashes the hub does not already hold under this name.
fn handle_negotiate(root: &Path, name: &str, body: &[u8]) -> Response {
    if let Err(e) = validate_repo_name(name) {
        return error_response(&e);
    }
    let Ok(body) = std::str::from_utf8(body) else {
        return Response::error(400, "bad-request", "manifest must be utf-8");
    };
    let manifest = match parse_manifest(body) {
        Ok(m) => m,
        Err(e) => return protocol_error_response(&e),
    };
    let existing = match Hub::open(root).and_then(|h| h.published_objects(name)) {
        Ok(m) => m,
        Err(e) => return error_response(&e),
    };
    let wants: BTreeSet<&str> = manifest
        .iter()
        .filter(|e| !existing.contains_key(&e.hash))
        .map(|e| e.hash.as_str())
        .collect();
    let body: String = wants.iter().map(|h| format!("{h}\n")).collect();
    Response::full(200, body.into_bytes())
}

/// Publish commit: body = `<manifest-byte-length>\n` + manifest + object
/// stream of the negotiated objects. Assembles the new publication from
/// received objects plus objects reused from the previous publication of
/// the same name, then atomically replaces it and invalidates the repo's
/// cached manifest.
fn handle_commit(root: &Path, name: &str, body: &[u8], cache: &ObjectCache) -> Response {
    if let Err(e) = validate_repo_name(name) {
        return error_response(&e);
    }
    let bad = |msg: &str| Response::error(400, "bad-request", msg);
    let Some(nl) = body.iter().position(|&b| b == b'\n') else {
        return bad("missing manifest length prefix");
    };
    let Ok(manifest_len) = std::str::from_utf8(body.get(..nl).unwrap_or_default())
        .unwrap_or("")
        .trim()
        .parse::<usize>()
    else {
        return bad("bad manifest length prefix");
    };
    let rest = body.get(nl + 1..).unwrap_or_default();
    // The length-prefix check and the slice are one `get`: a prefix
    // exceeding the remaining body cannot reach the parser, and no
    // arithmetic on the attacker's length happens outside it.
    let Some(manifest_bytes) = rest.get(..manifest_len) else {
        return bad("manifest length prefix exceeds body");
    };
    let Ok(manifest_str) = std::str::from_utf8(manifest_bytes) else {
        return bad("manifest must be utf-8");
    };
    let manifest = match parse_manifest(manifest_str) {
        Ok(m) => m,
        Err(e) => return protocol_error_response(&e),
    };
    for entry in &manifest {
        if let Err(e) = validate_rel_path(&entry.path) {
            return error_response(&e);
        }
    }
    let mut received: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut reader = std::io::BufReader::new(rest.get(manifest_len..).unwrap_or_default());
    if let Err(e) = read_object_stream(&mut reader, |hash, payload| {
        received.insert(hash.to_string(), payload.to_vec());
        Ok(())
    }) {
        if matches!(e, HubError::TooLarge(_)) {
            return protocol_error_response(&e);
        }
        return bad(&format!("bad object stream: {e}"));
    }
    let existing = match Hub::open(root).and_then(|h| h.published_objects(name)) {
        Ok(m) => m,
        Err(e) => return error_response(&e),
    };
    // Every manifest hash must be covered before we stage anything.
    for entry in &manifest {
        if !received.contains_key(&entry.hash) && !existing.contains_key(&entry.hash) {
            return Response::error(
                409,
                "conflict",
                &format!("object {} neither uploaded nor already held", entry.hash),
            );
        }
    }
    let old_dir = root.join(name);
    let result = replace_published(root, name, |stage| {
        mh_dlv::create_standard_dirs(stage).map_err(DlvError::Io)?;
        for entry in &manifest {
            let to = stage.join(&entry.path);
            if let Some(parent) = to.parent() {
                std::fs::create_dir_all(parent).map_err(DlvError::Io)?;
            }
            if let Some(data) = received.get(&entry.hash) {
                std::fs::write(&to, data).map_err(DlvError::Io)?;
            } else if let Some(rel) = existing.get(&entry.hash) {
                std::fs::copy(old_dir.join(rel), &to).map_err(DlvError::Io)?;
            }
        }
        Ok(())
    });
    match result {
        Ok(()) => {
            // Republish replaces content: the cached manifest for this
            // name is stale the instant the rename lands.
            cache.invalidate_prefix(&manifest_prefix(name));
            Response::full(200, b"ok\n".to_vec())
        }
        Err(e) => error_response(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_staging_separates_head_from_body() {
        let r = Response::full(200, b"hello".to_vec());
        assert_eq!(r.segs.len(), 2);
        let head = r.segs.first().map(|s| s.as_slice().to_vec()).unwrap();
        assert_eq!(head.len() as u64, r.head_len);
        assert!(String::from_utf8_lossy(&head).contains("Content-Length: 5"));
        assert!(!r.truncated);
    }

    #[test]
    fn saturated_response_advertises_retry_after() {
        let r = Response::saturated("full");
        assert_eq!(r.status, 503);
        let head = r.segs.first().map(|s| s.as_slice().to_vec()).unwrap();
        assert!(String::from_utf8_lossy(&head).contains("Retry-After: 1"));
    }

    #[test]
    fn file_segments_stream_lazily_in_bounded_chunks() {
        let dir = std::env::temp_dir().join(format!("mh-fileseg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Payload spans several FILE_CHUNKs so refill runs repeatedly.
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let path = dir.join("payload.bin");
        std::fs::write(&path, &payload).expect("write payload");
        let file = std::fs::File::open(&path).expect("open payload");
        let len = payload.len() as u64;
        let resp = Response::new(200, len, vec![Seg::File(FileSeg::new(file, len))], false);
        let head_len = resp.head_len as usize;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        let reader = sync::thread::spawn(move || {
            let mut got = Vec::new();
            let mut c = client;
            c.read_to_end(&mut got).expect("drain stream");
            got
        });
        let mut conn = Conn::new(server_side, sync::now());
        set_writing(&mut conn, resp, sync::now());
        loop {
            match write_some(&mut conn) {
                Disposition::Close { error } => {
                    assert!(!error);
                    break;
                }
                Disposition::Keep => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        // The staged segment holds one scratch chunk, not the payload.
        if let ConnState::Writing { resp, .. } = &conn.state {
            for seg in &resp.segs {
                if let Seg::File(fs) = seg {
                    assert!(fs.buf.len() <= FILE_CHUNK);
                    assert_eq!(fs.remaining, 0, "file fully streamed");
                }
            }
        }
        drop(conn); // EOF for the reader
        let got = reader.join().expect("reader thread");
        assert_eq!(got.len(), head_len + payload.len());
        assert_eq!(got.get(head_len..), Some(&payload[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_segment_closes_with_error() {
        let dir = std::env::temp_dir().join(format!("mh-filesegerr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("short.bin");
        std::fs::write(&path, vec![7u8; 100]).expect("write payload");
        let file = std::fs::File::open(&path).expect("open payload");
        // Declare more bytes than the file holds: the stream cannot honor
        // its Content-Length and must close as an error.
        let resp = Response::new(200, 500, vec![Seg::File(FileSeg::new(file, 500))], false);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::new(server_side, sync::now());
        set_writing(&mut conn, resp, sync::now());
        loop {
            match write_some(&mut conn) {
                Disposition::Close { error } => {
                    assert!(error, "premature EOF must surface as an error close");
                    break;
                }
                Disposition::Keep => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn body_bytes_written_excludes_head() {
        let resp = Response::full(200, vec![7u8; 100]);
        let head_len = resp.head_len;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::new(server_side, sync::now());
        set_writing(&mut conn, resp, sync::now());
        // A small response fits the socket buffer in one pass.
        loop {
            match write_some(&mut conn) {
                Disposition::Close { error } => {
                    assert!(!error);
                    break;
                }
                Disposition::Keep => continue,
            }
        }
        // write_some consumed the state on Close... the conn retains it.
        let ConnState::Writing { written, .. } = &conn.state else {
            panic!("still Writing");
        };
        assert_eq!(*written, head_len + 100);
        assert_eq!(conn.body_bytes_written(), 100);
    }
}
