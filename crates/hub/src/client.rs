//! [`RemoteHub`] — the client side of the hub wire protocol. Implements
//! `mh_dlv::HubBackend`, so `dlv publish/search/pull` work against
//! `http://host:port` specs exactly as against local hub directories.
//!
//! Resilience model:
//! - every request carries connect/read/write timeouts;
//! - transient failures (transport errors, 5xx, checksum mismatches) are
//!   retried with exponential backoff plus jitter, up to a bounded
//!   attempt count;
//! - pulls are resumable at object granularity: each verified object
//!   lands in a hash-keyed cache as it arrives, every retry re-negotiates
//!   with the server from what the cache already holds, and making
//!   progress resets the retry budget;
//! - publishes re-negotiate from scratch on retry (the server answers
//!   idempotently from its current content);
//! - every pulled repository is fsck'd before the pull reports success.

use crate::http::{read_body, read_response_head, write_request, ResponseHead};
use crate::protocol::{
    encode_manifest, parse_error, parse_hits, parse_manifest, pct_encode, read_object_stream,
    write_object, write_object_stream_end,
};
use crate::stats::{parse_stats, StatLine};
use crate::{HubError, URL_PREFIX};
use mh_dlv::hash::Sha256;
use mh_dlv::{
    committed_manifest, create_standard_dirs, validate_rel_path, validate_repo_name, verify_pulled,
    DlvError, HubBackend, ManifestEntry, Repository, SearchHit,
};
use std::collections::BTreeSet;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);
const DEFAULT_RETRIES: u32 = 4;
const DEFAULT_BACKOFF: Duration = Duration::from_millis(50);

/// Client for a remote `hubd` instance.
#[derive(Debug, Clone)]
pub struct RemoteHub {
    /// `host:port`, used both to connect and as the HTTP Host header.
    host: String,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    /// Hash-keyed object cache for resumable / incremental pulls. When
    /// unset, each pull uses an ephemeral cache removed on success.
    cache: Option<PathBuf>,
}

impl RemoteHub {
    /// Parse an `http://host:port` hub spec.
    pub fn open(spec: &str) -> Result<Self, HubError> {
        let rest = spec.strip_prefix(URL_PREFIX).ok_or_else(|| {
            HubError::Protocol(format!("hub URL must start with http://: '{spec}'"))
        })?;
        let host = rest.trim_end_matches('/');
        if host.is_empty() || !host.contains(':') {
            return Err(HubError::Protocol(format!(
                "hub URL needs host:port: '{spec}'"
            )));
        }
        Ok(Self {
            host: host.to_string(),
            timeout: DEFAULT_TIMEOUT,
            retries: DEFAULT_RETRIES,
            backoff: DEFAULT_BACKOFF,
            cache: None,
        })
    }

    /// Use a persistent object cache, making repeat pulls of unchanged
    /// content transfer near-zero object bytes.
    pub fn with_cache(mut self, dir: &Path) -> Self {
        self.cache = Some(dir.to_path_buf());
        self
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries.max(1);
        self.backoff = backoff;
        self
    }

    fn connect(&self) -> Result<TcpStream, HubError> {
        let addr = self
            .host
            .to_socket_addrs()
            .map_err(|e| HubError::Protocol(format!("cannot resolve '{}': {e}", self.host)))?
            .next()
            .ok_or_else(|| HubError::Protocol(format!("'{}' resolves to nothing", self.host)))?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// One buffered request/response; 4xx/5xx bodies become
    /// [`HubError::Server`]. Each attempt runs in its own `hub.rpc` span
    /// whose trace context crosses the wire as the `mh-trace` header, so
    /// the server's `hub.request` span joins the client's trace.
    fn attempt(&self, method: &str, target: &str, body: &[u8]) -> Result<Vec<u8>, HubError> {
        let mut sp = rpc_span(target);
        sp.add_bytes_out(body.len() as u64);
        let mut stream = self.connect()?;
        let ctx = mh_obs::current_context();
        write_request(&mut stream, method, target, &self.host, ctx, body)?;
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader)?;
        let body = read_body(&mut reader, &head)?;
        sp.add_bytes_in(body.len() as u64);
        check_status(&head, &body)?;
        Ok(body)
    }

    /// Retry wrapper: transient errors back off and retry, everything
    /// else surfaces immediately.
    fn with_retry<T>(&self, mut f: impl FnMut() -> Result<T, HubError>) -> Result<T, HubError> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.retries => {
                    self.sleep_backoff(attempt);
                    attempt += 1;
                }
                Err(e) if e.is_transient() => {
                    return Err(HubError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: e.to_string(),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn sleep_backoff(&self, attempt: u32) {
        let base = self.backoff.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(10));
        std::thread::sleep(Duration::from_millis(exp + jitter(base.max(1))));
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> Result<Vec<u8>, HubError> {
        self.with_retry(|| self.attempt(method, target, body))
    }

    /// `GET /repos`.
    pub fn repositories(&self) -> Result<Vec<String>, HubError> {
        let body = self.request("GET", "/repos", b"")?;
        Ok(text(&body)?.lines().map(str::to_string).collect())
    }

    /// `GET /search?q=`.
    pub fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, HubError> {
        let target = format!("/search?q={}", pct_encode(pattern));
        let body = self.request("GET", &target, b"")?;
        parse_hits(&text(&body)?)
    }

    /// `GET /manifest/<name>` — the committed-content manifest of a
    /// published repository.
    pub fn manifest(&self, name: &str) -> Result<Vec<ManifestEntry>, HubError> {
        validate_repo_name(name).map_err(HubError::Dlv)?;
        let body = self.request("GET", &format!("/manifest/{name}"), b"")?;
        parse_manifest(&text(&body)?)
    }

    /// `GET /stats` — the server's per-endpoint counters.
    pub fn stats(&self) -> Result<Vec<StatLine>, HubError> {
        let body = self.request("GET", "/stats", b"")?;
        Ok(parse_stats(&text(&body)?))
    }

    /// `GET /metrics` — the server's Prometheus text-format exposition
    /// (hub request counters plus process-wide PAS/compression metrics).
    pub fn metrics_text(&self) -> Result<String, HubError> {
        let body = self.request("GET", "/metrics", b"")?;
        text(&body)
    }

    /// `GET /debug/flightrec` — the server's flight-recorder dump: the
    /// most recent span records and warn/error log events as JSONL,
    /// captured even when tracing is off.
    pub fn flightrec_text(&self) -> Result<String, HubError> {
        let body = self.request("GET", "/debug/flightrec", b"")?;
        text(&body)
    }

    /// Incremental publish: negotiate which objects the hub is missing
    /// under `name`, then upload exactly those plus the manifest in one
    /// atomic commit. Retries restart from negotiation, so a hub state
    /// change between attempts is handled.
    pub fn publish_repo(&self, repo: &Repository, name: &str) -> Result<(), HubError> {
        validate_repo_name(name).map_err(HubError::Dlv)?;
        let manifest = committed_manifest(repo).map_err(HubError::Dlv)?;
        let manifest_body = encode_manifest(&manifest);
        self.with_retry(|| {
            let wants_raw = self.attempt(
                "POST",
                &format!("/publish/{name}?phase=negotiate"),
                manifest_body.as_bytes(),
            )?;
            let wants: BTreeSet<String> = text(&wants_raw)?.lines().map(str::to_string).collect();
            let mut body = Vec::new();
            body.extend_from_slice(format!("{}\n", manifest_body.len()).as_bytes());
            body.extend_from_slice(manifest_body.as_bytes());
            let mut transfer = Sha256::new();
            let mut sent = BTreeSet::new();
            for entry in &manifest {
                if wants.contains(&entry.hash) && sent.insert(entry.hash.clone()) {
                    let data = std::fs::read(repo.root().join(&entry.path))
                        .map_err(|e| HubError::Dlv(DlvError::Io(e)))?;
                    write_object(&mut body, &entry.hash, &data, &mut transfer)
                        .map_err(HubError::from)?;
                }
            }
            write_object_stream_end(&mut body, transfer).map_err(HubError::from)?;
            self.attempt("POST", &format!("/publish/{name}?phase=commit"), &body)?;
            Ok(())
        })
    }

    /// Pull `name` into `dest` (which must not exist): fetch the
    /// manifest, negotiate objects against the cache, assemble into a
    /// staging directory, atomically rename into place, and fsck the
    /// result.
    pub fn pull_repo(&self, name: &str, dest: &Path) -> Result<Repository, HubError> {
        validate_repo_name(name).map_err(HubError::Dlv)?;
        if dest.exists() {
            return Err(HubError::Dlv(DlvError::AlreadyExists(
                dest.display().to_string(),
            )));
        }
        let manifest = self.manifest(name)?;
        for entry in &manifest {
            validate_rel_path(&entry.path).map_err(HubError::Dlv)?;
        }

        let parent = dest.parent().unwrap_or_else(|| Path::new("."));
        std::fs::create_dir_all(parent).map_err(HubError::Io)?;
        let (cache_dir, ephemeral) = match &self.cache {
            Some(d) => (d.clone(), false),
            None => (parent.join(format!(".pullcache-{}", unique_suffix())), true),
        };
        std::fs::create_dir_all(&cache_dir).map_err(HubError::Io)?;

        let result = self.fetch_and_assemble(name, &manifest, &cache_dir, dest);
        if ephemeral {
            let _ = std::fs::remove_dir_all(&cache_dir);
        }
        result
    }

    fn fetch_and_assemble(
        &self,
        name: &str,
        manifest: &[ManifestEntry],
        cache_dir: &Path,
        dest: &Path,
    ) -> Result<Repository, HubError> {
        let needed: BTreeSet<&str> = manifest.iter().map(|e| e.hash.as_str()).collect();

        // Object-granular resumable fetch: every verified object persists
        // in the cache immediately, each round re-negotiates from the
        // cache contents, and progress resets the retry budget.
        let mut attempt = 0u32;
        loop {
            let haves: BTreeSet<&str> = needed
                .iter()
                .copied()
                .filter(|h| cache_dir.join(h).is_file())
                .collect();
            if haves.len() == needed.len() {
                break;
            }
            let mut received = 0usize;
            match self.fetch_objects(name, &haves, cache_dir, &mut received) {
                Ok(()) => {}
                Err(e) if e.is_transient() => {
                    if received > 0 {
                        attempt = 0; // progress: reset the budget
                    } else if attempt + 1 >= self.retries {
                        return Err(HubError::RetriesExhausted {
                            attempts: attempt + 1,
                            last: e.to_string(),
                        });
                    } else {
                        attempt += 1;
                    }
                    self.sleep_backoff(attempt.min(4));
                }
                Err(e) => return Err(e),
            }
        }

        // Assemble next to dest, then a single rename publishes it.
        let stage = dest.with_file_name(format!(
            ".pull-{}-{}",
            dest.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            unique_suffix()
        ));
        let assembled = (|| -> Result<(), HubError> {
            create_standard_dirs(&stage).map_err(HubError::Io)?;
            for entry in manifest {
                let to = stage.join(&entry.path);
                if let Some(parent) = to.parent() {
                    std::fs::create_dir_all(parent).map_err(HubError::Io)?;
                }
                std::fs::copy(cache_dir.join(&entry.hash), &to).map_err(HubError::Io)?;
            }
            std::fs::rename(&stage, dest).map_err(HubError::Io)
        })();
        if assembled.is_err() {
            let _ = std::fs::remove_dir_all(&stage);
        }
        assembled?;

        let repo = Repository::open(dest).map_err(HubError::Dlv)?;
        verify_pulled(&repo).map_err(HubError::Dlv)?;
        Ok(repo)
    }

    /// One `/objects` round: send the cache's hashes as "have", stream
    /// the server's missing objects into the cache (tmp + rename, so a
    /// torn write never poisons the cache). `received` counts verified
    /// objects delivered this round even when the stream later breaks.
    fn fetch_objects(
        &self,
        name: &str,
        haves: &BTreeSet<&str>,
        cache_dir: &Path,
        received: &mut usize,
    ) -> Result<(), HubError> {
        let mut sp = rpc_span("/objects");
        let mut stream = self.connect()?;
        let haves_body: String = haves.iter().map(|h| format!("{h}\n")).collect();
        sp.add_bytes_out(haves_body.len() as u64);
        write_request(
            &mut stream,
            "POST",
            &format!("/objects/{name}"),
            &self.host,
            mh_obs::current_context(),
            haves_body.as_bytes(),
        )?;
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader)?;
        if head.status >= 400 {
            let body = read_body(&mut reader, &head)?;
            check_status(&head, &body)?;
        }
        sp.add_bytes_in(head.content_length);
        read_object_stream(&mut reader, |hash, payload| {
            let to = cache_dir.join(hash);
            if !to.is_file() {
                let tmp = cache_dir.join(format!(".{hash}.tmp{}", std::process::id()));
                std::fs::write(&tmp, payload).map_err(HubError::Io)?;
                std::fs::rename(&tmp, &to).map_err(HubError::Io)?;
            }
            *received += 1;
            Ok(())
        })?;
        Ok(())
    }
}

/// Open the `hub.rpc` span for one request attempt. The thread's trace
/// id is minted first (when anything records spans) so the rpc span
/// itself carries it; while the span is open, `mh_obs::current_context()`
/// is exactly the context to send in the `mh-trace` header — the trace id
/// plus the rpc span as the server's remote parent.
fn rpc_span(target: &str) -> mh_obs::Span {
    if mh_obs::enabled() || mh_obs::flightrec::armed() {
        mh_obs::begin_trace();
    }
    let mut sp = mh_obs::span("hub.rpc");
    sp.field("target", target);
    sp
}

impl HubBackend for RemoteHub {
    fn publish(&self, repo: &Repository, name: &str) -> Result<(), DlvError> {
        self.publish_repo(repo, name).map_err(HubError::into_dlv)
    }

    fn repositories(&self) -> Result<Vec<String>, DlvError> {
        RemoteHub::repositories(self).map_err(HubError::into_dlv)
    }

    fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, DlvError> {
        RemoteHub::search(self, pattern).map_err(HubError::into_dlv)
    }

    fn pull(&self, name: &str, dest: &Path) -> Result<Repository, DlvError> {
        self.pull_repo(name, dest).map_err(HubError::into_dlv)
    }
}

fn check_status(head: &ResponseHead, body: &[u8]) -> Result<(), HubError> {
    if head.status >= 400 {
        return Err(parse_error(head.status, &String::from_utf8_lossy(body)));
    }
    Ok(())
}

fn text(body: &[u8]) -> Result<String, HubError> {
    String::from_utf8(body.to_vec())
        .map_err(|_| HubError::Protocol("non-utf8 response body".to_string()))
}

/// Process-unique suffix for staging/cache directory names.
fn unique_suffix() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!(
        "{}-{}-{nanos}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Small xorshift-based jitter in `[0, limit)` — no RNG dependency.
fn jitter(limit: u64) -> u64 {
    static STATE: AtomicU64 = AtomicU64::new(0);
    let mut s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        s = u64::from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0x9e37),
        ) | 1;
    }
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    STATE.store(s, Ordering::Relaxed);
    if limit == 0 {
        0
    } else {
        s % limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        let h = RemoteHub::open("http://127.0.0.1:8080").unwrap();
        assert_eq!(h.host, "127.0.0.1:8080");
        let h = RemoteHub::open("http://127.0.0.1:8080/").unwrap();
        assert_eq!(h.host, "127.0.0.1:8080");
        assert!(RemoteHub::open("ftp://x:1").is_err());
        assert!(RemoteHub::open("http://noport").is_err());
        assert!(crate::is_remote_spec("http://h:1"));
        assert!(!crate::is_remote_spec("/var/hub"));
    }

    #[test]
    fn jitter_is_bounded() {
        for _ in 0..100 {
            assert!(jitter(50) < 50);
        }
        assert_eq!(jitter(0), 0);
    }
}
