//! Byte-budgeted, hash-prefix-sharded LRU cache for hot hub content.
//!
//! The hub's two read-path payloads both land here:
//!
//! * **objects** — content-addressed by SHA-256, so entries are
//!   immutable and never need invalidation; a cached object is correct
//!   forever.
//! * **manifests** — keyed by `manifest:<name>`, and *republish
//!   replaces* published content, so `handle_commit` invalidates the
//!   repo's manifest prefix on every successful publish.
//!
//! Sixteen shards, selected by a hash prefix of the key (an FNV-1a fold
//! masked to the low nibble), each with its own facade mutex, entry
//! map, and LRU tick index — so concurrent readers on different shards
//! never contend, and the per-shard budget is `total / 16`. Values are
//! `Arc<Vec<u8>>`: a cache hit hands the reactor a zero-copy reference
//! it can queue on a connection's write buffer while the entry remains
//! (or stops being) cached.
//!
//! An entry larger than its shard's whole budget is never admitted —
//! one giant object must not wipe a shard. Hit/miss/eviction counters
//! and the live byte gauge report through [`CacheMetrics`] handles into
//! the owning server's stats registry (`/metrics`).

use mh_obs::{Counter, Gauge, Registry};
use mh_par::sync::atomic::{AtomicU64, Ordering};
use mh_par::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metric handles the cache reports through. Handles are `'static`
/// because `mh_obs::Registry` interns its series.
#[derive(Debug, Clone, Copy)]
pub struct CacheMetrics {
    pub hits: &'static Counter,
    pub misses: &'static Counter,
    pub evictions: &'static Counter,
    pub bytes: &'static Gauge,
}

impl CacheMetrics {
    /// Register (or re-fetch) the standard hub cache series on a
    /// registry. Idempotent: the registry interns by name.
    pub fn for_registry(registry: &Registry) -> Self {
        Self {
            hits: registry.counter("hub_cache_hits_total"),
            misses: registry.counter("hub_cache_misses_total"),
            evictions: registry.counter("hub_cache_evictions_total"),
            bytes: registry.gauge("hub_cache_bytes"),
        }
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<Vec<u8>>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<String, Entry>,
    /// LRU index: tick → key. Ticks are unique within a shard, so the
    /// smallest tick is always the least-recently-used entry.
    lru: BTreeMap<u64, String>,
    bytes: usize,
    next_tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        let entry = self.entries.get_mut(key)?;
        self.lru.remove(&entry.tick);
        entry.tick = self.next_tick;
        self.next_tick = self.next_tick.wrapping_add(1);
        self.lru.insert(entry.tick, key.to_string());
        Some(Arc::clone(&entry.value))
    }

    /// Remove one key; returns the bytes it held.
    fn remove(&mut self, key: &str) -> usize {
        match self.entries.remove(key) {
            Some(old) => {
                self.lru.remove(&old.tick);
                let freed = old.value.len();
                self.bytes = self.bytes.saturating_sub(freed);
                freed
            }
            None => 0,
        }
    }

    /// Evict least-recently-used entries until `bytes <= budget`.
    /// Returns (entries evicted, bytes freed).
    fn evict_to(&mut self, budget: usize) -> (u64, usize) {
        let mut evicted = 0u64;
        let mut freed = 0usize;
        while self.bytes > budget {
            let Some((_, key)) = self.lru.pop_first() else {
                break;
            };
            match self.entries.remove(&key) {
                Some(old) => {
                    let n = old.value.len();
                    self.bytes = self.bytes.saturating_sub(n);
                    freed = freed.saturating_add(n);
                    evicted = evicted.saturating_add(1);
                }
                None => break,
            }
        }
        (evicted, freed)
    }
}

/// The sharded LRU itself. A zero budget disables caching entirely
/// (every `get` is a recorded miss, every `put` a no-op) — that is the
/// behaviour of `hubd --cache-bytes 0`.
#[derive(Debug)]
pub struct ObjectCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    metrics: CacheMetrics,
    /// Invalidation generation: bumped (before any entry is removed) by
    /// [`ObjectCache::invalidate_prefix`]. A reader that fills the cache
    /// from disk snapshots it *before* the read and hands it back to
    /// [`ObjectCache::put_if_current`], which refuses the fill if an
    /// invalidation landed in between — so a publish racing a GET can
    /// never be resurrected as stale cached bytes.
    generation: AtomicU64,
}

const SHARD_COUNT: usize = 16;

/// FNV-1a fold of the key; the low nibble picks the shard.
fn shard_index(key: &str) -> usize {
    let mut h: u32 = 0x811c_9dc5;
    for b in key.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    (h & 0xF) as usize
}

impl ObjectCache {
    pub fn new(budget_bytes: usize, metrics: CacheMetrics) -> Self {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for _ in 0..SHARD_COUNT {
            shards.push(Mutex::new(Shard::default()));
        }
        Self {
            shards,
            shard_budget: budget_bytes / 16,
            metrics,
            generation: AtomicU64::new(0),
        }
    }

    /// Total byte budget across all shards.
    pub fn budget(&self) -> usize {
        self.shard_budget.saturating_mul(SHARD_COUNT)
    }

    /// Largest entry the cache can ever admit (the per-shard budget).
    /// Anything bigger is served without touching the cache.
    pub fn admissible_max(&self) -> usize {
        self.shard_budget
    }

    /// Current invalidation generation. Snapshot it before reading
    /// backing storage and pass it to [`ObjectCache::put_if_current`] to
    /// make the fill race-safe against invalidation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    fn shard(&self, key: &str) -> Option<&Mutex<Shard>> {
        self.shards.get(shard_index(key))
    }

    /// Look up a key, bumping its recency on hit. Records exactly one
    /// hit or miss per call.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let found = self.shard(key).and_then(|shard| shard.lock().touch(key));
        match found {
            Some(v) => {
                self.metrics.hits.inc();
                Some(v)
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Insert (or refresh) a key. Entries above the per-shard budget
    /// are not admitted; admission may evict older entries.
    pub fn put(&self, key: &str, value: Arc<Vec<u8>>) {
        self.put_guarded(key, value, None);
    }

    /// [`ObjectCache::put`] guarded by an invalidation generation: the
    /// entry is admitted only if no [`ObjectCache::invalidate_prefix`]
    /// ran since `gen` was snapshotted. Use for fills whose source data
    /// can be replaced concurrently (manifests); content-addressed
    /// objects are immutable and use the plain `put`.
    pub fn put_if_current(&self, key: &str, value: Arc<Vec<u8>>, gen: u64) {
        self.put_guarded(key, value, Some(gen));
    }

    fn put_guarded(&self, key: &str, value: Arc<Vec<u8>>, required_gen: Option<u64>) {
        let len = value.len();
        if len == 0 || len > self.shard_budget {
            return;
        }
        let Some(shard) = self.shard(key) else {
            return;
        };
        let mut guard = shard.lock();
        // Checked under the shard lock: an invalidation either bumped the
        // generation before we got the lock (we refuse), or its removal
        // sweep is still ahead of us on this shard (it will remove what
        // we insert). No interleaving caches stale bytes.
        if let Some(gen) = required_gen {
            if self.generation.load(Ordering::SeqCst) != gen {
                return;
            }
        }
        let replaced = guard.remove(key);
        let tick = guard.next_tick;
        guard.next_tick = guard.next_tick.wrapping_add(1);
        guard.lru.insert(tick, key.to_string());
        guard.entries.insert(key.to_string(), Entry { value, tick });
        guard.bytes = guard.bytes.saturating_add(len);
        let (evicted, freed) = guard.evict_to(self.shard_budget);
        drop(guard);
        if evicted > 0 {
            self.metrics.evictions.add(evicted);
        }
        let delta = len as i64 - replaced as i64 - freed as i64;
        self.metrics.bytes.add(delta);
    }

    /// Drop every entry whose key starts with `prefix` (manifest
    /// invalidation on republish). Not counted as evictions — these are
    /// correctness removals, not budget pressure.
    pub fn invalidate_prefix(&self, prefix: &str) {
        // Bump the generation *before* removing: a concurrent guarded
        // fill either sees the new generation and refuses, or inserted
        // before this point and is removed by the sweep below.
        self.generation.fetch_add(1, Ordering::SeqCst);
        let mut freed = 0usize;
        for shard in &self.shards {
            let mut guard = shard.lock();
            let stale: Vec<String> = guard
                .entries
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, _)| k.clone())
                .collect();
            for key in stale {
                freed = freed.saturating_add(guard.remove(&key));
            }
        }
        if freed > 0 {
            self.metrics.bytes.sub(freed as i64);
        }
    }

    /// Live entry count across shards (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live bytes across shards (tests/diagnostics; the gauge mirrors
    /// this).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

/// Cache key for a content-addressed object.
pub fn object_key(hash: &str) -> String {
    format!("object:{hash}")
}

/// Cache key for a repo's published manifest response.
pub fn manifest_key(name: &str) -> String {
    format!("manifest:{name}")
}

/// Invalidation prefix covering every manifest entry of one repo.
pub fn manifest_prefix(name: &str) -> String {
    format!("manifest:{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cache(budget: usize) -> (ObjectCache, CacheMetrics) {
        let registry = Registry::new();
        let metrics = CacheMetrics::for_registry(&registry);
        (ObjectCache::new(budget, metrics), metrics)
    }

    fn val(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn hit_miss_and_byte_accounting() {
        let (c, m) = test_cache(16 * 1024);
        assert!(c.get("object:aa").is_none());
        assert_eq!(m.misses.get(), 1);
        c.put("object:aa", val(100));
        assert_eq!(c.get("object:aa").map(|v| v.len()), Some(100));
        assert_eq!(m.hits.get(), 1);
        assert_eq!(m.bytes.get(), 100);
        assert_eq!(c.bytes(), 100);
        // Replacing a key swaps the bytes, not adds.
        c.put("object:aa", val(40));
        assert_eq!(m.bytes.get(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_first_within_budget() {
        // All keys forced into one shard by budget math: shard budget is
        // total/16, so pick values that overflow a single shard. Find 3
        // keys that land in the same shard to make the test deterministic.
        let mut same: Vec<String> = Vec::new();
        let target = shard_index("k0");
        for i in 0..1000 {
            let k = format!("k{i}");
            if shard_index(&k) == target {
                same.push(k);
            }
            if same.len() == 3 {
                break;
            }
        }
        let [a, b, c_key] = &same[..] else {
            panic!("need 3 same-shard keys");
        };
        // Shard budget = 4096/16 = 256 bytes: two 100-byte entries fit,
        // three do not.
        let (c, m) = test_cache(4096);
        c.put(a, val(100));
        c.put(b, val(100));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(c.get(a).is_some());
        c.put(c_key, val(100));
        assert_eq!(m.evictions.get(), 1);
        assert!(c.get(b).is_none(), "LRU entry must be evicted");
        assert!(c.get(a).is_some(), "recently used entry survives");
        assert!(c.get(c_key).is_some(), "new entry admitted");
        assert!(c.bytes() <= 256);
        assert_eq!(m.bytes.get() as usize, c.bytes());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let (c, m) = test_cache(1600); // shard budget 100
        c.put("object:big", val(101));
        assert_eq!(c.len(), 0);
        assert_eq!(m.bytes.get(), 0);
        c.put("object:fits", val(100));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_budget_disables_cache() {
        let (c, m) = test_cache(0);
        c.put("object:aa", val(1));
        assert!(c.get("object:aa").is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(m.misses.get(), 1);
    }

    #[test]
    fn invalidate_prefix_removes_only_matching_keys() {
        let (c, m) = test_cache(16 * 1024);
        c.put(&manifest_key("alexnet"), val(10));
        c.put(&manifest_key("alexnet-v2"), val(10));
        c.put(&manifest_key("resnet"), val(10));
        c.put(&object_key("abcd"), val(10));
        c.invalidate_prefix(&manifest_prefix("alexnet"));
        // Prefix match: "alexnet" also covers "alexnet-v2" — that is the
        // conservative direction (over-invalidation is safe).
        assert!(c.get(&manifest_key("alexnet")).is_none());
        assert!(c.get(&manifest_key("alexnet-v2")).is_none());
        assert!(c.get(&manifest_key("resnet")).is_some());
        assert!(c.get(&object_key("abcd")).is_some());
        assert_eq!(m.evictions.get(), 0, "invalidations are not evictions");
        assert_eq!(m.bytes.get() as usize, c.bytes());
    }

    #[test]
    fn stale_fill_after_invalidation_is_refused() {
        let (c, _m) = test_cache(16 * 1024);
        // A fill snapshots the generation, reads (old) bytes from disk,
        // loses the race to a publish's invalidation, then tries to cache
        // what it read: the put must be refused.
        let gen = c.generation();
        c.invalidate_prefix(&manifest_prefix("alexnet"));
        c.put_if_current(&manifest_key("alexnet"), val(10), gen);
        assert!(
            c.get(&manifest_key("alexnet")).is_none(),
            "a fill that raced an invalidation must not be admitted"
        );
        // A fill that snapshotted after the invalidation is admitted.
        let gen = c.generation();
        c.put_if_current(&manifest_key("alexnet"), val(10), gen);
        assert!(c.get(&manifest_key("alexnet")).is_some());
        // Plain puts (content-addressed objects) are unaffected.
        c.invalidate_prefix(&manifest_prefix("alexnet"));
        c.put(&object_key("abcd"), val(10));
        assert!(c.get(&object_key("abcd")).is_some());
    }

    #[test]
    fn sharding_is_stable_and_covers_range() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            let idx = shard_index(&format!("object:{i:02x}"));
            assert!(idx < SHARD_COUNT);
            seen.insert(idx);
        }
        assert!(seen.len() > 8, "FNV prefix should spread keys: {seen:?}");
    }
}
