//! A minimal HTTP/1.1 subset shared by the `hubd` server and the
//! [`crate::RemoteHub`] client: request line + headers + Content-Length
//! bodies, one request per connection (`Connection: close`). This is not
//! a general HTTP implementation — just enough structure that the wire
//! format is debuggable with curl.

use crate::protocol::read_line;
use crate::HubError;
use mh_obs::SpanContext;
use std::io::{BufRead, Write};

/// Upper bound on request/response bodies handled in memory (object
/// streams are parsed incrementally and are not subject to this cap on
/// the client side).
pub const MAX_BODY_BYTES: u64 = 1 << 30;
const MAX_HEADERS: usize = 64;

/// Upper bound on a buffered request head (request line + headers).
/// The reactor rejects a connection whose head grows past this without
/// terminating — a slowloris sending one header byte at a time hits the
/// per-state deadline first, but a fast sender of endless headers hits
/// this cap immediately.
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Distributed trace context from the `mh-trace` header
    /// (`SpanContext::NONE` when absent or malformed).
    pub trace: SpanContext,
    pub body: Vec<u8>,
}

/// A parsed response status line + headers; the body is read separately
/// (buffered or streamed, per endpoint).
#[derive(Debug)]
pub struct ResponseHead {
    pub status: u16,
    pub content_length: u64,
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A request head parsed incrementally from a connection's read buffer
/// (the reactor path): everything except the body, plus how many buffer
/// bytes the head consumed.
#[derive(Debug)]
pub struct RequestHead {
    pub method: String,
    pub path: String,
    pub query: Option<String>,
    pub content_length: u64,
    /// Distributed trace context from the `mh-trace` header
    /// (`SpanContext::NONE` when absent or malformed).
    pub trace: SpanContext,
    /// Bytes of `buf` occupied by the head (the body starts here).
    pub head_len: usize,
}

/// Byte offset just past the head terminator (the blank line), if the
/// buffer holds a complete head yet. Accepts `\r\n\r\n` and bare `\n\n`
/// (and the mixed forms), matching the tolerant line reader used by the
/// blocking parser.
fn head_end(buf: &[u8]) -> Option<usize> {
    for (idx, w) in buf.windows(2).enumerate() {
        if w == b"\n\n" {
            return Some(idx + 2);
        }
        if w == b"\n\r" && buf.get(idx + 2) == Some(&b'\n') {
            return Some(idx + 3);
        }
    }
    None
}

/// Incremental request-head parse over a partially-received buffer.
///
/// * `Ok(None)` — head not complete yet, keep reading.
/// * `Ok(Some(h))` — head parsed; the body is `buf[h.head_len..]` as it
///   arrives.
/// * `Err(_)` — the bytes can never become a valid request (bad request
///   line, header flood past [`MAX_HEAD_BYTES`], bad content-length).
// mh-audit: no_panic_zone
pub fn parse_request_head(buf: &[u8]) -> Result<Option<RequestHead>, HubError> {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HubError::Protocol(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes without terminating"
            )));
        }
        return Ok(None);
    };
    let mut r = buf.get(..end).unwrap_or_default();
    let line = read_line(&mut r)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HubError::Protocol(format!("bad request line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HubError::Protocol(format!(
            "unsupported version '{version}'"
        )));
    }
    let headers = read_headers(&mut r)?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok(Some(RequestHead {
        method: method.to_string(),
        path,
        query,
        content_length: headers.content_length,
        trace: headers.trace,
        head_len: end,
    }))
}

/// Render a response head as bytes for a reactor write buffer. Same
/// shape as [`write_response_head`], plus an optional `Retry-After`
/// (the backpressure signal on a 503).
pub fn response_head_bytes(status: u16, content_length: u64, retry_after: Option<u32>) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Length: {content_length}\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n",
        status_reason(status)
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// Read and parse one request (line, headers, body).
// mh-audit: no_panic_zone
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HubError> {
    let line = read_line(r)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HubError::Protocol(format!("bad request line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HubError::Protocol(format!(
            "unsupported version '{version}'"
        )));
    }
    let headers = read_headers(r)?;
    let content_length = headers.content_length;
    if content_length > MAX_BODY_BYTES {
        return Err(HubError::Protocol(format!(
            "request body too large ({content_length} bytes)"
        )));
    }
    let mut body = vec![0u8; content_length as usize];
    r.read_exact(&mut body)
        .map_err(|e| HubError::ConnectionDropped(format!("mid-request-body: {e}")))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        trace: headers.trace,
        body,
    })
}

/// Headers this protocol subset cares about.
struct HeaderInfo {
    content_length: u64,
    trace: SpanContext,
}

/// Read headers until the blank line; extracts Content-Length (0 if
/// absent) and the `mh-trace` context (NONE if absent; a malformed value
/// degrades to NONE rather than failing the request).
// mh-audit: no_panic_zone
fn read_headers<R: BufRead>(r: &mut R) -> Result<HeaderInfo, HubError> {
    let mut info = HeaderInfo {
        content_length: 0,
        trace: SpanContext::NONE,
    };
    for _ in 0..MAX_HEADERS {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(info);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                info.content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HubError::Protocol(format!("bad content-length '{value}'")))?;
            } else if name.eq_ignore_ascii_case("mh-trace") {
                info.trace = SpanContext::from_header(value).unwrap_or(SpanContext::NONE);
            }
        }
    }
    Err(HubError::Protocol("too many headers".to_string()))
}

/// Write a request with a body. A non-empty `trace` context is propagated
/// as the `mh-trace` header (`<trace-id-hex32> <parent-span-id>`).
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    target: &str,
    host: &str,
    trace: SpanContext,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    if trace.trace != 0 {
        write!(w, "mh-trace: {}\r\n", trace.to_header())?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Write a response head; the caller follows with exactly
/// `content_length` body bytes.
pub fn write_response_head<W: Write>(
    w: &mut W,
    status: u16,
    content_length: u64,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Length: {content_length}\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n\r\n",
        status_reason(status)
    )
}

/// Read a response status line + headers.
// mh-audit: no_panic_zone
pub fn read_response_head<R: BufRead>(r: &mut R) -> Result<ResponseHead, HubError> {
    let line = read_line(r)?;
    let mut parts = line.split(' ');
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(HubError::Protocol(format!("bad status line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HubError::Protocol(format!(
            "unsupported version '{version}'"
        )));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| HubError::Protocol(format!("bad status code '{status}'")))?;
    let content_length = read_headers(r)?.content_length;
    Ok(ResponseHead {
        status,
        content_length,
    })
}

/// Read a fully buffered response body of the declared length.
// mh-audit: no_panic_zone
pub fn read_body<R: BufRead>(r: &mut R, head: &ResponseHead) -> Result<Vec<u8>, HubError> {
    if head.content_length > MAX_BODY_BYTES {
        return Err(HubError::Protocol(format!(
            "response body too large ({} bytes)",
            head.content_length
        )));
    }
    let mut body = vec![0u8; head.content_length as usize];
    r.read_exact(&mut body)
        .map_err(|e| HubError::ConnectionDropped(format!("mid-response-body: {e}")))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/objects/m?x=1",
            "h:1",
            SpanContext::NONE,
            b"have1\nhave2\n",
        )
        .unwrap();
        // No trace context → no header on the wire.
        assert!(!String::from_utf8_lossy(&wire).contains("mh-trace"));
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/objects/m");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.trace, SpanContext::NONE);
        assert_eq!(req.body, b"have1\nhave2\n");
    }

    #[test]
    fn trace_context_crosses_the_wire() {
        let ctx = SpanContext {
            trace: 0x0123_4567_89ab_cdef_0011_2233_4455_6677,
            parent: 99,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/manifest/m", "h:1", ctx, b"").unwrap();
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("mh-trace: 0123456789abcdef0011223344556677 99\r\n"));
        // Blocking parse sees it …
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.trace, ctx);
        // … and the incremental reactor parse agrees.
        let head = parse_request_head(&wire).unwrap().expect("complete");
        assert_eq!(head.trace, ctx);
    }

    #[test]
    fn malformed_trace_header_degrades_to_none() {
        for bad in [
            "mh-trace: zz\r\n",
            "mh-trace: deadbeef 1\r\n",
            "mh-trace: 0123456789abcdef0011223344556677\r\n",
            "mh-trace:\r\n",
        ] {
            let wire = format!("GET /repos HTTP/1.1\r\n{bad}Content-Length: 0\r\n\r\n");
            let head = parse_request_head(wire.as_bytes())
                .unwrap()
                .expect("complete");
            assert_eq!(head.trace, SpanContext::NONE, "input: {bad:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response_head(&mut wire, 404, 5).unwrap();
        wire.extend_from_slice(b"gone\n");
        let mut r = BufReader::new(&wire[..]);
        let head = read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 404);
        assert_eq!(read_body(&mut r, &head).unwrap(), b"gone\n");
    }

    #[test]
    fn garbage_is_a_protocol_error() {
        let mut r = BufReader::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            HubError::Protocol(_)
        ));
    }

    #[test]
    fn incremental_head_parse_matches_blocking_parse() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/objects/m?x=1",
            "h:1",
            SpanContext::NONE,
            b"abc",
        )
        .unwrap();
        // Feed the wire byte by byte: no prefix short of the blank line
        // completes the head.
        let mut complete_at = None;
        for n in 0..=wire.len() {
            match parse_request_head(&wire[..n]).unwrap() {
                Some(h) => {
                    complete_at.get_or_insert(n);
                    assert_eq!(h.method, "POST");
                    assert_eq!(h.path, "/objects/m");
                    assert_eq!(h.query.as_deref(), Some("x=1"));
                    assert_eq!(h.content_length, 3);
                    assert_eq!(&wire[h.head_len..], b"abc");
                }
                None => assert!(complete_at.is_none()),
            }
        }
        assert!(complete_at.is_some(), "full wire must parse");
    }

    #[test]
    fn incremental_head_parse_accepts_bare_lf() {
        let wire = b"GET /repos HTTP/1.1\nContent-Length: 0\n\n";
        let h = parse_request_head(wire).unwrap().expect("complete head");
        assert_eq!(h.path, "/repos");
        assert_eq!(h.head_len, wire.len());
    }

    #[test]
    fn incremental_head_parse_caps_unterminated_heads() {
        let flood = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            parse_request_head(&flood),
            Err(HubError::Protocol(_))
        ));
        // Under the cap and unterminated: still waiting.
        assert!(parse_request_head(&flood[..100]).unwrap().is_none());
    }

    #[test]
    fn response_head_bytes_carries_retry_after() {
        let head = String::from_utf8(response_head_bytes(503, 5, Some(1))).unwrap();
        assert!(head.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(head.contains("Retry-After: 1\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
        let plain = String::from_utf8(response_head_bytes(200, 0, None)).unwrap();
        assert!(!plain.contains("Retry-After"));
    }
}
