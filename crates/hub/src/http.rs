//! A minimal HTTP/1.1 subset shared by the `hubd` server and the
//! [`crate::RemoteHub`] client: request line + headers + Content-Length
//! bodies, one request per connection (`Connection: close`). This is not
//! a general HTTP implementation — just enough structure that the wire
//! format is debuggable with curl.

use crate::protocol::read_line;
use crate::HubError;
use std::io::{BufRead, Write};

/// Upper bound on request/response bodies handled in memory (object
/// streams are parsed incrementally and are not subject to this cap on
/// the client side).
pub const MAX_BODY_BYTES: u64 = 1 << 30;
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    pub body: Vec<u8>,
}

/// A parsed response status line + headers; the body is read separately
/// (buffered or streamed, per endpoint).
#[derive(Debug)]
pub struct ResponseHead {
    pub status: u16,
    pub content_length: u64,
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Read and parse one request (line, headers, body).
// mh-audit: no_panic_zone
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HubError> {
    let line = read_line(r)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HubError::Protocol(format!("bad request line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HubError::Protocol(format!(
            "unsupported version '{version}'"
        )));
    }
    let content_length = read_headers(r)?;
    if content_length > MAX_BODY_BYTES {
        return Err(HubError::Protocol(format!(
            "request body too large ({content_length} bytes)"
        )));
    }
    let mut body = vec![0u8; content_length as usize];
    r.read_exact(&mut body)
        .map_err(|e| HubError::ConnectionDropped(format!("mid-request-body: {e}")))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    })
}

/// Read headers until the blank line; returns the Content-Length (0 if
/// absent).
fn read_headers<R: BufRead>(r: &mut R) -> Result<u64, HubError> {
    let mut content_length = 0u64;
    for _ in 0..MAX_HEADERS {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(content_length);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HubError::Protocol(format!("bad content-length '{value}'")))?;
            }
        }
    }
    Err(HubError::Protocol("too many headers".to_string()))
}

/// Write a request with a body.
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    target: &str,
    host: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Write a response head; the caller follows with exactly
/// `content_length` body bytes.
pub fn write_response_head<W: Write>(
    w: &mut W,
    status: u16,
    content_length: u64,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Length: {content_length}\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n\r\n",
        status_reason(status)
    )
}

/// Read a response status line + headers.
// mh-audit: no_panic_zone
pub fn read_response_head<R: BufRead>(r: &mut R) -> Result<ResponseHead, HubError> {
    let line = read_line(r)?;
    let mut parts = line.split(' ');
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(HubError::Protocol(format!("bad status line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HubError::Protocol(format!(
            "unsupported version '{version}'"
        )));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| HubError::Protocol(format!("bad status code '{status}'")))?;
    let content_length = read_headers(r)?;
    Ok(ResponseHead {
        status,
        content_length,
    })
}

/// Read a fully buffered response body of the declared length.
// mh-audit: no_panic_zone
pub fn read_body<R: BufRead>(r: &mut R, head: &ResponseHead) -> Result<Vec<u8>, HubError> {
    if head.content_length > MAX_BODY_BYTES {
        return Err(HubError::Protocol(format!(
            "response body too large ({} bytes)",
            head.content_length
        )));
    }
    let mut body = vec![0u8; head.content_length as usize];
    r.read_exact(&mut body)
        .map_err(|e| HubError::ConnectionDropped(format!("mid-response-body: {e}")))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/objects/m?x=1",
            "h:1",
            b"have1\nhave2\n",
        )
        .unwrap();
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/objects/m");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.body, b"have1\nhave2\n");
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response_head(&mut wire, 404, 5).unwrap();
        wire.extend_from_slice(b"gone\n");
        let mut r = BufReader::new(&wire[..]);
        let head = read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 404);
        assert_eq!(read_body(&mut r, &head).unwrap(), b"gone\n");
    }

    #[test]
    fn garbage_is_a_protocol_error() {
        let mut r = BufReader::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            HubError::Protocol(_)
        ));
    }
}
