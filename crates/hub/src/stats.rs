//! Per-endpoint request/byte/error counters, backed by an mh-obs
//! [`mh_obs::Registry`] and exported two ways: the line-oriented
//! `GET /stats` text the client can parse back, and Prometheus text format
//! at `GET /metrics` (which additionally includes the process-global
//! registry — PAS, compression, and pool series).
//!
//! The registry is **per server instance**, not global, so several
//! `HubServer`s in one test process keep independent counts.

use crate::cache::CacheMetrics;
use mh_obs::{Counter, Gauge, Registry};

/// The hub endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Repos,
    Search,
    Manifest,
    Objects,
    Publish,
    Stats,
    Metrics,
    Flightrec,
    Other,
}

pub const ENDPOINTS: [Endpoint; 9] = [
    Endpoint::Repos,
    Endpoint::Search,
    Endpoint::Manifest,
    Endpoint::Objects,
    Endpoint::Publish,
    Endpoint::Stats,
    Endpoint::Metrics,
    Endpoint::Flightrec,
    Endpoint::Other,
];

impl Endpoint {
    pub fn name(self) -> &'static str {
        match self {
            Self::Repos => "repos",
            Self::Search => "search",
            Self::Manifest => "manifest",
            Self::Objects => "objects",
            Self::Publish => "publish",
            Self::Stats => "stats",
            Self::Metrics => "metrics",
            Self::Flightrec => "flightrec",
            Self::Other => "other",
        }
    }
}

/// Request-duration buckets (milliseconds): sub-ms cache hits through
/// multi-second object streams.
pub const DURATION_MS_BUCKETS: &[f64] =
    &[0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0];

/// Monotonic per-endpoint counters. Cheap to record from any worker.
#[derive(Debug)]
pub struct Stats {
    registry: Registry,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

/// One parsed `/stats` line.
#[derive(Debug, Clone, PartialEq)]
pub struct StatLine {
    pub endpoint: String,
    pub requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub errors: u64,
    /// Request-duration quantiles (milliseconds), interpolated from the
    /// server-side histogram; 0.0 when the endpoint saw no traffic.
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl Stats {
    pub fn new() -> Self {
        let registry = Registry::new();
        // Pre-register every series so `/stats` and `/metrics` show each
        // endpoint (at zero) from the first scrape.
        for ep in ENDPOINTS {
            let labels = &[("endpoint", ep.name())];
            let _ = registry.counter_labeled("hub_requests_total", labels);
            let _ = registry.counter_labeled("hub_bytes_in_total", labels);
            let _ = registry.counter_labeled("hub_bytes_out_total", labels);
            let _ = registry.counter_labeled("hub_errors_total", labels);
            let _ =
                registry.histogram_labeled("hub_request_duration_ms", labels, DURATION_MS_BUCKETS);
        }
        // Reactor + cache series, present (at zero) from the first scrape.
        let _ = registry.gauge("hub_connections_open");
        let _ = registry.gauge("hub_connections_peak");
        let _ = registry.counter("hub_connections_rejected_total");
        let _ = registry.counter("hub_body_rejected_total");
        let _ = CacheMetrics::for_registry(&registry);
        Self { registry }
    }

    /// Currently open reactor connections.
    pub fn conn_open(&self) -> &'static Gauge {
        self.registry.gauge("hub_connections_open")
    }

    /// High-water mark of simultaneously open connections — the metric
    /// that proves the old one-worker-per-connection ceiling is gone.
    pub fn conn_peak(&self) -> &'static Gauge {
        self.registry.gauge("hub_connections_peak")
    }

    /// Connections answered 503 + `Retry-After` at accept time because
    /// the `--max-conns` cap was reached. A full worker queue is *not*
    /// counted here (and never 503s): complete requests park FIFO in
    /// the reactor and retry as completions free queue slots.
    pub fn conn_rejected(&self) -> &'static Counter {
        self.registry.counter("hub_connections_rejected_total")
    }

    /// Requests answered 503 + `Retry-After` because admitting their
    /// declared body would overrun the reactor's aggregate in-flight
    /// request-body budget (`--body-budget`).
    pub fn body_rejected(&self) -> &'static Counter {
        self.registry.counter("hub_body_rejected_total")
    }

    /// Handles for the hot-object cache series on this server's registry.
    pub fn cache_metrics(&self) -> CacheMetrics {
        CacheMetrics::for_registry(&self.registry)
    }

    /// Record one handled request: request-body bytes in, response-body
    /// bytes actually written out, and whether it ended in an error
    /// (status >= 400 or a transport failure).
    pub fn record(&self, ep: Endpoint, bytes_in: u64, bytes_out: u64, error: bool) {
        let labels = &[("endpoint", ep.name())];
        self.registry
            .counter_labeled("hub_requests_total", labels)
            .inc();
        self.registry
            .counter_labeled("hub_bytes_in_total", labels)
            .add(bytes_in);
        self.registry
            .counter_labeled("hub_bytes_out_total", labels)
            .add(bytes_out);
        if error {
            self.registry
                .counter_labeled("hub_errors_total", labels)
                .inc();
        }
    }

    /// Record one request's worker-side handling time into the
    /// per-endpoint duration histogram (the `/stats` p50/p99 source).
    pub fn record_duration(&self, ep: Endpoint, ms: f64) {
        self.registry
            .histogram_labeled(
                "hub_request_duration_ms",
                &[("endpoint", ep.name())],
                DURATION_MS_BUCKETS,
            )
            .observe(ms);
    }

    /// Render the `/stats` body: one line per endpoint,
    /// `<endpoint> requests=<n> bytes_in=<n> bytes_out=<n> errors=<n>
    /// p50_ms=<q> p99_ms=<q>`. The quantiles are bucket-interpolated
    /// estimates from the duration histogram ([`mh_obs::Histogram::quantile`]);
    /// `parse_stats` ignores keys it does not know, so older clients keep
    /// working.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (ep, line) in ENDPOINTS.iter().zip(self.snapshot()) {
            let h = self.registry.histogram_labeled(
                "hub_request_duration_ms",
                &[("endpoint", ep.name())],
                DURATION_MS_BUCKETS,
            );
            out.push_str(&format!(
                "{} requests={} bytes_in={} bytes_out={} errors={} p50_ms={:.3} p99_ms={:.3}\n",
                line.endpoint,
                line.requests,
                line.bytes_in,
                line.bytes_out,
                line.errors,
                h.quantile(0.5),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// Render the `/metrics` body: this server's series in Prometheus text
    /// format, followed by the process-global registry (PAS, compression,
    /// worker-pool series). Metric names never overlap between the two, so
    /// plain concatenation stays a valid exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        out.push_str(&Registry::global().render_prometheus());
        out
    }

    pub fn snapshot(&self) -> Vec<StatLine> {
        ENDPOINTS
            .iter()
            .map(|ep| {
                let labels = &[("endpoint", ep.name())];
                StatLine {
                    endpoint: ep.name().to_string(),
                    requests: self
                        .registry
                        .counter_labeled("hub_requests_total", labels)
                        .get(),
                    bytes_in: self
                        .registry
                        .counter_labeled("hub_bytes_in_total", labels)
                        .get(),
                    bytes_out: self
                        .registry
                        .counter_labeled("hub_bytes_out_total", labels)
                        .get(),
                    errors: self
                        .registry
                        .counter_labeled("hub_errors_total", labels)
                        .get(),
                    p50_ms: self
                        .registry
                        .histogram_labeled("hub_request_duration_ms", labels, DURATION_MS_BUCKETS)
                        .quantile(0.5),
                    p99_ms: self
                        .registry
                        .histogram_labeled("hub_request_duration_ms", labels, DURATION_MS_BUCKETS)
                        .quantile(0.99),
                }
            })
            .collect()
    }
}

/// Parse a `/stats` body (used by the client and tests).
pub fn parse_stats(body: &str) -> Vec<StatLine> {
    let mut out = Vec::new();
    for line in body.lines() {
        let mut fields = line.split(' ');
        let Some(endpoint) = fields.next() else {
            continue;
        };
        let mut stat = StatLine {
            endpoint: endpoint.to_string(),
            requests: 0,
            bytes_in: 0,
            bytes_out: 0,
            errors: 0,
            p50_ms: 0.0,
            p99_ms: 0.0,
        };
        for f in fields {
            if let Some((k, v)) = f.split_once('=') {
                match k {
                    "requests" => stat.requests = v.parse().unwrap_or(0),
                    "bytes_in" => stat.bytes_in = v.parse().unwrap_or(0),
                    "bytes_out" => stat.bytes_out = v.parse().unwrap_or(0),
                    "errors" => stat.errors = v.parse().unwrap_or(0),
                    "p50_ms" => stat.p50_ms = v.parse().unwrap_or(0.0),
                    "p99_ms" => stat.p99_ms = v.parse().unwrap_or(0.0),
                    _ => {}
                }
            }
        }
        out.push(stat);
    }
    out
}

/// Model-checked exploration of concurrent stat recording
/// (`cargo test -p mh-hub --features model`): with the `model` feature
/// the registry behind [`Stats`] runs on instrumented primitives, so
/// every interleaving of two workers recording into the same endpoint
/// counters is executed deterministically.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn model_concurrent_record_loses_nothing() {
        let stats = mh_par::model::Builder::new().preemption_bound(2).check(|| {
            let s = Arc::new(Stats::new());
            let (sa, sb) = (Arc::clone(&s), Arc::clone(&s));
            let ta = mh_par::sync::thread::spawn(move || {
                sa.record(Endpoint::Objects, 10, 100, false);
            });
            let tb = mh_par::sync::thread::spawn(move || {
                sb.record(Endpoint::Objects, 3, 7, true);
            });
            ta.join().expect("worker a");
            tb.join().expect("worker b");
            let snap = s.snapshot();
            let obj = snap
                .iter()
                .find(|l| l.endpoint == "objects")
                .expect("objects line");
            assert_eq!(obj.requests, 2, "a request count was lost");
            assert_eq!(obj.bytes_in, 13);
            assert_eq!(obj.bytes_out, 107);
            assert_eq!(obj.errors, 1);
        });
        assert!(stats.complete, "exploration should finish: {stats:?}");
        assert!(stats.iterations > 1, "expected multiple interleavings");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_render_parse_roundtrip() {
        let s = Stats::new();
        s.record(Endpoint::Objects, 10, 2000, false);
        s.record(Endpoint::Objects, 5, 70, true);
        s.record(Endpoint::Manifest, 0, 300, false);
        let parsed = parse_stats(&s.render());
        let obj = parsed.iter().find(|l| l.endpoint == "objects").unwrap();
        assert_eq!(obj.requests, 2);
        assert_eq!(obj.bytes_in, 15);
        assert_eq!(obj.bytes_out, 2070);
        assert_eq!(obj.errors, 1);
        let man = parsed.iter().find(|l| l.endpoint == "manifest").unwrap();
        assert_eq!(man.bytes_out, 300);
    }

    #[test]
    fn stats_lines_carry_latency_quantiles() {
        let s = Stats::new();
        // 5 fast requests, 5 slower: p50 lands exactly on the first
        // bucket's edge, p99 interpolates inside the 5..10ms bucket.
        for _ in 0..5 {
            s.record_duration(Endpoint::Objects, 0.25);
        }
        for _ in 0..5 {
            s.record_duration(Endpoint::Objects, 6.0);
        }
        let text = s.render();
        let obj_line = text
            .lines()
            .find(|l| l.starts_with("objects "))
            .expect("objects line");
        assert!(obj_line.contains("p50_ms=0.500"), "line: {obj_line}");
        assert!(obj_line.contains("p99_ms=9.900"), "line: {obj_line}");
        // Endpoints with no samples render zero quantiles.
        let repos_line = text.lines().find(|l| l.starts_with("repos ")).unwrap();
        assert!(repos_line.contains("p50_ms=0.000"));
        // Old parsers ignore the new keys.
        let parsed = parse_stats(&text);
        assert_eq!(parsed.len(), ENDPOINTS.len());
    }

    #[test]
    fn prometheus_export_has_duration_histograms() {
        let s = Stats::new();
        s.record_duration(Endpoint::Manifest, 3.0);
        let text = s.render_prometheus();
        assert!(text.contains("# TYPE hub_request_duration_ms histogram"));
        assert!(text.contains("hub_request_duration_ms_bucket{endpoint=\"manifest\",le=\"5\"} 1"));
        assert!(text.contains("hub_request_duration_ms_count{endpoint=\"manifest\"} 1"));
        // Pre-registered at zero for endpoints with no traffic yet.
        assert!(text.contains("hub_request_duration_ms_count{endpoint=\"objects\"} 0"));
    }

    #[test]
    fn servers_have_independent_counters() {
        let a = Stats::new();
        let b = Stats::new();
        a.record(Endpoint::Repos, 0, 10, false);
        let bl = b.snapshot();
        let repos = bl.iter().find(|l| l.endpoint == "repos").unwrap();
        assert_eq!(
            repos.requests, 0,
            "second server must not see first's traffic"
        );
    }

    #[test]
    fn prometheus_export_has_labeled_series() {
        let s = Stats::new();
        s.record(Endpoint::Publish, 100, 3, true);
        let text = s.render_prometheus();
        assert!(text.contains("# TYPE hub_requests_total counter"));
        assert!(text.contains("hub_requests_total{endpoint=\"publish\"} 1"));
        assert!(text.contains("hub_bytes_in_total{endpoint=\"publish\"} 100"));
        assert!(text.contains("hub_errors_total{endpoint=\"publish\"} 1"));
        // Unused endpoints still present at zero.
        assert!(text.contains("hub_requests_total{endpoint=\"search\"} 0"));
    }
}
