//! Per-endpoint request/byte/error counters, exported at `GET /stats`
//! in a line-oriented text format the client can parse back.

use std::sync::atomic::{AtomicU64, Ordering};

/// The hub endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Repos,
    Search,
    Manifest,
    Objects,
    Publish,
    Stats,
    Other,
}

pub const ENDPOINTS: [Endpoint; 7] = [
    Endpoint::Repos,
    Endpoint::Search,
    Endpoint::Manifest,
    Endpoint::Objects,
    Endpoint::Publish,
    Endpoint::Stats,
    Endpoint::Other,
];

impl Endpoint {
    pub fn name(self) -> &'static str {
        match self {
            Self::Repos => "repos",
            Self::Search => "search",
            Self::Manifest => "manifest",
            Self::Objects => "objects",
            Self::Publish => "publish",
            Self::Stats => "stats",
            Self::Other => "other",
        }
    }

    fn index(self) -> usize {
        ENDPOINTS
            .iter()
            .position(|e| *e == self)
            .unwrap_or(ENDPOINTS.len() - 1)
    }
}

#[derive(Debug, Default)]
struct Counter {
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    errors: AtomicU64,
}

/// Monotonic per-endpoint counters. Cheap to record from any worker.
#[derive(Debug, Default)]
pub struct Stats {
    counters: [Counter; ENDPOINTS.len()],
}

/// One parsed `/stats` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatLine {
    pub endpoint: String,
    pub requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub errors: u64,
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one handled request: request-body bytes in, response-body
    /// bytes out, and whether it ended in an error (status >= 400 or a
    /// transport failure).
    pub fn record(&self, ep: Endpoint, bytes_in: u64, bytes_out: u64, error: bool) {
        let c = &self.counters[ep.index()];
        c.requests.fetch_add(1, Ordering::Relaxed);
        c.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        c.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        if error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render the `/stats` body: one line per endpoint,
    /// `<endpoint> requests=<n> bytes_in=<n> bytes_out=<n> errors=<n>`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.snapshot() {
            out.push_str(&format!(
                "{} requests={} bytes_in={} bytes_out={} errors={}\n",
                line.endpoint, line.requests, line.bytes_in, line.bytes_out, line.errors
            ));
        }
        out
    }

    pub fn snapshot(&self) -> Vec<StatLine> {
        ENDPOINTS
            .iter()
            .map(|ep| {
                let c = &self.counters[ep.index()];
                StatLine {
                    endpoint: ep.name().to_string(),
                    requests: c.requests.load(Ordering::Relaxed),
                    bytes_in: c.bytes_in.load(Ordering::Relaxed),
                    bytes_out: c.bytes_out.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

/// Parse a `/stats` body (used by the client and tests).
pub fn parse_stats(body: &str) -> Vec<StatLine> {
    let mut out = Vec::new();
    for line in body.lines() {
        let mut fields = line.split(' ');
        let Some(endpoint) = fields.next() else {
            continue;
        };
        let mut stat = StatLine {
            endpoint: endpoint.to_string(),
            requests: 0,
            bytes_in: 0,
            bytes_out: 0,
            errors: 0,
        };
        for f in fields {
            if let Some((k, v)) = f.split_once('=') {
                let v: u64 = v.parse().unwrap_or(0);
                match k {
                    "requests" => stat.requests = v,
                    "bytes_in" => stat.bytes_in = v,
                    "bytes_out" => stat.bytes_out = v,
                    "errors" => stat.errors = v,
                    _ => {}
                }
            }
        }
        out.push(stat);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_render_parse_roundtrip() {
        let s = Stats::new();
        s.record(Endpoint::Objects, 10, 2000, false);
        s.record(Endpoint::Objects, 5, 70, true);
        s.record(Endpoint::Manifest, 0, 300, false);
        let parsed = parse_stats(&s.render());
        let obj = parsed.iter().find(|l| l.endpoint == "objects").unwrap();
        assert_eq!(obj.requests, 2);
        assert_eq!(obj.bytes_in, 15);
        assert_eq!(obj.bytes_out, 2070);
        assert_eq!(obj.errors, 1);
        let man = parsed.iter().find(|l| l.endpoint == "manifest").unwrap();
        assert_eq!(man.bytes_out, 300);
    }
}
