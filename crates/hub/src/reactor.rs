//! The hubd I/O reactor: readiness notification for thousands of
//! nonblocking sockets with zero external dependencies.
//!
//! Two backends behind one [`Poller`] API:
//!
//! * **epoll** — on Linux x86_64/aarch64, raw `epoll_create1` /
//!   `epoll_ctl` / `epoll_pwait` syscalls issued directly via inline
//!   assembly (the workspace vendors no `libc`). Level-triggered, so
//!   the event loop never needs to track edge re-arming; O(ready)
//!   wakeups regardless of how many idle connections are registered.
//! * **poll-fallback** — a portable readiness *hint* loop for every
//!   other platform (and for `MH_HUB_POLLER=fallback`): `wait` sleeps
//!   a short beat and then reports every registered token ready for
//!   its declared interest. Correct because all reactor I/O is
//!   nonblocking and treats `WouldBlock` as a no-op; the cost is a
//!   bounded idle tick, not busy spinning.
//!
//! The caller (the hubd event loop in [`crate::server`]) owns all fd
//! lifetimes: sockets are registered by raw fd + token and must be
//! deregistered before close. Everything here is reachable from the
//! event-dispatch no-panic zone, so the module is total: no indexing,
//! no unwraps, syscall errors surface as `io::Error`.

use std::collections::BTreeMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Raw file descriptor, aliased so non-unix builds still compile (they
/// take the fallback backend, which never dereferences an fd).
#[cfg(unix)]
pub type RawFd = std::os::fd::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

/// The fd of a stream, for poller registration.
pub fn fd_of_stream(s: &TcpStream) -> RawFd {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        s.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = s;
        -1
    }
}

/// The fd of a listener, for poller registration.
pub fn fd_of_listener(l: &TcpListener) -> RawFd {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        l.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = l;
        -1
    }
}

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    Read,
    Write,
    /// No I/O interest (connection parked while its request is in the
    /// worker pool); errors/hangups are still surfaced by epoll and
    /// ignored by the state machine until it next touches the socket.
    None,
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
}

/// Readiness notification over registered fds. See the module docs for
/// the backend split.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    #[cfg(reactor_epoll)]
    Epoll(epoll::Epoll),
    Fallback(Fallback),
}

impl Poller {
    /// Pick the best available backend. `MH_HUB_POLLER=fallback`
    /// forces the portable loop (used by tests to cover both paths on
    /// Linux CI).
    pub fn new() -> io::Result<Self> {
        let forced_fallback = std::env::var("MH_HUB_POLLER")
            .map(|v| v == "fallback")
            .unwrap_or(false);
        #[cfg(reactor_epoll)]
        if !forced_fallback {
            match epoll::Epoll::new() {
                Ok(ep) => {
                    return Ok(Self {
                        backend: Backend::Epoll(ep),
                    })
                }
                Err(_) => { /* fall through to the portable loop */ }
            }
        }
        let _ = forced_fallback;
        Ok(Self {
            backend: Backend::Fallback(Fallback::default()),
        })
    }

    /// Which backend is live: `"epoll"` or `"poll-fallback"`.
    pub fn backend(&self) -> &'static str {
        match &self.backend {
            #[cfg(reactor_epoll)]
            Backend::Epoll(_) => "epoll",
            Backend::Fallback(_) => "poll-fallback",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(reactor_epoll)]
            Backend::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Fallback(fb) => {
                fb.tokens.insert(token, interest);
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(reactor_epoll)]
            Backend::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Fallback(fb) => {
                fb.tokens.insert(token, interest);
                Ok(())
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(reactor_epoll)]
            Backend::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_DEL, fd, token, Interest::None),
            Backend::Fallback(fb) => {
                fb.tokens.remove(&token);
                Ok(())
            }
        }
    }

    /// Wait up to `timeout` for readiness; `events` is cleared and
    /// refilled. Interrupted waits return an empty event set.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(reactor_epoll)]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            Backend::Fallback(fb) => {
                // A hint tick: sleep a short beat (bounded by the
                // caller's timeout), then report everything ready for
                // its declared interest. Nonblocking I/O turns wrong
                // hints into cheap WouldBlocks.
                // mh-audit: allow(R001, the fallback poller's bounded park is the zone's one legal wait point — capped at 10ms and replaced by epoll_wait on linux)
                std::thread::sleep(timeout.min(Duration::from_millis(10)));
                for (&token, &interest) in &fb.tokens {
                    let (readable, writable) = match interest {
                        Interest::Read => (true, false),
                        Interest::Write => (false, true),
                        Interest::None => continue,
                    };
                    events.push(Event {
                        token,
                        readable,
                        writable,
                    });
                }
                Ok(())
            }
        }
    }
}

/// Portable backend state: just the registered tokens and interests.
#[derive(Debug, Default)]
struct Fallback {
    tokens: BTreeMap<usize, Interest>,
}

/// Raw epoll syscalls via inline assembly. Linux-only; numbers and the
/// `epoll_event` layout are per-architecture ABI facts (x86_64 packs
/// the struct to 12 bytes, aarch64 keeps natural 16-byte layout).
#[cfg(reactor_epoll)]
mod epoll {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EINTR: isize = -4;

    /// Wait batch size: more ready fds than this simply surface on the
    /// next loop iteration (level-triggered).
    const MAX_EVENTS: usize = 256;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const CLOSE: usize = 3;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    /// Kernel `struct epoll_event`. x86_64 is the one architecture
    /// where the kernel declares it packed.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(target_arch = "aarch64")]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        _pad: u32,
        data: u64,
    }

    impl EpollEvent {
        fn new(events: u32, data: u64) -> Self {
            #[cfg(target_arch = "x86_64")]
            {
                Self { events, data }
            }
            #[cfg(target_arch = "aarch64")]
            {
                Self {
                    events,
                    _pad: 0,
                    data,
                }
            }
        }

        fn zeroed() -> Self {
            Self::new(0, 0)
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[inline]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            // Kernel returns -errno directly (no thread-local errno in
            // the raw syscall ABI).
            let errno = ret
                .checked_neg()
                .unwrap_or(isize::MAX)
                .min(i32::MAX as isize);
            Err(io::Error::from_raw_os_error(errno as i32))
        } else {
            Ok(ret as usize)
        }
    }

    fn interest_mask(interest: Interest) -> u32 {
        match interest {
            Interest::Read => EPOLLIN,
            Interest::Write => EPOLLOUT,
            Interest::None => 0,
        }
    }

    #[derive(Debug)]
    pub struct Epoll {
        epfd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags word and touches no
            // caller memory.
            let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
            let epfd = check(ret)?;
            Ok(Self { epfd: epfd as i32 })
        }

        pub fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let ev = EpollEvent::new(interest_mask(interest), token as u64);
            // SAFETY: `ev` outlives the call; the kernel copies it out
            // before returning. DEL ignores the event pointer.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op as usize,
                    fd as usize,
                    std::ptr::addr_of!(ev) as usize,
                    0,
                    0,
                )
            };
            check(ret).map(|_| ())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let mut buf = [EpollEvent::zeroed(); MAX_EVENTS];
            let timeout_ms: usize = timeout.as_millis().min(60_000) as usize;
            // SAFETY: `buf` is a stack array the kernel fills with at
            // most MAX_EVENTS entries; sigmask is null (no mask change).
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    MAX_EVENTS,
                    timeout_ms,
                    0,
                    8,
                )
            };
            if ret == EINTR {
                return Ok(());
            }
            let n = check(ret)?.min(MAX_EVENTS);
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                let data = ev.data;
                events.push(Event {
                    token: data as usize,
                    // Errors/hangups surface as both-ready so whichever
                    // direction the state machine tries next observes
                    // the failure and closes.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing our own epoll fd exactly once.
            let _ = unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = l.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn default_backend_reports_readiness() {
        let mut p = Poller::new().expect("poller");
        // On Linux CI this is the epoll backend; elsewhere the fallback.
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut events = Vec::new();
        p.register(fd_of_stream(&b), 7, Interest::Read)
            .expect("register");

        // Nothing to read yet: an epoll wait must come back empty.
        if p.backend() == "epoll" {
            p.wait(&mut events, Duration::from_millis(20))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != 7 || !e.readable) || events.is_empty(),
                "no data yet: {events:?}"
            );
        }

        a.write_all(b"ping").expect("write");
        a.flush().expect("flush");
        // Readiness may take a beat to surface; poll a few times.
        let mut saw = false;
        for _ in 0..50 {
            p.wait(&mut events, Duration::from_millis(20))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "registered socket with pending data must be readable");
        let mut buf = [0u8; 8];
        let n = {
            let mut b = &b;
            b.read(&mut buf).expect("read")
        };
        assert_eq!(buf.get(..n), Some(&b"ping"[..]));

        p.deregister(fd_of_stream(&b), 7).expect("deregister");
        p.wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(
            events.iter().all(|e| e.token != 7),
            "deregistered token must not fire: {events:?}"
        );
    }

    #[test]
    fn modify_switches_interest() {
        let mut p = Poller::new().expect("poller");
        let (_a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut events = Vec::new();
        p.register(fd_of_stream(&b), 3, Interest::Write)
            .expect("register");
        let mut saw_writable = false;
        for _ in 0..50 {
            p.wait(&mut events, Duration::from_millis(20))
                .expect("wait");
            if events.iter().any(|e| e.token == 3 && e.writable) {
                saw_writable = true;
                break;
            }
        }
        assert!(saw_writable, "fresh socket must be writable");
        // Parked: no events at all for this token.
        p.modify(fd_of_stream(&b), 3, Interest::None)
            .expect("modify");
        p.wait(&mut events, Duration::from_millis(20))
            .expect("wait");
        assert!(
            events.iter().all(|e| e.token != 3),
            "Interest::None must silence the token: {events:?}"
        );
    }
}
