//! # mh-hub
//!
//! The hosted ModelHub service (§III-C of the paper) as a real network
//! service: `hubd`, a hand-rolled HTTP/1.1-subset server over
//! `std::net::TcpListener`, and [`RemoteHub`], the matching client that
//! implements `mh_dlv::HubBackend` so `dlv publish/search/pull` work
//! against `http://host:port` hub URLs exactly as against local
//! directories.
//!
//! Transfers are incremental, git-style: both sides speak in
//! content-addressed objects (SHA-256 of file bytes). A puller sends the
//! hashes it already *has* and the server streams only the missing
//! objects; a publisher first *negotiates* against the previously
//! published content of the same name and uploads only new objects.
//! Object streams are length-prefixed per object and sealed with a
//! whole-transfer checksum (see [`protocol`]).
//!
//! The client retries transient failures with exponential backoff plus
//! jitter, bounds every request with a timeout, and resumes interrupted
//! pulls: received objects land in a cache keyed by hash, and each retry
//! re-negotiates from what already arrived. Every pulled repository is
//! fsck'd before the pull reports success.
//!
//! The server dispatches accepted connections to a fixed worker pool fed
//! from `mh_par::BoundedQueue` (width: `--jobs` / `MH_THREADS` / core
//! count) and exports per-endpoint request/byte/error counters at
//! `GET /stats`.

pub mod cache;
pub mod client;
pub mod http;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod stats;

pub use client::RemoteHub;
pub use server::{Faults, HubServer};
pub use stats::{Endpoint, StatLine, Stats};

use mh_dlv::DlvError;

/// Scheme prefix that marks a hub spec as remote.
pub const URL_PREFIX: &str = "http://";

/// Is this hub specification a remote URL (vs a local directory)?
pub fn is_remote_spec(spec: &str) -> bool {
    spec.starts_with(URL_PREFIX)
}

/// Errors from the hub wire protocol, transport, or server.
#[derive(Debug)]
pub enum HubError {
    /// Transport-level I/O failure (connect, read, write).
    Io(std::io::Error),
    /// A request exceeded its deadline.
    Timeout(String),
    /// The peer closed the connection before the message completed.
    ConnectionDropped(String),
    /// A frame or message violated the wire protocol.
    Protocol(String),
    /// A declared size (object, manifest entry, entry count) exceeded a
    /// hard cap. Rejected before any allocation; never transient.
    TooLarge(String),
    /// An object or transfer checksum did not match.
    Checksum { expected: String, got: String },
    /// The server answered with an error status.
    Server {
        status: u16,
        code: String,
        message: String,
    },
    /// Gave up after the configured number of retries.
    RetriesExhausted { attempts: u32, last: String },
    /// An underlying DLV operation failed.
    Dlv(DlvError),
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Timeout(m) => write!(f, "request timed out: {m}"),
            Self::ConnectionDropped(m) => write!(f, "connection dropped: {m}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::TooLarge(m) => write!(f, "declared size exceeds cap: {m}"),
            Self::Checksum { expected, got } => {
                write!(f, "checksum mismatch: expected {expected}, got {got}")
            }
            Self::Server {
                status,
                code,
                message,
            } => write!(f, "server error {status} ({code}): {message}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            Self::Dlv(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HubError {}

impl From<std::io::Error> for HubError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            Self::Timeout(e.to_string())
        } else if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Self::ConnectionDropped(e.to_string())
        } else {
            Self::Io(e)
        }
    }
}

impl From<DlvError> for HubError {
    fn from(e: DlvError) -> Self {
        Self::Dlv(e)
    }
}

impl HubError {
    /// Should the client retry after this error? Transport-level failures
    /// and 5xx responses are transient; protocol violations on a fresh
    /// response, client bugs (4xx), and local DLV failures are not.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Io(_) | Self::Timeout(_) | Self::ConnectionDropped(_) | Self::Checksum { .. } => {
                true
            }
            Self::Server { status, .. } => *status >= 500,
            Self::Protocol(_)
            | Self::TooLarge(_)
            | Self::RetriesExhausted { .. }
            | Self::Dlv(_) => false,
        }
    }

    /// Fold into a `DlvError` for the `HubBackend` trait surface.
    pub fn into_dlv(self) -> DlvError {
        match self {
            Self::Dlv(e) => e,
            Self::Server {
                status: 404,
                message,
                ..
            } => DlvError::NoSuchVersion(message),
            other => DlvError::Hub(other.to_string()),
        }
    }
}
