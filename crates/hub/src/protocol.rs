//! Wire codecs for the hub protocol: percent-encoding, manifest and
//! search-hit line formats, error bodies, and the length-prefixed object
//! stream with its trailing whole-transfer checksum.
//!
//! ## Object stream
//!
//! ```text
//! obj <sha256-hex> <len>\n      repeated per object, followed by
//! <len raw bytes>               exactly len payload bytes
//! ...
//! end <sha256-hex>\n            sha256 over all payload bytes, in order
//! ```
//!
//! The receiver verifies each object against its header hash as it
//! arrives (so partial transfers are safely resumable object-by-object)
//! and the trailing checksum against the whole payload sequence.

use crate::HubError;
use mh_dlv::hash::{sha256_hex, Sha256};
use mh_dlv::{ManifestEntry, SearchHit};
use std::io::{BufRead, Write};

/// Hard cap on a single object's size (prevents a malicious length
/// prefix from ballooning receiver memory).
pub const MAX_OBJECT_BYTES: u64 = 1 << 30;

/// Hard cap on manifest entry count: a manifest declaring more lines
/// than this is rejected before the entries are materialized.
pub const MAX_MANIFEST_ENTRIES: usize = 1 << 16;

/// Hard cap on one protocol line (object headers, manifest lines,
/// request lines all fit in well under this); a peer streaming bytes
/// with no newline is cut off instead of growing the line buffer.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// Percent-encode everything outside `[A-Za-z0-9._~-]`.
pub fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Decode percent-encoding; rejects malformed escapes and invalid UTF-8.
/// Total on arbitrary input (query strings arrive straight off the wire).
// mh-audit: no_panic_zone
pub fn pct_decode(s: &str) -> Result<String, HubError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| HubError::Protocol(format!("bad percent escape in '{s}'")))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| HubError::Protocol(format!("invalid utf-8 in '{s}'")))
}

/// One manifest entry per line: `<hash> <size> <pct-encoded-path>`.
pub fn encode_manifest(entries: &[ManifestEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!("{} {} {}\n", e.hash, e.size, pct_encode(&e.path)));
    }
    out
}

/// Parse a manifest body, enforcing the declared-size caps: at most
/// [`MAX_MANIFEST_ENTRIES`] entries, each declaring at most
/// [`MAX_OBJECT_BYTES`]. Oversized declarations are [`HubError::TooLarge`]
/// (mapped to HTTP 422 by the server) and rejected before the entry
/// vector grows — a handful of hostile header bytes cannot reserve
/// gigabytes.
// mh-audit: no_panic_zone
pub fn parse_manifest(body: &str) -> Result<Vec<ManifestEntry>, HubError> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if out.len() >= MAX_MANIFEST_ENTRIES {
            return Err(HubError::TooLarge(format!(
                "manifest exceeds {MAX_MANIFEST_ENTRIES} entries"
            )));
        }
        let mut parts = line.splitn(3, ' ');
        let (hash, size, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(s), Some(p)) => (h, s, p),
            _ => return Err(HubError::Protocol(format!("bad manifest line '{line}'"))),
        };
        if hash.len() != 64 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(HubError::Protocol(format!("bad manifest hash '{hash}'")));
        }
        let size: u64 = size
            .parse()
            .map_err(|_| HubError::Protocol(format!("bad manifest size '{size}'")))?;
        if size > MAX_OBJECT_BYTES {
            return Err(HubError::TooLarge(format!(
                "manifest entry declares {size} bytes (cap {MAX_OBJECT_BYTES})"
            )));
        }
        out.push(ManifestEntry {
            hash: hash.to_string(),
            size,
            path: pct_decode(path)?,
        });
    }
    Ok(out)
}

/// One search hit per line, fields percent-encoded and space-separated:
/// `<repo> <version> <architecture> <comment>`.
pub fn encode_hits(hits: &[SearchHit]) -> String {
    let mut out = String::new();
    for h in hits {
        out.push_str(&format!(
            "{} {} {} {}\n",
            pct_encode(&h.repo),
            pct_encode(&h.version),
            pct_encode(&h.architecture),
            pct_encode(&h.comment)
        ));
    }
    out
}

// mh-audit: no_panic_zone
pub fn parse_hits(body: &str) -> Result<Vec<SearchHit>, HubError> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(' ').collect();
        let [repo, version, architecture, comment] = fields.as_slice() else {
            return Err(HubError::Protocol(format!("bad search hit line '{line}'")));
        };
        out.push(SearchHit {
            repo: pct_decode(repo)?,
            version: pct_decode(version)?,
            architecture: pct_decode(architecture)?,
            comment: pct_decode(comment)?,
        });
    }
    Ok(out)
}

/// Error body format: `code=<symbol>\nmsg=<pct-encoded text>\n`.
pub fn encode_error(code: &str, message: &str) -> String {
    format!("code={code}\nmsg={}\n", pct_encode(message))
}

/// Parse an error body; falls back to the raw body as the message.
pub fn parse_error(status: u16, body: &str) -> HubError {
    let mut code = "unknown".to_string();
    let mut message = body.trim().to_string();
    for line in body.lines() {
        if let Some(c) = line.strip_prefix("code=") {
            code = c.to_string();
        } else if let Some(m) = line.strip_prefix("msg=") {
            message = pct_decode(m).unwrap_or_else(|_| m.to_string());
        }
    }
    HubError::Server {
        status,
        code,
        message,
    }
}

/// Byte length of an object-stream body for the given `(hash, size)`
/// sequence — computable before any payload is read, so responses can
/// carry an exact `Content-Length` while still streaming object bytes.
// mh-audit: no_panic_zone
pub fn object_stream_len(objects: &[(String, u64)]) -> u64 {
    // Saturating length-prefix arithmetic: sizes are validated against
    // the per-object cap upstream, but a promised Content-Length must
    // never be computed through a silent wrap.
    let mut total = 0u64;
    for (hash, size) in objects {
        let header = ("obj ".len() as u64)
            .saturating_add(hash.len() as u64)
            .saturating_add(1)
            .saturating_add(decimal_len(*size))
            .saturating_add(1);
        total = total.saturating_add(header).saturating_add(*size);
    }
    total.saturating_add("end ".len() as u64 + 64 + 1)
}

fn decimal_len(mut n: u64) -> u64 {
    let mut len = 1;
    while n >= 10 {
        n /= 10;
        len += 1;
    }
    len
}

/// Write one framed object (header line + payload), updating the
/// whole-transfer hasher.
pub fn write_object<W: Write>(
    w: &mut W,
    hash: &str,
    payload: &[u8],
    transfer: &mut Sha256,
) -> std::io::Result<()> {
    w.write_all(format!("obj {hash} {}\n", payload.len()).as_bytes())?;
    w.write_all(payload)?;
    transfer.update(payload);
    Ok(())
}

/// Write the stream terminator carrying the whole-transfer checksum.
pub fn write_object_stream_end<W: Write>(w: &mut W, transfer: Sha256) -> std::io::Result<()> {
    w.write_all(format!("end {}\n", transfer.finalize_hex()).as_bytes())
}

/// Incrementally read an object stream, invoking `on_object` for each
/// verified object as it completes. Per-object hashes are checked before
/// delivery, so everything handed to `on_object` is durable even if the
/// stream later breaks; the trailing whole-transfer checksum is verified
/// at the end. Returns the number of objects received.
// mh-audit: no_panic_zone
pub fn read_object_stream<R: BufRead>(
    r: &mut R,
    mut on_object: impl FnMut(&str, &[u8]) -> Result<(), HubError>,
) -> Result<usize, HubError> {
    let mut transfer = Sha256::new();
    let mut count = 0usize;
    loop {
        let line = read_line(r)?;
        if let Some(rest) = line.strip_prefix("obj ") {
            let (hash, len) = rest
                .split_once(' ')
                .ok_or_else(|| HubError::Protocol(format!("bad object header '{line}'")))?;
            // mh-audit: tainted(object length parsed off the wire)
            let len: u64 = len
                .parse()
                .map_err(|_| HubError::Protocol(format!("bad object length '{len}'")))?;
            if len > MAX_OBJECT_BYTES {
                return Err(HubError::TooLarge(format!("object declares {len} bytes")));
            }
            let mut payload = vec![0u8; len as usize];
            r.read_exact(&mut payload).map_err(|e| {
                HubError::ConnectionDropped(format!("mid-object after {count} objects: {e}"))
            })?;
            let got = sha256_hex(&payload);
            if got != hash {
                return Err(HubError::Checksum {
                    expected: hash.to_string(),
                    got,
                });
            }
            transfer.update(&payload);
            on_object(hash, &payload)?;
            count += 1;
        } else if let Some(sum) = line.strip_prefix("end ") {
            let got = transfer.finalize_hex();
            if got != sum {
                return Err(HubError::Checksum {
                    expected: sum.to_string(),
                    got,
                });
            }
            return Ok(count);
        } else {
            return Err(HubError::Protocol(format!(
                "unexpected stream line '{line}'"
            )));
        }
    }
}

/// Read one `\n`-terminated line (CR stripped); EOF before the newline is
/// a dropped connection, and a line longer than [`MAX_LINE_BYTES`] is a
/// protocol error — the buffer never grows past the cap no matter how
/// many bytes the peer pushes without a newline.
// mh-audit: no_panic_zone
pub fn read_line<R: BufRead>(r: &mut R) -> Result<String, HubError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf().map_err(HubError::from)?;
        if chunk.is_empty() {
            return Err(HubError::ConnectionDropped(
                "EOF before end of line".to_string(),
            ));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len().saturating_add(pos) > MAX_LINE_BYTES {
                    return Err(HubError::TooLarge(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    )));
                }
                buf.extend_from_slice(chunk.get(..pos).unwrap_or_default());
                r.consume(pos + 1);
                break;
            }
            None => {
                let n = chunk.len();
                if buf.len().saturating_add(n) > MAX_LINE_BYTES {
                    return Err(HubError::TooLarge(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    )));
                }
                buf.extend_from_slice(chunk);
                r.consume(n);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HubError::Protocol("non-utf8 line".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn pct_roundtrip() {
        for s in ["%lenet%", "team/vision", "a b\tc\nd", "héllo", ""] {
            assert_eq!(pct_decode(&pct_encode(s)).unwrap(), s);
        }
        assert!(pct_decode("%zz").is_err());
        assert!(pct_decode("%2").is_err());
    }

    #[test]
    fn manifest_roundtrip() {
        let entries = vec![
            ManifestEntry {
                path: "catalog.mhs".into(),
                size: 123,
                hash: "a".repeat(64),
            },
            ManifestEntry {
                path: "weights/m_1_s0.mhw".into(),
                size: 0,
                hash: "b".repeat(64),
            },
        ];
        assert_eq!(parse_manifest(&encode_manifest(&entries)).unwrap(), entries);
        assert!(parse_manifest("nothash 12 x\n").is_err());
    }

    #[test]
    fn object_stream_roundtrip_and_length() {
        let objs: Vec<(String, Vec<u8>)> = vec![
            (sha256_hex(b"alpha"), b"alpha".to_vec()),
            (sha256_hex(b""), Vec::new()),
            (sha256_hex(&[9u8; 300]), vec![9u8; 300]),
        ];
        let mut buf = Vec::new();
        let mut transfer = Sha256::new();
        for (h, p) in &objs {
            write_object(&mut buf, h, p, &mut transfer).unwrap();
        }
        write_object_stream_end(&mut buf, transfer).unwrap();
        let lens: Vec<(String, u64)> = objs
            .iter()
            .map(|(h, p)| (h.clone(), p.len() as u64))
            .collect();
        assert_eq!(buf.len() as u64, object_stream_len(&lens));

        let mut got = Vec::new();
        let n = read_object_stream(&mut BufReader::new(&buf[..]), |h, p| {
            got.push((h.to_string(), p.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(got, objs);
    }

    #[test]
    fn truncated_stream_is_dropped_not_hung() {
        let mut buf = Vec::new();
        let mut transfer = Sha256::new();
        write_object(&mut buf, &sha256_hex(b"payload"), b"payload", &mut transfer).unwrap();
        // Chop mid-payload of a second object.
        buf.extend_from_slice(format!("obj {} 100\nonly-a-few", sha256_hex(b"x")).as_bytes());
        let mut received = 0;
        let err = read_object_stream(&mut BufReader::new(&buf[..]), |_, _| {
            received += 1;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, HubError::ConnectionDropped(_)), "{err}");
        assert_eq!(received, 1, "completed objects delivered before the drop");
    }

    #[test]
    fn corrupt_object_is_a_checksum_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(format!("obj {} 3\nxyz", sha256_hex(b"abc")).as_bytes());
        let err = read_object_stream(&mut BufReader::new(&buf[..]), |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, HubError::Checksum { .. }), "{err}");
    }
}
