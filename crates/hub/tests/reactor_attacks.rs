//! Reactor-specific regression tests over raw loopback sockets: stalled
//! and hostile clients must be reaped by the per-state timeout axes
//! without stalling anyone else, saturation must answer 503 +
//! `Retry-After`, and the connection peak must be able to exceed the
//! worker pool width (the old one-worker-per-connection ceiling).

#![allow(clippy::unwrap_used)] // test code: panics are failures
use mh_dnn::zoo;
use mh_hub::server::Config;
use mh_hub::{HubServer, RemoteHub};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-hubreactor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A repository whose object stream is far larger than loopback socket
/// buffers, so a non-reading client forces the server into partial
/// writes.
fn big_repo(dir: &std::path::Path, name: &str) -> mh_dlv::Repository {
    let repo = mh_dlv::Repository::init(dir).unwrap();
    let net = zoo::lenet_s(3);
    let weights = mh_dnn::Weights::init(&net, 7).unwrap();
    let mut req = mh_dlv::CommitRequest::new(name, net);
    req.snapshots = vec![(0, weights)];
    req.files.push(("blob.bin".into(), vec![0xA5u8; 8 << 20]));
    req.comment = "big payload for stall tests".into();
    repo.commit(&req).unwrap();
    repo
}

fn start_server(tag: &str, config: Config) -> (HubServer, RemoteHub) {
    let root = temp_dir(&format!("{tag}-hubroot"));
    let server = HubServer::start_with(&root, "127.0.0.1:0", config).unwrap();
    let client = RemoteHub::open(&server.url())
        .unwrap()
        .with_timeout(Duration::from_secs(5))
        .with_retries(2, Duration::from_millis(20));
    (server, client)
}

fn objects_request(name: &str) -> Vec<u8> {
    format!(
        "POST /objects/{name} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Parse `Content-Length` out of a response-head prefix.
fn content_length_of(head: &str) -> Option<u64> {
    head.lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn stalled_mid_stream_client_is_reaped_without_stalling_others() {
    let repo_dir = temp_dir("stall-repo");
    let repo = big_repo(&repo_dir, "big-stall");
    let (server, client) = start_server(
        "stall",
        Config {
            jobs: Some(2),
            idle_timeout: Duration::from_millis(400),
            state_deadline: Duration::from_secs(10),
            ..Config::default()
        },
    );
    client.publish_repo(&repo, "big-stall").unwrap();

    // The staller: request the whole object stream, read a token amount,
    // then stop reading entirely. The server's send fills the socket
    // buffers and blocks; idle (no write progress) must reap it.
    let mut staller = TcpStream::connect(server.local_addr()).unwrap();
    staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    staller.write_all(&objects_request("big-stall")).unwrap();
    let mut first = vec![0u8; 1024];
    let n = staller.read(&mut first).unwrap();
    assert!(n > 0, "stream must start");
    let head = String::from_utf8_lossy(&first[..n]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let declared = content_length_of(&head).expect("content-length header");
    assert!(declared > 8 << 20, "stream must exceed socket buffers");

    // While the staller is wedged, other connections make normal
    // progress — each request is served well inside the stall window.
    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        assert_eq!(client.repositories().unwrap(), vec!["big-stall"]);
    }
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "healthy connections must not be stalled by the wedged one: {:?}",
        t0.elapsed()
    );

    // Give the reaper time, then drain: the server must have cut us off
    // long before the declared length arrived.
    std::thread::sleep(Duration::from_millis(1200));
    let mut rest = Vec::new();
    let _ = staller.read_to_end(&mut rest);
    let got = n as u64 + rest.len() as u64;
    assert!(
        got < declared,
        "stalled connection must be reaped mid-stream (got {got} of {declared})"
    );
    server.stop();
}

#[test]
fn never_reading_client_is_reaped_and_write_buffer_stays_bounded() {
    let repo_dir = temp_dir("noread-repo");
    let repo = big_repo(&repo_dir, "big-noread");
    let (server, client) = start_server(
        "noread",
        Config {
            jobs: Some(2),
            idle_timeout: Duration::from_millis(400),
            state_deadline: Duration::from_secs(10),
            ..Config::default()
        },
    );
    client.publish_repo(&repo, "big-noread").unwrap();
    let baseline_open = server.stats().conn_open().get();

    // Request the stream and never read a single byte. The response is a
    // fixed segment list staged once — the server buffers nothing more on
    // a slow reader, it just stops writing until reaped.
    let mut silent = TcpStream::connect(server.local_addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    silent.write_all(&objects_request("big-noread")).unwrap();

    // The connection must be reaped: open-connection gauge returns to
    // baseline even though we never read.
    let mut reaped = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(100));
        if server.stats().conn_open().get() <= baseline_open {
            reaped = true;
            break;
        }
    }
    assert!(reaped, "non-reading client must be reaped by idle timeout");

    // The server is fully healthy afterwards.
    assert_eq!(client.repositories().unwrap(), vec!["big-noread"]);
    drop(silent);
    server.stop();
}

#[test]
fn slowloris_headers_hit_the_state_deadline() {
    let (server, client) = start_server(
        "slowloris",
        Config {
            jobs: Some(2),
            // Idle alone would never fire: the attacker trickles a byte
            // well inside it. The per-state deadline is the axis that
            // catches this.
            idle_timeout: Duration::from_secs(30),
            state_deadline: Duration::from_millis(700),
            ..Config::default()
        },
    );

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    sock.write_all(b"POST /publish/x?phase=commit HTTP/1.1\r\n")
        .unwrap();
    let t0 = std::time::Instant::now();
    let mut cut_off = false;
    // One header byte every 50ms — each write resets idle, none finish
    // the head. The server must cut the connection near the state
    // deadline; detect it via write failure or EOF on read.
    for _ in 0..200usize {
        std::thread::sleep(Duration::from_millis(50));
        if sock.write_all(b"X").is_err() {
            cut_off = true;
            break;
        }
        let mut probe = [0u8; 64];
        match sock.read(&mut probe) {
            Ok(0) => {
                cut_off = true;
                break;
            }
            Ok(_) => {
                // An error response counts as a cut: the server has
                // abandoned the request either way.
                cut_off = true;
                break;
            }
            Err(_) => {} // timeout: still trickling
        }
    }
    assert!(
        cut_off,
        "byte-at-a-time headers must not hold a connection forever"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "cutoff must come from the state deadline, not some 30s fallback: {:?}",
        t0.elapsed()
    );
    // Healthy clients are unaffected.
    assert_eq!(client.repositories().unwrap(), Vec::<String>::new());
    server.stop();
}

#[test]
fn saturation_answers_503_with_retry_after() {
    let (server, client) = start_server(
        "sat",
        Config {
            jobs: Some(1),
            max_conns: 2,
            idle_timeout: Duration::from_secs(5),
            state_deadline: Duration::from_secs(5),
            ..Config::default()
        },
    );

    // Two idle connections occupy every slot.
    let hold_a = TcpStream::connect(server.local_addr()).unwrap();
    let hold_b = TcpStream::connect(server.local_addr()).unwrap();
    let mut seen = false;
    for _ in 0..100 {
        if server.stats().conn_open().get() >= 2 {
            seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(seen, "both holders must register as open connections");

    // The third connection is rejected with backpressure, not queued.
    let mut extra = TcpStream::connect(server.local_addr()).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = extra.write_all(b"GET /repos HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let mut resp = Vec::new();
    let _ = extra.read_to_end(&mut resp);
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with("HTTP/1.1 503 "),
        "over-cap connection must get 503: {text}"
    );
    assert!(text.contains("Retry-After: 1"), "{text}");
    assert!(server.stats().conn_rejected().get() >= 1);

    // Freeing the slots restores service.
    drop(hold_a);
    drop(hold_b);
    assert_eq!(client.repositories().unwrap(), Vec::<String>::new());
    server.stop();
}

#[test]
fn connection_peak_exceeds_pool_width() {
    let (server, client) = start_server(
        "peak",
        Config {
            jobs: Some(2),
            max_conns: 256,
            idle_timeout: Duration::from_secs(10),
            state_deadline: Duration::from_secs(10),
            ..Config::default()
        },
    );

    // 16 connections each holding a partial request head — under the old
    // one-worker-per-connection design with 2 workers, at most a handful
    // could even exist in-flight; the reactor holds all of them.
    let mut held: Vec<TcpStream> = Vec::new();
    for _ in 0..16 {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /repos HTT").unwrap();
        held.push(s);
    }
    let mut peak_ok = false;
    for _ in 0..200 {
        if server.stats().conn_peak().get() >= 16 {
            peak_ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        peak_ok,
        "16 simultaneous connections must all be open (peak = {})",
        server.stats().conn_peak().get()
    );

    // Complete every request: all must succeed despite pool width 2.
    for s in &mut held {
        s.write_all(b"P/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
    }
    for mut s in held {
        let mut resp = Vec::new();
        let _ = s.read_to_end(&mut resp);
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200 "), "{text}");
    }
    assert!(server.stats().conn_peak().get() > 2);
    assert_eq!(client.repositories().unwrap(), Vec::<String>::new());
    server.stop();
}

#[test]
fn uncached_objects_stream_lazily_and_still_verify() {
    // cache-bytes 0: nothing is ever admitted, so every payload must go
    // out as a lazily-streamed file segment. The stream must still parse
    // and verify end to end — per-object hashes and the trailing
    // whole-transfer checksum — proving the streaming-verify pass feeds
    // the same bytes the write path later reads from disk.
    let repo_dir = temp_dir("lazy-repo");
    let repo = big_repo(&repo_dir, "big-lazy");
    let (server, client) = start_server(
        "lazy",
        Config {
            jobs: Some(2),
            cache_bytes: 0,
            ..Config::default()
        },
    );
    client.publish_repo(&repo, "big-lazy").unwrap();

    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(&objects_request("big-lazy")).unwrap();
    let mut r = std::io::BufReader::new(s);
    let head = mh_hub::http::read_response_head(&mut r).unwrap();
    assert_eq!(head.status, 200);
    let mut objects = 0usize;
    let mut payload_bytes = 0u64;
    mh_hub::protocol::read_object_stream(&mut r, |_hash, payload| {
        objects += 1;
        payload_bytes += payload.len() as u64;
        Ok(())
    })
    .expect("lazily-streamed object stream must parse and verify");
    assert!(objects > 0, "stream must carry objects");
    assert!(
        payload_bytes > 8u64 << 20,
        "the oversized blob must be included ({payload_bytes} bytes)"
    );
    assert_eq!(
        server.stats().cache_metrics().bytes.get(),
        0,
        "a disabled cache must hold nothing"
    );
    server.stop();
}

#[test]
fn request_body_budget_rejects_concurrent_large_bodies() {
    let (server, client) = start_server(
        "bodybudget",
        Config {
            jobs: Some(2),
            body_budget_bytes: 64 << 10,
            idle_timeout: Duration::from_secs(10),
            state_deadline: Duration::from_secs(10),
            ..Config::default()
        },
    );
    let declare_64k =
        b"POST /publish/x?phase=commit HTTP/1.1\r\nHost: t\r\nContent-Length: 65536\r\nConnection: close\r\n\r\n";

    // The holder declares a budget-filling body (admitted: nothing else
    // in flight) and then stalls, pinning the reservation in Reading.
    let mut holder = TcpStream::connect(server.local_addr()).unwrap();
    holder.write_all(declare_64k).unwrap();
    std::thread::sleep(Duration::from_millis(500));

    // A second large declared body overruns the aggregate budget: 503 +
    // Retry-After at head-parse, counted in hub_body_rejected_total —
    // and NOT in the accept-time connection-cap counter.
    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    second.write_all(declare_64k).unwrap();
    let mut resp = Vec::new();
    let _ = second.read_to_end(&mut resp);
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with("HTTP/1.1 503 "),
        "over-budget body must get 503: {text}"
    );
    assert!(text.contains("Retry-After: 1"), "{text}");
    assert!(server.stats().body_rejected().get() >= 1);
    assert_eq!(
        server.stats().conn_rejected().get(),
        0,
        "body-budget rejections are not connection-cap rejections"
    );

    // Requests with no body are unaffected while the budget is pinned.
    assert_eq!(client.repositories().unwrap(), Vec::<String>::new());

    // Closing the holder releases its reservation; a retry is admitted
    // past head-parse (it fails later as a malformed commit, not a 503).
    drop(holder);
    let mut admitted = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(100));
        let mut retry = TcpStream::connect(server.local_addr()).unwrap();
        retry
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        retry.write_all(declare_64k).unwrap();
        retry.write_all(&vec![0u8; 65536]).unwrap();
        let mut resp = Vec::new();
        let _ = retry.read_to_end(&mut resp);
        let text = String::from_utf8_lossy(&resp);
        if !text.starts_with("HTTP/1.1 503 ") {
            admitted = true;
            break;
        }
    }
    assert!(admitted, "released budget must admit a retry");
    server.stop();
}

#[test]
fn second_pull_wave_hits_the_object_cache() {
    let repo_dir = temp_dir("cache-repo");
    let repo = big_repo(&repo_dir, "big-cache");
    let (server, client) = start_server("cache", Config::default());
    client.publish_repo(&repo, "big-cache").unwrap();

    let addr: SocketAddr = server.local_addr();
    let fetch = |addr: SocketAddr| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(&objects_request("big-cache")).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    };
    let first = fetch(addr);
    let hits_after_first = server.stats().cache_metrics().hits.get();
    let second = fetch(addr);
    assert_eq!(
        first.len(),
        second.len(),
        "both waves must deliver the identical stream"
    );
    assert!(
        server.stats().cache_metrics().hits.get() > hits_after_first,
        "second pull wave must hit the cache"
    );
    server.stop();
}
