//! End-to-end tests over a real loopback socket: publish → search →
//! pull round-trips bit-identically, repeat pulls are near-zero-byte
//! (asserted via `/stats`), and injected connection drops are recovered
//! by client retry/backoff — or surface as typed errors, never a hang.

#![allow(clippy::unwrap_used)] // test code: panics are failures
use mh_dlv::{committed_manifest, DlvError, HubBackend, Repository};
use mh_dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use mh_hub::{HubError, HubServer, RemoteHub};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-hubnet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sample_repo(dir: &std::path::Path, name: &str, seed: u64) -> Repository {
    let repo = Repository::init(dir).unwrap();
    let net = zoo::lenet_s(3);
    let data = synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 6,
        test_per_class: 3,
        noise: 0.05,
        seed: 11,
        height: 16,
        width: 16,
    });
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: 3,
    };
    let init = Weights::init(&net, seed).unwrap();
    let result = trainer.train(&net, init, &data, 6).unwrap();
    let mut req = mh_dlv::CommitRequest::new(name, net);
    req.snapshots = result.snapshots.clone();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.files.push(("notes.txt".into(), b"remote".to_vec()));
    req.comment = format!("remote model {name}");
    repo.commit(&req).unwrap();
    repo
}

fn start_server(tag: &str) -> (HubServer, RemoteHub) {
    let root = temp_dir(&format!("{tag}-hubroot"));
    let server = HubServer::start(&root, "127.0.0.1:0", Some(2)).unwrap();
    let client = RemoteHub::open(&server.url())
        .unwrap()
        .with_timeout(Duration::from_secs(5))
        .with_retries(4, Duration::from_millis(20));
    (server, client)
}

fn endpoint_bytes_out(client: &RemoteHub, endpoint: &str) -> u64 {
    client
        .stats()
        .unwrap()
        .iter()
        .find(|l| l.endpoint == endpoint)
        .map(|l| l.bytes_out)
        .unwrap_or(0)
}

#[test]
fn publish_search_pull_roundtrip_over_socket() {
    let dir = temp_dir("rt-repo");
    let repo = sample_repo(&dir, "lenet-remote", 21);
    let (server, client) = start_server("rt");

    client.publish_repo(&repo, "team/vision").unwrap();
    assert_eq!(client.repositories().unwrap(), vec!["team/vision"]);
    let hits = client.search("%lenet%").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].repo, "team/vision");
    assert!(client.search("%no-such-model%").unwrap().is_empty());

    let dest = temp_dir("rt-pull").join("clone");
    let pulled = client.pull_repo("team/vision", &dest).unwrap();
    // Bit-identical: same committed-content manifest on both sides.
    assert_eq!(
        committed_manifest(&pulled).unwrap(),
        committed_manifest(&repo).unwrap()
    );
    let w1 = repo.get_weights("lenet-remote", None).unwrap();
    let w2 = pulled.get_weights("lenet-remote", None).unwrap();
    assert_eq!(w1, w2);

    // Unknown names surface as typed errors mapped through the trait.
    let backend: &dyn HubBackend = &client;
    assert!(matches!(
        backend.pull("missing/name", &temp_dir("rt-x").join("y")),
        Err(DlvError::NoSuchVersion(_) | DlvError::Hub(_))
    ));
    server.stop();
}

#[test]
fn second_pull_with_cache_transfers_near_zero_object_bytes() {
    let dir = temp_dir("inc-repo");
    let repo = sample_repo(&dir, "lenet-inc", 22);
    let (server, client) = start_server("inc");
    client.publish_repo(&repo, "inc").unwrap();

    let cache = temp_dir("inc-cache");
    let cached_client = client.clone().with_cache(&cache);

    let before_first = endpoint_bytes_out(&client, "objects");
    let dest1 = temp_dir("inc-pull1").join("c");
    cached_client.pull_repo("inc", &dest1).unwrap();
    let after_first = endpoint_bytes_out(&client, "objects");
    let first_bytes = after_first - before_first;
    assert!(
        first_bytes > 10_000,
        "first pull should move real object bytes, moved {first_bytes}"
    );

    // Second pull of unchanged content: every object is already in the
    // cache, so the object channel moves (near) nothing.
    let dest2 = temp_dir("inc-pull2").join("c");
    let pulled = cached_client.pull_repo("inc", &dest2).unwrap();
    let after_second = endpoint_bytes_out(&client, "objects");
    let second_bytes = after_second - after_first;
    assert!(
        second_bytes < 256,
        "repeat pull should be near-zero object bytes, moved {second_bytes}"
    );
    assert_eq!(
        committed_manifest(&pulled).unwrap(),
        committed_manifest(&repo).unwrap()
    );

    // Incremental republish of unchanged content uploads no objects
    // either: negotiation answers an empty want set.
    let publish_in_before = client
        .stats()
        .unwrap()
        .iter()
        .find(|l| l.endpoint == "publish")
        .map(|l| l.bytes_in)
        .unwrap_or(0);
    client.publish_repo(&repo, "inc").unwrap();
    let publish_in_after = client
        .stats()
        .unwrap()
        .iter()
        .find(|l| l.endpoint == "publish")
        .map(|l| l.bytes_in)
        .unwrap_or(0);
    let manifest_overhead = (committed_manifest(&repo).unwrap().len() as u64 + 2) * 200;
    assert!(
        publish_in_after - publish_in_before < 2 * manifest_overhead + 256,
        "republish uploaded object bytes: {}",
        publish_in_after - publish_in_before
    );
    server.stop();
}

#[test]
fn injected_connection_drops_are_recovered_by_retry() {
    let dir = temp_dir("fault-repo");
    let repo = sample_repo(&dir, "lenet-fault", 23);
    let (server, client) = start_server("fault");
    client.publish_repo(&repo, "faulty").unwrap();

    // Drop the first two /objects responses mid-object: the pull must
    // retry, resume from what already arrived, and still verify.
    server
        .faults()
        .drop_object_responses
        .store(2, Ordering::SeqCst);
    let dest = temp_dir("fault-pull").join("c");
    let started = mh_par::sync::now();
    let pulled = client.pull_repo("faulty", &dest).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "faulted pull took too long"
    );
    assert_eq!(
        committed_manifest(&pulled).unwrap(),
        committed_manifest(&repo).unwrap()
    );
    assert_eq!(
        server.faults().drop_object_responses.load(Ordering::SeqCst),
        0,
        "both faults were consumed"
    );

    // Errors were recorded against the objects endpoint.
    let errors = client
        .stats()
        .unwrap()
        .iter()
        .find(|l| l.endpoint == "objects")
        .map(|l| l.errors)
        .unwrap_or(0);
    assert!(
        errors >= 2,
        "expected >=2 recorded object errors, got {errors}"
    );
    server.stop();
}

#[test]
fn exhausted_retries_surface_a_typed_error_not_a_hang() {
    let dir = temp_dir("dead-repo");
    let repo = sample_repo(&dir, "lenet-dead", 24);
    let (server, client) = start_server("dead");
    client.publish_repo(&repo, "doomed").unwrap();

    // More injected faults than the client has retries (and no object
    // ever completes, so progress never resets the budget: every drop
    // truncates the same first object).
    let impatient = client.clone().with_retries(2, Duration::from_millis(5));
    server
        .faults()
        .drop_object_responses
        .store(1000, Ordering::SeqCst);
    let started = mh_par::sync::now();
    let err = impatient
        .pull_repo("doomed", &temp_dir("dead-pull").join("c"))
        .unwrap_err();
    assert!(
        matches!(err, HubError::RetriesExhausted { .. }),
        "unexpected error: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "exhaustion took {:?}",
        started.elapsed()
    );
    server
        .faults()
        .drop_object_responses
        .store(0, Ordering::SeqCst);
    server.stop();
}

#[test]
fn unresponsive_server_times_out() {
    // A listener that accepts but never answers: requests must time out,
    // then retries must exhaust — bounded wall-clock, typed error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = mh_par::sync::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = listener.accept() {
            held.push(s); // keep sockets open, say nothing
            if held.len() >= 8 {
                break;
            }
        }
    });
    let client = RemoteHub::open(&format!("http://{addr}"))
        .unwrap()
        .with_timeout(Duration::from_millis(300))
        .with_retries(2, Duration::from_millis(5));
    let started = mh_par::sync::now();
    let err = client.repositories().unwrap_err();
    assert!(
        matches!(err, HubError::RetriesExhausted { .. }),
        "unexpected error: {err}"
    );
    assert!(started.elapsed() < Duration::from_secs(10));
    drop(handle); // listener thread exits when the test process does
}

#[test]
fn raw_traversal_requests_are_rejected_with_4xx() {
    use std::io::{Read, Write};
    let (server, client) = start_server("raw");
    // Raw request, bypassing client-side validation entirely.
    for (method, target) in [
        ("GET", "/manifest/../escape"),
        ("GET", "/manifest/.hidden"),
        ("POST", "/publish/..%2Fx?phase=negotiate"),
        ("POST", "/objects/a//b"),
    ] {
        let mut s = std::net::TcpStream::connect(server.local_addr()).unwrap();
        write!(
            s,
            "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let status: u16 = resp
            .split(' ')
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        assert!(
            (400..500).contains(&status),
            "target {target} answered {status}: {resp}"
        );
    }
    // And a malformed request line gets a 400, not a dropped worker.
    let mut s = std::net::TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(b"complete garbage\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "got: {resp}");
    // The server still works afterwards.
    assert!(client.repositories().unwrap().is_empty());
    server.stop();
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let dir = temp_dir("prom-repo");
    let repo = sample_repo(&dir, "lenet-prom", 33);
    let (server, client) = start_server("prom");
    client.publish_repo(&repo, "prom").unwrap();

    let pull_dir = temp_dir("prom-pull");
    client.pull("prom", &pull_dir.join("prom")).unwrap();

    let text = client.metrics_text().unwrap();
    // Hub request series, labeled per endpoint, with real traffic counted.
    assert!(text.contains("# TYPE hub_requests_total counter"), "{text}");
    assert!(text.contains("# TYPE hub_bytes_out_total counter"));
    assert!(text.contains("# TYPE hub_errors_total counter"));
    let requests = |ep: &str| -> u64 {
        let needle = format!("hub_requests_total{{endpoint=\"{ep}\"}} ");
        text.lines()
            .find_map(|l| l.strip_prefix(&needle))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    assert!(requests("publish") >= 2, "negotiate + commit");
    assert!(requests("objects") >= 1, "pull fetched objects");
    assert_eq!(requests("other"), 0);
    let objects_bytes: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("hub_bytes_out_total{endpoint=\"objects\"} "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert!(objects_bytes > 0, "pull transferred object bytes");

    // Process-global series (PAS / compression / pool) are pre-registered
    // at server start, so a scrape exposes them even before first use.
    for series in [
        "compress_calls_total",
        "compress_bytes_in_total",
        "pas_repair_rounds_total",
        "par_tasks_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {series} counter")),
            "missing {series} in exposition"
        );
    }
    assert!(text.contains("# TYPE pas_progressive_planes_used histogram"));
    assert!(text.contains("# TYPE par_task_wait_us histogram"));

    // /metrics traffic is itself accounted, from actual bytes written.
    let stats = client.stats().unwrap();
    let metrics_line = stats.iter().find(|l| l.endpoint == "metrics").unwrap();
    assert_eq!(metrics_line.requests, 1);
    assert_eq!(metrics_line.bytes_out, text.len() as u64);
    assert_eq!(metrics_line.errors, 0);

    // Server-side latency quantiles ride along on both surfaces.
    assert!(
        text.contains("# TYPE hub_request_duration_ms histogram"),
        "{text}"
    );
    assert!(
        text.contains("hub_request_duration_ms_bucket{endpoint=\"publish\",le=\"+Inf\"}"),
        "{text}"
    );
    let publish_line = stats.iter().find(|l| l.endpoint == "publish").unwrap();
    assert!(publish_line.p99_ms >= publish_line.p50_ms);
    assert!(
        publish_line.p99_ms > 0.0,
        "real publishes took nonzero time"
    );
    server.stop();
}

#[test]
fn flight_recorder_captures_requests_with_tracing_off() {
    // No MH_TRACE / enable_stderr anywhere: spans are inert for JSONL
    // output, yet the server's always-on flight recorder still holds
    // the most recent request history for post-hoc debugging.
    assert!(!mh_obs::enabled(), "test requires tracing off");
    let dir = temp_dir("fr-repo");
    let repo = sample_repo(&dir, "lenet-fr", 44);
    let (server, client) = start_server("fr");
    client.publish_repo(&repo, "fr").unwrap();
    client.pull("fr", &temp_dir("fr-pull").join("fr")).unwrap();

    let dump = client.flightrec_text().unwrap();
    assert!(
        dump.lines().any(|l| l.contains("\"name\":\"hub.request\"")),
        "flight recorder should hold recent request spans, got:\n{dump}"
    );
    // Every line is a JSON object; the dump is machine-parseable.
    for line in dump.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    // A failing request leaves a warn event in the recorder that names
    // the endpoint, so the error context survives in the server log.
    let backend: &dyn HubBackend = &client;
    assert!(backend
        .pull("no/such-repo", &temp_dir("fr-miss").join("x"))
        .is_err());
    let dump = client.flightrec_text().unwrap();
    assert!(
        dump.lines()
            .any(|l| l.contains("request error") && l.contains("manifest")),
        "expected a request-error log event, got:\n{dump}"
    );
    server.stop();
}
