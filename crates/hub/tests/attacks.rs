//! Raw-socket regression tests against a live `hubd`: hand-crafted
//! hostile requests (oversized length prefixes, truncated manifests,
//! huge count/length headers) must come back as clean 4xx protocol
//! errors with `hub_errors_total` incremented — never a dead worker.
//! After every attack the same server must answer a well-formed request.

#![allow(clippy::unwrap_used)] // test code: panics are failures
use mh_hub::protocol::{MAX_LINE_BYTES, MAX_MANIFEST_ENTRIES, MAX_OBJECT_BYTES};
use mh_hub::{HubServer, RemoteHub};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-hubattack-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start_server(tag: &str) -> (HubServer, RemoteHub) {
    let root = temp_dir(&format!("{tag}-hubroot"));
    let server = HubServer::start(&root, "127.0.0.1:0", Some(2)).unwrap();
    let client = RemoteHub::open(&server.url())
        .unwrap()
        .with_timeout(Duration::from_secs(5))
        .with_retries(2, Duration::from_millis(20));
    (server, client)
}

/// Total errors across all endpoints, as the client sees them via
/// `/stats` (the same counters `/metrics` exports as `hub_errors_total`).
fn errors_total(client: &RemoteHub) -> u64 {
    client.stats().unwrap().iter().map(|l| l.errors).sum()
}

/// Send raw bytes, half-close the write side, and read the complete
/// response. Returns the parsed status code and the full response text.
fn raw(addr: SocketAddr, payload: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload).unwrap();
    s.flush().unwrap();
    let _ = s.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf).to_string();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    (status, text)
}

fn post(target: &str, body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

/// The worker that just absorbed an attack must still answer a
/// well-formed request on a fresh connection.
fn assert_alive(client: &RemoteHub) {
    assert_eq!(
        client.repositories().unwrap(),
        Vec::<String>::new(),
        "server must keep answering well-formed requests after an attack"
    );
}

#[test]
fn oversized_object_length_prefix_is_422_not_worker_death() {
    let (server, client) = start_server("objlen");
    let before = errors_total(&client);

    // Commit body: empty manifest, then an object header whose length
    // prefix is one byte past the cap. The server must reject it at the
    // header, before reserving any payload memory.
    let body = format!("0\nobj {} {}\n", "a".repeat(64), MAX_OBJECT_BYTES + 1);
    let (status, text) = raw(
        server.local_addr(),
        &post("/publish/x?phase=commit", body.as_bytes()),
    );
    assert_eq!(status, 422, "oversized length prefix must be 422: {text}");
    assert!(text.contains("code=too-large"), "{text}");

    assert_alive(&client);
    assert!(errors_total(&client) > before, "hub_errors_total must grow");
    server.stop();
}

#[test]
fn manifest_declaring_oversized_object_is_422() {
    let (server, client) = start_server("decl");
    let before = errors_total(&client);

    // A single well-formed manifest line declaring an over-cap size: a
    // handful of header bytes must not reserve gigabytes server-side.
    let body = format!("{} {} weights.bin\n", "b".repeat(64), MAX_OBJECT_BYTES + 1);
    let (status, text) = raw(
        server.local_addr(),
        &post("/publish/x?phase=negotiate", body.as_bytes()),
    );
    assert_eq!(status, 422, "oversized declared size must be 422: {text}");
    assert!(text.contains("code=too-large"), "{text}");

    assert_alive(&client);
    assert!(errors_total(&client) > before);
    server.stop();
}

#[test]
fn huge_manifest_entry_count_is_422() {
    let (server, client) = start_server("count");
    let before = errors_total(&client);

    // One entry past the manifest cap; the reject must fire before the
    // entry vector materializes the excess.
    let line = format!("{} 1 p\n", "c".repeat(64));
    let body = line.repeat(MAX_MANIFEST_ENTRIES + 1);
    let (status, text) = raw(
        server.local_addr(),
        &post("/publish/x?phase=negotiate", body.as_bytes()),
    );
    assert_eq!(status, 422, "over-count manifest must be 422: {text}");
    assert!(text.contains("code=too-large"), "{text}");

    assert_alive(&client);
    assert!(errors_total(&client) > before);
    server.stop();
}

#[test]
fn truncated_manifest_is_400() {
    let (server, client) = start_server("trunc");
    let before = errors_total(&client);

    // Commit whose manifest length prefix promises far more bytes than
    // the body carries.
    let (status, text) = raw(
        server.local_addr(),
        &post("/publish/x?phase=commit", b"9999\nshort"),
    );
    assert_eq!(status, 400, "truncated manifest must be 400: {text}");
    assert!(text.contains("code=bad-request"), "{text}");

    // And a structurally broken manifest row inside a valid length frame.
    let garbage = b"7\nnot-ok\n";
    let (status2, text2) = raw(
        server.local_addr(),
        &post("/publish/x?phase=commit", garbage),
    );
    assert_eq!(status2, 400, "garbage manifest row must be 400: {text2}");

    assert_alive(&client);
    assert!(errors_total(&client) >= before + 2);
    server.stop();
}

#[test]
fn huge_content_length_header_is_400() {
    let (server, client) = start_server("clen");
    let before = errors_total(&client);

    // Declared body over MAX_BODY_BYTES: rejected from the header alone,
    // with no body bytes sent at all.
    let head = format!(
        "POST /publish/x?phase=commit HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        (1u64 << 40)
    );
    let (status, text) = raw(server.local_addr(), head.as_bytes());
    assert_eq!(status, 400, "huge content-length must be 400: {text}");
    assert!(text.contains("code=bad-request"), "{text}");

    assert_alive(&client);
    assert!(errors_total(&client) > before);
    server.stop();
}

#[test]
fn unterminated_oversized_request_line_is_400() {
    let (server, client) = start_server("line");
    let before = errors_total(&client);

    // A request line past MAX_LINE_BYTES with no newline: the line buffer
    // must stop growing at the cap instead of following the peer.
    let payload = vec![b'A'; MAX_LINE_BYTES + 128];
    let (status, text) = raw(server.local_addr(), &payload);
    assert_eq!(status, 400, "oversized request line must be 400: {text}");
    assert!(text.contains("code=bad-request"), "{text}");

    assert_alive(&client);
    assert!(errors_total(&client) > before);
    server.stop();
}
