fn main() {
    // `reactor_epoll` marks targets where the raw inline-asm epoll
    // syscalls in src/reactor.rs are valid ABI; everything else uses
    // the portable fallback poller.
    println!("cargo:rustc-check-cfg=cfg(reactor_epoll)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if os == "linux" && (arch == "x86_64" || arch == "aarch64") {
        println!("cargo:rustc-cfg=reactor_epoll");
    }
}
