//! Integration tests: build a real repository (commit + archive), inject
//! one corruption per test, and assert `fsck` reports exactly the
//! expected finding code. A freshly built repository must be fully clean.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_check::{fsck, FsckConfig, FsckReport, Severity};
use mh_dlv::{ArchiveConfig, CommitRequest, Repository};
use mh_dnn::{zoo, Weights};
use mh_store::{Catalog, Predicate, Value};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-check-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Shift every weight by a small constant — successive snapshots stay
/// close together, so archival produces genuine delta chains.
fn perturbed(base: &mh_dnn::Weights, eps: f32) -> mh_dnn::Weights {
    let mut w = base.clone();
    for name in w.layer_names() {
        for v in w.get_mut(&name).unwrap().as_mut_slice() {
            *v += eps;
        }
    }
    w
}

/// Build a repository with two archived versions (with lineage and an
/// associated file) and one still-staged version.
fn build_repo(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let repo = Repository::init(&dir).unwrap();
    let net = zoo::lenet_s(3);
    let w0 = Weights::init(&net, 1).unwrap();

    let mut req = CommitRequest::new("a", net.clone());
    req.snapshots = vec![(0, w0.clone()), (5, perturbed(&w0, 1e-3))];
    req.files
        .push(("train.cfg".into(), b"base_lr=0.05\n".to_vec()));
    req.comment = "base".into();
    repo.commit(&req).unwrap();

    let mut req = CommitRequest::new("b", net.clone());
    req.snapshots = vec![(0, perturbed(&w0, 2e-3))];
    req.parent = Some("a:1".into());
    req.comment = "derived".into();
    repo.commit(&req).unwrap();

    repo.archive(&ArchiveConfig::default()).unwrap();

    // A third, still-staged version.
    let mut req = CommitRequest::new("c", net.clone());
    req.snapshots = vec![(0, perturbed(&w0, 3e-3))];
    req.parent = Some("b:1".into());
    req.comment = "staged".into();
    repo.commit(&req).unwrap();
    dir
}

fn run(dir: &Path) -> FsckReport {
    fsck(dir, &FsckConfig::default()).unwrap()
}

fn codes(report: &FsckReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.code).collect()
}

/// Mutate the catalog through the same mh-store API the repository uses.
fn with_catalog(
    dir: &Path,
    f: impl FnOnce(&mut mh_store::Database) -> Result<(), mh_store::StoreError>,
) {
    let catalog = Catalog::open(&dir.join("catalog.mhs")).unwrap();
    catalog.write(f).unwrap();
}

/// The store directory created by `archive` (exactly one in `build_repo`).
fn store_dir(dir: &Path) -> PathBuf {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(dir.join("pas"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    stores.sort();
    assert_eq!(stores.len(), 1, "build_repo makes one store");
    stores.remove(0)
}

#[test]
fn clean_repo_has_zero_findings() {
    let dir = build_repo("clean");
    let report = run(&dir);
    assert!(
        report.is_clean(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert_eq!(report.versions_checked, 3);
    assert_eq!(report.stores_checked, 1);

    // Deep mode is also clean and reports per-snapshot bounds.
    let deep = fsck(&dir, &FsckConfig { deep: true }).unwrap();
    assert!(deep.is_clean(), "deep findings: {:?}", deep.findings);
    assert!(!deep.bounds.is_empty(), "deep mode reports snapshot bounds");
    assert!(deep.bounds.iter().any(|b| b.snapshot == "a:1/s0"));
    for b in &deep.bounds {
        assert!(b.worst_width >= 0.0 && b.layers > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---- catalog corruption ----------------------------------------------

#[test]
fn deleted_version_row_dangles_children_and_lineage() {
    let dir = build_repo("delrow");
    with_catalog(&dir, |db| {
        let rows = db
            .table("model_version")?
            .select(&Predicate::Eq("name".into(), Value::Text("a".into())));
        db.table_mut("model_version")?.delete(rows[0].id);
        Ok(())
    });
    let report = run(&dir);
    let codes = codes(&report);
    assert!(
        codes.contains(&mh_check::C_DANGLING_VERSION_REF),
        "{:?}",
        report.findings
    );
    assert!(
        codes.contains(&mh_check::C_DANGLING_LINEAGE),
        "{:?}",
        report.findings
    );
    assert!(report.errors() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewired_lineage_edge_makes_a_cycle() {
    let dir = build_repo("lincycle");
    with_catalog(&dir, |db| {
        // b derives from a and c from b already; adding a:1 ← c:1 closes
        // the loop a → b → c → a.
        db.table_mut("parent")?.insert(vec![
            Value::Text("c:1".into()),
            Value::Text("a:1".into()),
            Value::Text("rewired".into()),
        ])?;
        Ok(())
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::C_LINEAGE_CYCLE),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lineage_edge_to_missing_version() {
    let dir = build_repo("linmiss");
    with_catalog(&dir, |db| {
        let row = db.table("parent")?.scan().next().unwrap();
        db.table_mut("parent")?
            .update(row.id, "base", Value::Text("ghost:7".into()))?;
        Ok(())
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::C_DANGLING_LINEAGE),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_to_missing_node_and_bad_layer_def() {
    let dir = build_repo("badnet");
    with_catalog(&dir, |db| {
        let edge = db.table("edge")?.scan().next().unwrap();
        db.table_mut("edge")?
            .update(edge.id, "to_id", Value::Int(9999))?;
        let node = db.table("node")?.scan().next().unwrap();
        db.table_mut("node")?
            .update(node.id, "def", Value::Text("quantum(42)".into()))?;
        Ok(())
    });
    let report = run(&dir);
    let codes = codes(&report);
    assert!(
        codes.contains(&mh_check::C_BAD_EDGE_ENDPOINT),
        "{:?}",
        report.findings
    );
    assert!(
        codes.contains(&mh_check::C_BAD_LAYER_DEF),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_snapshot_location_scheme() {
    let dir = build_repo("badloc");
    with_catalog(&dir, |db| {
        let row = db.table("snapshot")?.scan().next().unwrap();
        db.table_mut("snapshot")?
            .update(row.id, "location", Value::Text("ftp://nope".into()))?;
        Ok(())
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::C_BAD_SNAPSHOT_LOCATION),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---- blob corruption --------------------------------------------------

#[test]
fn truncated_staged_blob() {
    let dir = build_repo("truncblob");
    let blob = dir.join("weights").join("c_1_s0.mhw");
    let bytes = std::fs::read(&blob).unwrap();
    std::fs::write(&blob, &bytes[..bytes.len() / 2]).unwrap();
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::B_CORRUPT_BLOB),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_staged_blob_and_orphan() {
    let dir = build_repo("missblob");
    let blob = dir.join("weights").join("c_1_s0.mhw");
    std::fs::rename(&blob, dir.join("weights").join("stray.mhw")).unwrap();
    let report = run(&dir);
    let codes = codes(&report);
    assert!(
        codes.contains(&mh_check::B_MISSING_BLOB),
        "{:?}",
        report.findings
    );
    assert!(
        codes.contains(&mh_check::B_ORPHAN_BLOB),
        "{:?}",
        report.findings
    );
    // The orphan alone is a warning, the missing blob an error.
    assert!(report.errors() >= 1 && report.warnings() >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_object_hash_mismatch() {
    let dir = build_repo("tamperobj");
    let obj = std::fs::read_dir(dir.join("objects"))
        .unwrap()
        .flatten()
        .next()
        .unwrap()
        .path();
    let mut bytes = std::fs::read(&obj).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&obj, &bytes).unwrap();
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::B_HASH_MISMATCH),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deleted_object_is_missing() {
    let dir = build_repo("missobj");
    let obj = std::fs::read_dir(dir.join("objects"))
        .unwrap()
        .flatten()
        .next()
        .unwrap()
        .path();
    std::fs::remove_file(&obj).unwrap();
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::B_MISSING_OBJECT),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dangling_pas_vertex_row() {
    let dir = build_repo("dangvert");
    with_catalog(&dir, |db| {
        let row = db.table("pas_vertex")?.scan().next().unwrap();
        db.table_mut("pas_vertex")?
            .update(row.id, "vertex", Value::Int(424242))?;
        Ok(())
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::B_DANGLING_PAS_VERTEX),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---- PAS store corruption ---------------------------------------------

/// Rewrite the manifest through a line-level editor.
fn edit_manifest(store: &Path, f: impl Fn(usize, &str) -> String) {
    let path = store.join("manifest.mhp");
    let text = std::fs::read_to_string(&path).unwrap();
    let out: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, line)| f(i, line))
        .collect();
    std::fs::write(&path, out.join("\n") + "\n").unwrap();
}

/// 0-based manifest line index of the first delta (non-mat) row.
fn first_delta_line(store: &Path) -> usize {
    let text = std::fs::read_to_string(store.join("manifest.mhp")).unwrap();
    text.lines()
        .position(|l| {
            let f: Vec<&str> = l.split('\t').collect();
            f.len() == 10 && f[1] != "mat"
        })
        .expect("archive produces delta chains")
}

#[test]
fn broken_plan_parent_edge_dangles() {
    let dir = build_repo("dangpar");
    let store = store_dir(&dir);
    let target = first_delta_line(&store);
    edit_manifest(&store, |i, line| {
        if i == target {
            let mut f: Vec<&str> = line.split('\t').collect();
            f[2] = "424242";
            f.join("\t")
        } else {
            line.to_string()
        }
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::P_DANGLING_PARENT),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_parent_cycle_detected_without_hanging() {
    let dir = build_repo("plancycle");
    let store = store_dir(&dir);
    let target = first_delta_line(&store);
    // Point the delta at itself: a one-vertex cycle, unreachable from ν₀.
    edit_manifest(&store, |i, line| {
        if i == target {
            let mut f: Vec<&str> = line.split('\t').collect();
            let own = f[0].to_string();
            f[2] = &own;
            return f.join("\t");
        }
        line.to_string()
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::P_CHAIN_CYCLE),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_manifest_header_and_rows() {
    let dir = build_repo("badmanifest");
    let store = store_dir(&dir);
    let path = store.join("manifest.mhp");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen("MHPAS1", "MHPASX", 1)).unwrap();
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::P_BAD_MANIFEST),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn materialized_mid_chain_and_rootless_delta() {
    let dir = build_repo("badkinds");
    let store = store_dir(&dir);
    let target = first_delta_line(&store);
    // Turn the first delta's parent to 0: a rootless delta chain.
    edit_manifest(&store, |i, line| {
        if i == target {
            let mut f: Vec<&str> = line.split('\t').collect();
            f[2] = "0";
            return f.join("\t");
        }
        line.to_string()
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::P_ROOT_NOT_MATERIALIZED),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_and_truncated_plane_files() {
    let dir = build_repo("planes");
    let store = store_dir(&dir);
    let mut planes: Vec<PathBuf> = std::fs::read_dir(&store)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mhz"))
        .collect();
    planes.sort();
    // Pick two non-empty planes: delete one, truncate another.
    let fat: Vec<&PathBuf> = planes
        .iter()
        .filter(|p| std::fs::metadata(p).unwrap().len() > 2)
        .collect();
    assert!(fat.len() >= 2);
    std::fs::remove_file(fat[0]).unwrap();
    let bytes = std::fs::read(fat[1]).unwrap();
    std::fs::write(fat[1], &bytes[..bytes.len() - 1]).unwrap();
    let report = run(&dir);
    let codes = codes(&report);
    assert!(
        codes.contains(&mh_check::P_MISSING_PLANE),
        "{:?}",
        report.findings
    );
    assert!(
        codes.contains(&mh_check::P_PLANE_SIZE_MISMATCH),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_manifest_vertex_row() {
    let dir = build_repo("dupvert");
    let store = store_dir(&dir);
    let path = store.join("manifest.mhp");
    let text = std::fs::read_to_string(&path).unwrap();
    let dup = text.lines().nth(1).unwrap().to_string();
    std::fs::write(&path, format!("{text}{dup}\n")).unwrap();
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::P_DUPLICATE_VERTEX),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_file_in_store_is_an_orphan_warning() {
    let dir = build_repo("strayplane");
    let store = store_dir(&dir);
    std::fs::write(store.join("notes.txt"), b"scratch").unwrap();
    let report = run(&dir);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == mh_check::P_ORPHAN_PLANE)
        .unwrap_or_else(|| panic!("{:?}", report.findings));
    assert_eq!(f.severity, Severity::Warning);
    std::fs::remove_dir_all(&dir).ok();
}

// ---- error-bound / budget corruption ----------------------------------

#[test]
fn tampered_budget_is_flagged() {
    let dir = build_repo("budget");
    with_catalog(&dir, |db| {
        let row = db.table("pas_budget")?.scan().next().unwrap();
        let cost = row.values[4].as_real().unwrap();
        db.table_mut("pas_budget")?
            .update(row.id, "budget", Value::Real(cost / 2.0))?;
        Ok(())
    });
    let report = run(&dir);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == mh_check::E_BUDGET_EXCEEDED)
        .unwrap_or_else(|| panic!("{:?}", report.findings));
    assert_eq!(f.severity, Severity::Error);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_row_for_unknown_store() {
    let dir = build_repo("budgetstore");
    with_catalog(&dir, |db| {
        let row = db.table("pas_budget")?.scan().next().unwrap();
        db.table_mut("pas_budget")?
            .update(row.id, "store", Value::Text("store9999".into()))?;
        Ok(())
    });
    let report = run(&dir);
    assert!(
        codes(&report).contains(&mh_check::E_BUDGET_STORE_MISSING),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_budget_table_is_a_warning_for_archived_repos() {
    let dir = build_repo("nobudget");
    with_catalog(&dir, |db| {
        db.drop_table("pas_budget");
        Ok(())
    });
    let report = run(&dir);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == mh_check::E_MISSING_BUDGET_TABLE)
        .unwrap_or_else(|| panic!("{:?}", report.findings));
    assert_eq!(f.severity, Severity::Warning);
    // Pre-upgrade repos must not be flagged as damaged.
    assert_eq!(report.errors(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deep_check_flags_undecodable_plane_data() {
    let dir = build_repo("deepbound");
    let store = store_dir(&dir);
    // Overwrite a plane-0 stream with same-length garbage and keep the
    // manifest size intact: structure checks pass, but deriving interval
    // bounds from the prefix must fail in deep mode.
    let plane = std::fs::read_dir(&store)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with("_p0.mhz"))
        .find(|p| std::fs::metadata(p).unwrap().len() > 8)
        .expect("a non-trivial plane-0 file");
    let len = std::fs::metadata(&plane).unwrap().len() as usize;
    std::fs::write(&plane, vec![0xAB; len]).unwrap();

    let shallow = run(&dir);
    assert!(
        shallow.is_clean(),
        "structure still intact: {:?}",
        shallow.findings
    );
    let deep = fsck(&dir, &FsckConfig { deep: true }).unwrap();
    assert!(
        deep.findings
            .iter()
            .any(|f| f.code == mh_check::E_BOUND_VIOLATION),
        "{:?}",
        deep.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}
