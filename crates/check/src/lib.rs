//! # mh-check
//!
//! `fsck` for ModelHub repositories: static integrity verification of the
//! on-disk state a DLV repository accumulates over its lifecycle — the
//! relational catalog, the staged/content-addressed blob store, and the
//! PAS archival segment stores — WITHOUT retraining models or fully
//! decompressing archived parameters.
//!
//! Three layers of checks:
//!
//! 1. **Catalog integrity** ([`catalog`]): referential checks across the
//!    `mh-store` tables (dangling version references, lineage edges to
//!    missing versions, lineage-DAG acyclicity, duplicate version keys,
//!    network edges to missing nodes, undecodable layer definitions).
//! 2. **Blob integrity** ([`blobs`]): staged weight blobs parse, associated
//!    files in `objects/` exist with matching sha256 and size, orphaned
//!    blobs are reported, archived snapshot locations resolve.
//! 3. **PAS plan verification** ([`pasck`]): every archived segment store's
//!    manifest parses, plane files exist with the recorded compressed
//!    sizes, the implied storage plan satisfies the paper's invariants
//!    (exactly one parent edge per matrix vertex, all vertices reachable
//!    from the materialized root ν₀, no delta-chain cycles), and recorded
//!    per-snapshot recreation costs stay within their declared α-budgets.
//!    With [`FsckConfig::deep`], byte-plane prefixes are additionally used
//!    to compute per-snapshot worst-case error bounds via the existing
//!    interval arithmetic, and full recreation is checked to land inside
//!    them.
//!
//! Every problem is a [`Finding`] with a stable code (`C0xx` catalog,
//! `B0xx` blobs, `P0xx` PAS structure, `E0xx` error bounds/budgets); a
//! clean repository yields zero findings.

use std::path::Path;

pub mod blobs;
pub mod catalog;
pub mod pasck;

/// How bad a finding is. `Error` means the repository is damaged;
/// `Warning` flags suspicious-but-tolerable state (orphans, missing
/// optional tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// One integrity finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub severity: Severity,
    /// Stable machine-readable code (see the module docs).
    pub code: &'static str,
    /// Where the problem is (`catalog.mhs:node#12`, `pas/store0000/...`).
    pub location: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

// Catalog layer.
/// Required catalog table is missing.
pub const C_MISSING_TABLE: &str = "C001";
/// Row references a model-version id with no `model_version` row.
pub const C_DANGLING_VERSION_REF: &str = "C002";
/// Lineage edge endpoint names no existing version.
pub const C_DANGLING_LINEAGE: &str = "C003";
/// Lineage graph has a cycle.
pub const C_LINEAGE_CYCLE: &str = "C004";
/// Two `model_version` rows share (name, vid).
pub const C_DUPLICATE_VERSION: &str = "C005";
/// Network edge references a node id with no `node` row.
pub const C_BAD_EDGE_ENDPOINT: &str = "C006";
/// Layer definition fails to decode.
pub const C_BAD_LAYER_DEF: &str = "C007";
/// Snapshot location is neither `staged:` nor `pas:`.
pub const C_BAD_SNAPSHOT_LOCATION: &str = "C008";

// Blob layer.
/// Staged snapshot blob file is missing.
pub const B_MISSING_BLOB: &str = "B020";
/// Staged blob exists but does not parse as a weights file.
pub const B_CORRUPT_BLOB: &str = "B021";
/// Content-addressed object for a `file` row is missing.
pub const B_MISSING_OBJECT: &str = "B022";
/// Object content hashes to something other than its recorded digest.
pub const B_HASH_MISMATCH: &str = "B023";
/// Object size differs from the recorded byte count.
pub const B_SIZE_MISMATCH: &str = "B024";
/// Blob/object on disk referenced by no catalog row.
pub const B_ORPHAN_BLOB: &str = "B025";
/// `pas:` snapshot location or `pas_vertex` row names a store that
/// does not exist on disk.
pub const B_MISSING_STORE: &str = "B026";
/// `pas_vertex` row points at a vertex absent from the store manifest.
pub const B_DANGLING_PAS_VERTEX: &str = "B027";

// PAS structure layer.
/// Manifest fails to parse (header, row shape, numbers, object kind).
pub const P_BAD_MANIFEST: &str = "P030";
/// Byte-plane file is missing.
pub const P_MISSING_PLANE: &str = "P031";
/// Byte-plane file size differs from the manifest's compressed size.
pub const P_PLANE_SIZE_MISMATCH: &str = "P032";
/// Delta chain contains a cycle (vertex unreachable from ν₀).
pub const P_CHAIN_CYCLE: &str = "P033";
/// Parent edge points at a vertex not in the manifest.
pub const P_DANGLING_PARENT: &str = "P034";
/// Chain root is not materialized.
pub const P_ROOT_NOT_MATERIALIZED: &str = "P035";
/// Materialized object has a parent edge (mid-chain materialization).
pub const P_MATERIALIZED_MID_CHAIN: &str = "P036";
/// Plane file on disk matching no manifest entry.
pub const P_ORPHAN_PLANE: &str = "P037";
/// Same vertex appears in more than one manifest row (violates the
/// one-parent-edge-per-matrix-vertex plan invariant).
pub const P_DUPLICATE_VERTEX: &str = "P038";

// Error-bound / budget layer.
/// Recorded recreation cost exceeds the declared α-budget.
pub const E_BUDGET_EXCEEDED: &str = "E040";
/// Repository has archived stores but no `pas_budget` table.
pub const E_MISSING_BUDGET_TABLE: &str = "E041";
/// Budget row references a store that does not exist.
pub const E_BUDGET_STORE_MISSING: &str = "E042";
/// Archived store has no recorded budget rows.
pub const E_NO_BUDGET_ROWS: &str = "E043";
/// Deep check: interval bounds are inverted, or full recreation falls
/// outside the prefix-derived bounds.
pub const E_BOUND_VIOLATION: &str = "E044";

/// Per-snapshot worst-case error bound derived from byte-plane prefixes
/// (deep mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotBound {
    pub store: String,
    /// Snapshot name as archived: `name:id/sN`.
    pub snapshot: String,
    /// Layers (vertices) contributing to the bound.
    pub layers: usize,
    /// Byte planes used (of 4).
    pub planes: usize,
    /// Worst per-weight interval width `max(hi - lo)` across all layers.
    pub worst_width: f32,
}

/// What `fsck` should do.
#[derive(Debug, Clone, Default)]
pub struct FsckConfig {
    /// Also open segment stores and verify values: prefix-derived interval
    /// bounds are well-formed, full recreation lands inside them, and
    /// per-snapshot worst-case bounds are reported.
    pub deep: bool,
}

/// The outcome of an `fsck` run.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub findings: Vec<Finding>,
    /// Per-snapshot worst-case bounds (populated in deep mode).
    pub bounds: Vec<SnapshotBound>,
    pub versions_checked: usize,
    pub stores_checked: usize,
    pub blobs_checked: usize,
}

impl FsckReport {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// No findings at all — the repository is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub(crate) fn error(
        &mut self,
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.findings.push(Finding {
            severity: Severity::Error,
            code,
            location: location.into(),
            message: message.into(),
        });
    }

    pub(crate) fn warn(
        &mut self,
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.findings.push(Finding {
            severity: Severity::Warning,
            code,
            location: location.into(),
            message: message.into(),
        });
    }
}

/// Errors that stop `fsck` from running at all (an unreadable catalog is
/// reported as a `CheckError`, not a finding).
#[derive(Debug)]
pub enum CheckError {
    /// The path is not a ModelHub repository (no `catalog.mhs`).
    NotARepository(String),
    Io(std::io::Error),
    Store(mh_store::StoreError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotARepository(p) => write!(f, "not a ModelHub repository: {p}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Store(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<std::io::Error> for CheckError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<mh_store::StoreError> for CheckError {
    fn from(e: mh_store::StoreError) -> Self {
        Self::Store(e)
    }
}

/// Run every check layer over the repository at `root`.
pub fn fsck(root: &Path, cfg: &FsckConfig) -> Result<FsckReport, CheckError> {
    if !root.join("catalog.mhs").exists() {
        return Err(CheckError::NotARepository(root.display().to_string()));
    }
    let catalog = mh_store::Catalog::open(&root.join("catalog.mhs"))?;
    let mut report = FsckReport::default();
    let snap = catalog.read(catalog::CatalogSnapshot::collect);
    catalog::check(&snap, &mut report);
    blobs::check(root, &snap, &mut report);
    pasck::check(root, &snap, cfg, &mut report);
    Ok(report)
}
