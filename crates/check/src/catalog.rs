//! Layer 1: catalog integrity — referential checks across the `mh-store`
//! tables and lineage-DAG verification.

use crate::{
    FsckReport, C_BAD_EDGE_ENDPOINT, C_BAD_LAYER_DEF, C_BAD_SNAPSHOT_LOCATION, C_DANGLING_LINEAGE,
    C_DANGLING_VERSION_REF, C_DUPLICATE_VERSION, C_LINEAGE_CYCLE, C_MISSING_TABLE,
};
use mh_store::{Database, RowId};
use std::collections::{BTreeMap, BTreeSet};

/// Tables every repository must have (`pas_budget` is optional: it was
/// added later and is created lazily on archive).
const REQUIRED_TABLES: &[&str] = &[
    "model_version",
    "node",
    "edge",
    "parent",
    "hyper",
    "metric",
    "file",
    "snapshot",
    "pas_vertex",
];

/// One `model_version` row.
#[derive(Debug, Clone)]
pub struct VersionRow {
    pub row_id: RowId,
    pub name: String,
    pub vid: i64,
}

impl VersionRow {
    /// The display key used by lineage edges and PAS snapshot names.
    pub fn display_key(&self) -> String {
        format!("{}:{}", self.name, self.vid)
    }
}

/// An in-memory copy of everything `fsck` needs from the catalog, read in
/// one transaction so all layers see a consistent state.
#[derive(Debug, Clone, Default)]
pub struct CatalogSnapshot {
    pub missing_tables: Vec<String>,
    pub versions: Vec<VersionRow>,
    /// (row id, mv, node_id, layer name, encoded def).
    pub nodes: Vec<(RowId, i64, i64, String, String)>,
    /// (row id, mv, from_id, to_id).
    pub edges: Vec<(RowId, i64, i64, i64)>,
    /// (row id, base key, derived key).
    pub parents: Vec<(RowId, String, String)>,
    /// (row id, mv) for hyper/metric rows (only the reference matters).
    pub hyper_refs: Vec<(RowId, &'static str, i64)>,
    /// (row id, mv, path, sha256, bytes).
    pub files: Vec<(RowId, i64, String, String, i64)>,
    /// (row id, mv, snap_idx, location).
    pub snapshots: Vec<(RowId, i64, i64, String)>,
    /// (row id, mv, snap_idx, layer, store, vertex).
    pub pas_vertices: Vec<(RowId, i64, i64, String, String, i64)>,
    /// (row id, store, snapshot, scheme, budget, cost); `None` when the
    /// `pas_budget` table does not exist.
    pub budgets: Option<Vec<BudgetRow>>,
}

/// One `pas_budget` row: (row id, store, snapshot, scheme, budget, cost).
pub type BudgetRow = (RowId, String, String, String, f64, f64);

impl CatalogSnapshot {
    /// Read every table. Missing tables are recorded, not fatal.
    pub fn collect(db: &Database) -> Self {
        let mut snap = Self::default();
        let names: BTreeSet<String> = db.table_names().into_iter().collect();
        for t in REQUIRED_TABLES {
            if !names.contains(*t) {
                snap.missing_tables.push((*t).to_string());
            }
        }
        let int = |r: &mh_store::Row, i: usize| r.values.get(i).and_then(|v| v.as_int());
        let text = |r: &mh_store::Row, i: usize| {
            r.values
                .get(i)
                .and_then(|v| v.as_text())
                .unwrap_or("")
                .to_string()
        };
        if let Ok(t) = db.table("model_version") {
            for r in t.scan() {
                snap.versions.push(VersionRow {
                    row_id: r.id,
                    name: text(&r, 0),
                    vid: int(&r, 1).unwrap_or(-1),
                });
            }
        }
        if let Ok(t) = db.table("node") {
            for r in t.scan() {
                snap.nodes.push((
                    r.id,
                    int(&r, 0).unwrap_or(-1),
                    int(&r, 1).unwrap_or(-1),
                    text(&r, 2),
                    text(&r, 3),
                ));
            }
        }
        if let Ok(t) = db.table("edge") {
            for r in t.scan() {
                snap.edges.push((
                    r.id,
                    int(&r, 0).unwrap_or(-1),
                    int(&r, 1).unwrap_or(-1),
                    int(&r, 2).unwrap_or(-1),
                ));
            }
        }
        if let Ok(t) = db.table("parent") {
            for r in t.scan() {
                snap.parents.push((r.id, text(&r, 0), text(&r, 1)));
            }
        }
        for name in ["hyper", "metric"] {
            if let Ok(t) = db.table(name) {
                let tag = if name == "hyper" { "hyper" } else { "metric" };
                for r in t.scan() {
                    snap.hyper_refs.push((r.id, tag, int(&r, 0).unwrap_or(-1)));
                }
            }
        }
        if let Ok(t) = db.table("file") {
            for r in t.scan() {
                snap.files.push((
                    r.id,
                    int(&r, 0).unwrap_or(-1),
                    text(&r, 1),
                    text(&r, 2),
                    int(&r, 3).unwrap_or(-1),
                ));
            }
        }
        if let Ok(t) = db.table("snapshot") {
            for r in t.scan() {
                snap.snapshots.push((
                    r.id,
                    int(&r, 0).unwrap_or(-1),
                    int(&r, 1).unwrap_or(-1),
                    text(&r, 3),
                ));
            }
        }
        if let Ok(t) = db.table("pas_vertex") {
            for r in t.scan() {
                snap.pas_vertices.push((
                    r.id,
                    int(&r, 0).unwrap_or(-1),
                    int(&r, 1).unwrap_or(-1),
                    text(&r, 2),
                    text(&r, 3),
                    int(&r, 4).unwrap_or(-1),
                ));
            }
        }
        if let Ok(t) = db.table("pas_budget") {
            let mut rows = Vec::new();
            for r in t.scan() {
                rows.push((
                    r.id,
                    text(&r, 0),
                    text(&r, 1),
                    text(&r, 2),
                    r.values
                        .get(3)
                        .and_then(|v| v.as_real())
                        .unwrap_or(f64::NAN),
                    r.values
                        .get(4)
                        .and_then(|v| v.as_real())
                        .unwrap_or(f64::NAN),
                ));
            }
            snap.budgets = Some(rows);
        }
        snap
    }

    /// Set of valid model-version row ids.
    pub fn version_ids(&self) -> BTreeSet<i64> {
        self.versions.iter().map(|v| v.row_id as i64).collect()
    }

    /// Display key (`name:id`) of the version with catalog row id `mv`.
    pub fn display_key(&self, mv: i64) -> Option<String> {
        self.versions
            .iter()
            .find(|v| v.row_id as i64 == mv)
            .map(VersionRow::display_key)
    }
}

/// Run the catalog-layer checks.
pub fn check(snap: &CatalogSnapshot, report: &mut FsckReport) {
    report.versions_checked = snap.versions.len();
    for t in &snap.missing_tables {
        report.error(
            C_MISSING_TABLE,
            "catalog.mhs",
            format!("required table '{t}' is missing"),
        );
    }

    // Duplicate (name, vid) keys.
    let mut seen: BTreeMap<(String, i64), RowId> = BTreeMap::new();
    for v in &snap.versions {
        if let Some(first) = seen.insert((v.name.clone(), v.vid), v.row_id) {
            report.error(
                C_DUPLICATE_VERSION,
                format!("catalog.mhs:model_version#{}", v.row_id),
                format!(
                    "duplicate version key {} (also row #{first})",
                    v.display_key()
                ),
            );
        }
    }

    // Dangling version references from every child table.
    let ids = snap.version_ids();
    let dangle = |table: &str, row: RowId, mv: i64, report: &mut FsckReport| {
        if !ids.contains(&mv) {
            report.error(
                C_DANGLING_VERSION_REF,
                format!("catalog.mhs:{table}#{row}"),
                format!("references model version {mv}, which does not exist"),
            );
            return true;
        }
        false
    };
    for (row, mv, node_id, lname, def) in &snap.nodes {
        dangle("node", *row, *mv, report);
        if mh_dlv::layercodec::decode_layer(def).is_none() {
            report.error(
                C_BAD_LAYER_DEF,
                format!("catalog.mhs:node#{row}"),
                format!("layer '{lname}' (node {node_id}) has undecodable definition '{def}'"),
            );
        }
    }
    for (row, mv, _, _) in &snap.edges {
        dangle("edge", *row, *mv, report);
    }
    for (row, table, mv) in &snap.hyper_refs {
        dangle(table, *row, *mv, report);
    }
    for (row, mv, ..) in &snap.files {
        dangle("file", *row, *mv, report);
    }
    for (row, mv, _, loc) in &snap.snapshots {
        dangle("snapshot", *row, *mv, report);
        if !loc.starts_with("staged:") && !loc.starts_with("pas:") {
            report.error(
                C_BAD_SNAPSHOT_LOCATION,
                format!("catalog.mhs:snapshot#{row}"),
                format!("location '{loc}' is neither 'staged:' nor 'pas:'"),
            );
        }
    }
    for (row, mv, ..) in &snap.pas_vertices {
        dangle("pas_vertex", *row, *mv, report);
    }

    // Network edges must connect existing nodes of the same version.
    let mut nodes_of: BTreeMap<i64, BTreeSet<i64>> = BTreeMap::new();
    for (_, mv, node_id, ..) in &snap.nodes {
        nodes_of.entry(*mv).or_default().insert(*node_id);
    }
    for (row, mv, from, to) in &snap.edges {
        let known = nodes_of.get(mv);
        for (end, id) in [("from", from), ("to", to)] {
            if !known.is_some_and(|s| s.contains(id)) {
                report.error(
                    C_BAD_EDGE_ENDPOINT,
                    format!("catalog.mhs:edge#{row}"),
                    format!("{end}-endpoint node {id} has no node row for version {mv}"),
                );
            }
        }
    }

    // Lineage: endpoints must exist; the derivation graph must be acyclic.
    let keys: BTreeSet<String> = snap.versions.iter().map(VersionRow::display_key).collect();
    let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (row, base, derived) in &snap.parents {
        for (role, key) in [("base", base), ("derived", derived)] {
            if !keys.contains(key) {
                report.error(
                    C_DANGLING_LINEAGE,
                    format!("catalog.mhs:parent#{row}"),
                    format!("{role} version '{key}' does not exist"),
                );
            }
        }
        children
            .entry(base.as_str())
            .or_default()
            .push(derived.as_str());
    }
    for cycle in find_cycles(&children) {
        report.error(
            C_LINEAGE_CYCLE,
            "catalog.mhs:parent",
            format!("lineage cycle through '{cycle}'"),
        );
    }
}

/// Vertices on some cycle of the lineage graph (three-colour DFS; each
/// cycle is reported once via its entry vertex).
fn find_cycles(children: &BTreeMap<&str, Vec<&str>>) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: BTreeMap<&str, Colour> = BTreeMap::new();
    let mut cycles = Vec::new();
    // Iterative DFS: (vertex, next-child index).
    for &start in children.keys() {
        if *colour.get(start).unwrap_or(&Colour::White) != Colour::White {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        colour.insert(start, Colour::Grey);
        while let Some((v, i)) = stack.pop() {
            let kids = children.get(v).map(Vec::as_slice).unwrap_or(&[]);
            if i < kids.len() {
                stack.push((v, i + 1));
                let child = kids[i];
                match colour.get(child).copied().unwrap_or(Colour::White) {
                    Colour::White => {
                        colour.insert(child, Colour::Grey);
                        stack.push((child, 0));
                    }
                    Colour::Grey => cycles.push(child.to_string()),
                    Colour::Black => {}
                }
            } else {
                colour.insert(v, Colour::Black);
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection() {
        let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        g.insert("a", vec!["b"]);
        g.insert("b", vec!["c"]);
        g.insert("c", vec!["a"]);
        assert_eq!(find_cycles(&g).len(), 1);

        let mut dag: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        dag.insert("a", vec!["b", "c"]);
        dag.insert("b", vec!["c"]);
        assert!(find_cycles(&dag).is_empty());
    }

    #[test]
    fn diamond_is_not_a_cycle() {
        let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        g.insert("a", vec!["b", "c"]);
        g.insert("b", vec!["d"]);
        g.insert("c", vec!["d"]);
        assert!(find_cycles(&g).is_empty());
    }
}
