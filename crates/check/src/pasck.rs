//! Layer 3: PAS plan verification — manifest structure, plane files,
//! delta-chain invariants, α-budget accounting, and (deep mode) interval
//! error bounds.
//!
//! The manifest is parsed here independently of `mh-pas`: `fsck` must
//! produce precise findings for exactly the corruption that would make
//! `SegmentStore::open` fail (and must survive manifests that would send
//! its unguarded parent-chain walk into a loop).

use crate::catalog::CatalogSnapshot;
use crate::{
    FsckConfig, FsckReport, SnapshotBound, E_BOUND_VIOLATION, E_BUDGET_EXCEEDED,
    E_BUDGET_STORE_MISSING, E_MISSING_BUDGET_TABLE, E_NO_BUDGET_ROWS, P_BAD_MANIFEST,
    P_CHAIN_CYCLE, P_DANGLING_PARENT, P_DUPLICATE_VERTEX, P_MATERIALIZED_MID_CHAIN,
    P_MISSING_PLANE, P_ORPHAN_PLANE, P_PLANE_SIZE_MISMATCH, P_ROOT_NOT_MATERIALIZED,
};
use mh_pas::{SegmentStore, VertexId, NULL_VERTEX};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Object kinds as stored in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    Materialized,
    DeltaSub,
    DeltaXor,
}

/// One manifest row, as parsed by the checker.
#[derive(Debug, Clone)]
pub struct ManifestObject {
    pub vertex: VertexId,
    pub kind: ObjKind,
    pub parent: VertexId,
    pub plane_sizes: [u64; 4],
    pub label: String,
}

/// An independently parsed `manifest.mhp`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    pub objects: Vec<ManifestObject>,
}

impl Manifest {
    /// Parse a manifest file. Errors carry the 1-based line number and the
    /// same descriptions `SegmentStore::open` would use.
    pub fn parse_file(path: &Path) -> Result<Self, (usize, &'static str)> {
        let text = std::fs::read_to_string(path).map_err(|_| (0, "manifest unreadable"))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "MHPAS1")) => {}
            _ => return Err((1, "bad manifest header")),
        }
        let mut objects = Vec::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() != 10 {
                return Err((lineno, "bad manifest row"));
            }
            let num = |s: &str| -> Result<u64, (usize, &'static str)> {
                s.parse().map_err(|_| (lineno, "bad manifest number"))
            };
            let kind = match f[1] {
                "mat" => ObjKind::Materialized,
                "sub" => ObjKind::DeltaSub,
                "xor" => ObjKind::DeltaXor,
                _ => return Err((lineno, "bad object kind")),
            };
            objects.push(ManifestObject {
                vertex: num(f[0])? as VertexId,
                kind,
                parent: num(f[2])? as VertexId,
                plane_sizes: [num(f[5])?, num(f[6])?, num(f[7])?, num(f[8])?],
                label: f[9].to_string(),
            });
        }
        Ok(Self { objects })
    }
}

/// Byte planes inspected per vertex in deep mode; 2 of 4 keeps the check
/// to prefix reads (never full decompression).
const DEEP_PLANES: usize = 2;

/// Run the PAS-layer checks over every store referenced by the catalog or
/// present under `pas/`.
pub fn check(root: &Path, snap: &CatalogSnapshot, cfg: &FsckConfig, report: &mut FsckReport) {
    let mut stores: BTreeSet<String> = BTreeSet::new();
    for (_, _, _, loc) in &snap.snapshots {
        if let Some(s) = loc.strip_prefix("pas:") {
            stores.insert(s.to_string());
        }
    }
    for (_, _, _, _, store, _) in &snap.pas_vertices {
        stores.insert(store.clone());
    }
    if let Ok(entries) = std::fs::read_dir(root.join("pas")) {
        for entry in entries.flatten() {
            stores.insert(entry.file_name().to_string_lossy().into_owned());
        }
    }

    let mut structurally_ok: BTreeSet<String> = BTreeSet::new();
    for store in &stores {
        let dir = root.join("pas").join(store);
        if !dir.is_dir() {
            // Reported by the blob layer (B026) against the catalog row.
            continue;
        }
        report.stores_checked += 1;
        if check_store(&dir, store, report) {
            structurally_ok.insert(store.clone());
        }
    }

    check_budgets(snap, &stores, report);

    if cfg.deep {
        for store in &structurally_ok {
            deep_check_store(root, store, snap, report);
        }
    }
}

/// Structural checks for one store. Returns whether the store is sound
/// enough for deep (value-level) checks.
fn check_store(dir: &Path, store: &str, report: &mut FsckReport) -> bool {
    let loc = format!("pas/{store}/manifest.mhp");
    let manifest = match Manifest::parse_file(&dir.join("manifest.mhp")) {
        Ok(m) => m,
        Err((line, msg)) => {
            report.error(P_BAD_MANIFEST, format!("{loc}:{line}"), msg);
            return false;
        }
    };

    // Plan invariant: one row (= one parent edge) per matrix vertex.
    let mut by_vertex: BTreeMap<VertexId, &ManifestObject> = BTreeMap::new();
    for o in &manifest.objects {
        if by_vertex.insert(o.vertex, o).is_some() {
            report.error(
                P_DUPLICATE_VERTEX,
                loc.clone(),
                format!("vertex {} has more than one manifest row", o.vertex),
            );
        }
    }

    let mut sound = true;
    for o in &manifest.objects {
        // Kind/parent consistency: materialized objects are chain roots.
        match o.kind {
            ObjKind::Materialized if o.parent != NULL_VERTEX => {
                report.error(
                    P_MATERIALIZED_MID_CHAIN,
                    loc.clone(),
                    format!("materialized vertex {} has parent {}", o.vertex, o.parent),
                );
                sound = false;
            }
            ObjKind::DeltaSub | ObjKind::DeltaXor if o.parent == NULL_VERTEX => {
                report.error(
                    P_ROOT_NOT_MATERIALIZED,
                    loc.clone(),
                    format!("delta vertex {} is a chain root (no parent)", o.vertex),
                );
                sound = false;
            }
            _ => {}
        }
        if o.parent != NULL_VERTEX && !by_vertex.contains_key(&o.parent) {
            report.error(
                P_DANGLING_PARENT,
                loc.clone(),
                format!(
                    "vertex {} has parent {}, which is not in the manifest",
                    o.vertex, o.parent
                ),
            );
            sound = false;
        }
        // Plane files present with the recorded compressed sizes.
        for (p, want) in o.plane_sizes.iter().enumerate() {
            let plane = dir.join(format!("obj{:06}_p{p}.mhz", o.vertex));
            match std::fs::metadata(&plane) {
                Err(_) => {
                    report.error(
                        P_MISSING_PLANE,
                        format!("pas/{store}/obj{:06}_p{p}.mhz", o.vertex),
                        format!("byte plane {p} of vertex {} is missing", o.vertex),
                    );
                    sound = false;
                }
                Ok(meta) if meta.len() != *want => {
                    report.error(
                        P_PLANE_SIZE_MISMATCH,
                        format!("pas/{store}/obj{:06}_p{p}.mhz", o.vertex),
                        format!(
                            "manifest records {want} compressed bytes, file has {}",
                            meta.len()
                        ),
                    );
                    sound = false;
                }
                Ok(_) => {}
            }
        }
    }

    // Reachability from ν₀: every vertex's parent chain must terminate at a
    // materialized root without revisiting a vertex. (The production walk
    // in `SegmentStore` is unguarded — a cycle would hang it, so the
    // checker uses its own seen-set walk.)
    for o in &manifest.objects {
        let mut seen: BTreeSet<VertexId> = BTreeSet::new();
        let mut cur = o.vertex;
        loop {
            if !seen.insert(cur) {
                report.error(
                    P_CHAIN_CYCLE,
                    loc.clone(),
                    format!("delta chain of vertex {} revisits vertex {cur}", o.vertex),
                );
                sound = false;
                break;
            }
            let Some(obj) = by_vertex.get(&cur) else {
                break; // dangling parent, already reported
            };
            if obj.parent == NULL_VERTEX {
                break; // reached a chain root
            }
            cur = obj.parent;
        }
    }

    // Orphan plane files (warning).
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == "manifest.mhp" {
                continue;
            }
            let known =
                parse_plane_name(&name).is_some_and(|(v, p)| by_vertex.contains_key(&v) && p < 4);
            if !known {
                report.warn(
                    P_ORPHAN_PLANE,
                    format!("pas/{store}/{name}"),
                    "file matches no manifest entry",
                );
            }
        }
    }
    sound
}

/// Parse `obj{v:06}_p{plane}.mhz` back into (vertex, plane).
fn parse_plane_name(name: &str) -> Option<(VertexId, usize)> {
    let rest = name.strip_prefix("obj")?.strip_suffix(".mhz")?;
    let (v, p) = rest.split_once("_p")?;
    Some((v.parse().ok()?, p.parse().ok()?))
}

/// Verify recorded per-snapshot recreation costs against declared
/// α-budgets (persisted by `archive` in the `pas_budget` table).
fn check_budgets(snap: &CatalogSnapshot, stores: &BTreeSet<String>, report: &mut FsckReport) {
    let Some(budgets) = &snap.budgets else {
        if !stores.is_empty() {
            report.warn(
                E_MISSING_BUDGET_TABLE,
                "catalog.mhs",
                "repository has archived stores but no pas_budget table (pre-upgrade repo?)",
            );
        }
        return;
    };
    let mut budgeted: BTreeSet<&str> = BTreeSet::new();
    for (row, store, snapshot, scheme, budget, cost) in budgets {
        budgeted.insert(store.as_str());
        if !stores.contains(store) {
            report.error(
                E_BUDGET_STORE_MISSING,
                format!("catalog.mhs:pas_budget#{row}"),
                format!("budget row for snapshot '{snapshot}' references unknown store '{store}'"),
            );
            continue;
        }
        // Tolerate float noise from recomputing sums in a different order.
        // The negated `<=` is deliberate: it also trips when either side
        // is NaN, which a plain `>` would silently pass.
        let slack = 1e-9 * budget.abs().max(1.0);
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(*cost <= *budget + slack) {
            report.error(
                E_BUDGET_EXCEEDED,
                format!("catalog.mhs:pas_budget#{row}"),
                format!(
                    "snapshot '{snapshot}' ({scheme}) recreation cost {cost:.3} exceeds \
                     declared budget {budget:.3}"
                ),
            );
        }
    }
    for store in stores {
        if !budgeted.contains(store.as_str()) {
            report.warn(
                E_NO_BUDGET_ROWS,
                format!("pas/{store}"),
                "archived store has no recorded budget rows",
            );
        }
    }
}

/// Deep (value-level) checks: open the store with `mh-pas`, derive interval
/// bounds for every vertex from the first [`DEEP_PLANES`] byte planes, and
/// verify (a) bounds are well-formed, (b) full recreation falls inside
/// them. Also reports per-snapshot worst-case bound widths.
fn deep_check_store(root: &Path, store: &str, snap: &CatalogSnapshot, report: &mut FsckReport) {
    let store_path = root.join("pas").join(store);
    let seg = match SegmentStore::open(&store_path) {
        Ok(s) => s,
        Err(e) => {
            // Structural checks passed but mh-pas still rejects it: report
            // rather than silently skipping.
            report.error(
                P_BAD_MANIFEST,
                format!("pas/{store}"),
                format!("store fails to open: {e}"),
            );
            return;
        }
    };

    // Map each vertex to the snapshots it belongs to ("name:id/sN", the
    // same names `archive` records in pas_budget).
    let mut snapshot_of: BTreeMap<VertexId, Vec<String>> = BTreeMap::new();
    for (_, mv, snap_idx, _, s, vertex) in &snap.pas_vertices {
        if s == store {
            if let Some(key) = snap.display_key(*mv) {
                snapshot_of
                    .entry(*vertex as VertexId)
                    .or_default()
                    .push(format!("{key}/s{snap_idx}"));
            }
        }
    }

    // Value-level checks per vertex are independent (recreate each chain,
    // compare against its interval bounds), so they fan out to the pool;
    // findings are applied to the report serially in vertex order, keeping
    // output deterministic across thread counts. Each worker returns its
    // findings plus the bound width (None when bounds were unusable).
    let vertices: Vec<VertexId> = seg.vertices().collect();
    let checked = mh_par::parallel_map(&vertices, |_, &v| {
        let loc = format!("pas/{store}:vertex{v}");
        let mut findings: Vec<(String, String)> = Vec::new();
        let (lo, hi) = match seg.recreate_bounds(v, DEEP_PLANES) {
            Ok(b) => b,
            Err(e) => {
                findings.push((loc, format!("interval bounds cannot be derived: {e}")));
                return (findings, None);
            }
        };
        let mut width = 0f32;
        for (l, h) in lo.as_slice().iter().zip(hi.as_slice()) {
            if l > h {
                findings.push((
                    loc,
                    "inverted interval (lo > hi) from byte-plane prefix".to_string(),
                ));
                return (findings, None);
            }
            width = width.max(h - l);
        }
        match seg.recreate(v) {
            Ok(full) => {
                let inside = full
                    .as_slice()
                    .iter()
                    .zip(lo.as_slice().iter().zip(hi.as_slice()))
                    .all(|(x, (l, h))| l <= x && x <= h);
                if !inside {
                    findings.push((
                        loc,
                        format!(
                            "fully recreated '{}' falls outside its {DEEP_PLANES}-plane bounds",
                            seg.label(v).unwrap_or("?")
                        ),
                    ));
                }
            }
            Err(e) => {
                findings.push((loc, format!("vertex cannot be recreated: {e}")));
            }
        }
        (findings, Some(width))
    });
    let checked = match checked {
        Ok(c) => c,
        Err(e) => {
            report.error(
                E_BOUND_VIOLATION,
                format!("pas/{store}"),
                format!("deep check workers failed: {e}"),
            );
            return;
        }
    };
    let mut worst: BTreeMap<String, (usize, f32)> = BTreeMap::new();
    for (&v, (findings, width)) in vertices.iter().zip(checked) {
        for (loc, msg) in findings {
            report.error(E_BOUND_VIOLATION, loc, msg);
        }
        let Some(width) = width else { continue };
        for name in snapshot_of.get(&v).into_iter().flatten() {
            let entry = worst.entry(name.clone()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 = entry.1.max(width);
        }
    }
    for (snapshot, (layers, worst_width)) in worst {
        report.bounds.push(SnapshotBound {
            store: store.to_string(),
            snapshot,
            layers,
            planes: DEEP_PLANES,
            worst_width,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_name_roundtrip() {
        assert_eq!(parse_plane_name("obj000007_p2.mhz"), Some((7, 2)));
        assert_eq!(parse_plane_name("obj000123_p0.mhz"), Some((123, 0)));
        assert_eq!(parse_plane_name("manifest.mhp"), None);
        assert_eq!(parse_plane_name("obj_p.mhz"), None);
    }
}
