//! Layer 2: blob integrity — staged weight files, content-addressed
//! objects, and the catalog↔disk mapping for archived stores.

use crate::catalog::CatalogSnapshot;
use crate::{
    FsckReport, B_CORRUPT_BLOB, B_DANGLING_PAS_VERTEX, B_HASH_MISMATCH, B_MISSING_BLOB,
    B_MISSING_OBJECT, B_MISSING_STORE, B_ORPHAN_BLOB, B_SIZE_MISMATCH,
};
use std::collections::BTreeSet;
use std::path::Path;

/// Run the blob-layer checks.
pub fn check(root: &Path, snap: &CatalogSnapshot, report: &mut FsckReport) {
    let mut referenced_weights: BTreeSet<String> = BTreeSet::new();
    let mut referenced_stores: BTreeSet<&str> = BTreeSet::new();

    // Staged snapshot blobs must exist and parse as weight files; `pas:`
    // locations must name a store directory with a manifest.
    for (row, _, _, loc) in &snap.snapshots {
        if let Some(rel) = loc.strip_prefix("staged:") {
            referenced_weights.insert(rel.to_string());
            let path = root.join(rel);
            report.blobs_checked += 1;
            match std::fs::read(&path) {
                Err(_) => {
                    report.error(
                        B_MISSING_BLOB,
                        rel,
                        format!("staged blob for snapshot row #{row} is missing"),
                    );
                }
                Ok(bytes) => {
                    if let Err(e) = mh_dlv::wfile::weights_from_bytes(&bytes) {
                        report.error(
                            B_CORRUPT_BLOB,
                            rel,
                            format!("staged blob does not parse as a weights file: {e}"),
                        );
                    }
                }
            }
        } else if let Some(store) = loc.strip_prefix("pas:") {
            referenced_stores.insert(store);
            if !root.join("pas").join(store).join("manifest.mhp").exists() {
                report.error(
                    B_MISSING_STORE,
                    format!("pas/{store}"),
                    format!("snapshot row #{row} is archived in '{store}', which has no manifest"),
                );
            }
        }
    }

    // Content-addressed objects: exist, size matches, hash matches.
    let mut referenced_objects: BTreeSet<&str> = BTreeSet::new();
    for (row, _, path, digest, bytes) in &snap.files {
        referenced_objects.insert(digest.as_str());
        let obj = root.join("objects").join(digest);
        report.blobs_checked += 1;
        match std::fs::read(&obj) {
            Err(_) => {
                report.error(
                    B_MISSING_OBJECT,
                    format!("objects/{digest}"),
                    format!("object for file '{path}' (row #{row}) is missing"),
                );
            }
            Ok(content) => {
                if content.len() as i64 != *bytes {
                    report.error(
                        B_SIZE_MISMATCH,
                        format!("objects/{digest}"),
                        format!(
                            "file '{path}' records {bytes} bytes but the object has {}",
                            content.len()
                        ),
                    );
                }
                let actual = mh_dlv::hash::sha256_hex(&content);
                if &actual != digest {
                    report.error(
                        B_HASH_MISMATCH,
                        format!("objects/{digest}"),
                        format!("file '{path}' content hashes to {actual}"),
                    );
                }
            }
        }
    }

    // pas_vertex rows must point into an existing store at a vertex the
    // manifest knows about (vertex presence is checked against a raw
    // manifest parse so a damaged store still yields precise findings).
    for (row, _, _, layer, store, vertex) in &snap.pas_vertices {
        let dir = root.join("pas").join(store);
        if !dir.join("manifest.mhp").exists() {
            report.error(
                B_MISSING_STORE,
                format!("pas/{store}"),
                format!("pas_vertex row #{row} (layer '{layer}') references a missing store"),
            );
            continue;
        }
        if let Ok(manifest) = crate::pasck::Manifest::parse_file(&dir.join("manifest.mhp")) {
            if !manifest.objects.iter().any(|o| o.vertex as i64 == *vertex) {
                report.error(
                    B_DANGLING_PAS_VERTEX,
                    format!("pas/{store}"),
                    format!(
                        "pas_vertex row #{row} (layer '{layer}') points at vertex {vertex}, \
                         which is not in the manifest"
                    ),
                );
            }
        }
    }

    // Orphans: on-disk blobs referenced by no catalog row (warnings — they
    // waste space but damage nothing).
    if let Ok(entries) = std::fs::read_dir(root.join("weights")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !referenced_weights.contains(&format!("weights/{name}")) {
                report.warn(
                    B_ORPHAN_BLOB,
                    format!("weights/{name}"),
                    "staged blob is referenced by no snapshot row",
                );
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(root.join("objects")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !referenced_objects.contains(name.as_str()) {
                report.warn(
                    B_ORPHAN_BLOB,
                    format!("objects/{name}"),
                    "object is referenced by no file row",
                );
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(root.join("pas")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let known = referenced_stores.contains(name.as_str())
                || snap
                    .pas_vertices
                    .iter()
                    .any(|(_, _, _, _, s, _)| s == &name);
            if !known {
                report.warn(
                    B_ORPHAN_BLOB,
                    format!("pas/{name}"),
                    "segment store is referenced by no snapshot or pas_vertex row",
                );
            }
        }
    }
}
