//! Reactor↔pool completion handoff.
//!
//! The hub's event loop offloads CPU-bound request handling to the
//! worker pool and gets finished responses back through a
//! [`CompletionQueue`]: workers `push` under a facade mutex and then
//! invoke a *waker* (in `hubd`, one byte written to a loopback wake
//! socket registered in the reactor's poller); the single-threaded
//! reactor `drain`s everything pending after each wakeup.
//!
//! The no-lost-wakeup argument is an ordering discipline, not luck:
//!
//! 1. a worker makes its completion visible (push under the lock,
//!    guard dropped) **before** invoking the waker, and
//! 2. the reactor drains **after** observing the wake signal.
//!
//! So for every completion there is a wake signal that happens-after
//! it; a reactor that drains on every signal can never sleep forever
//! with work pending. Spurious wakeups are harmless (`drain` of an
//! empty queue returns nothing). This property is model-checked in
//! `model_tests` below (`cargo test -p mh-par --features model`): the
//! checker explores every interleaving of two pushing workers against
//! a draining reactor and proves the reactor always terminates with
//! both completions — a deadlock here would be exactly the lost-wakeup
//! bug the discipline exists to prevent.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// An unbounded MPSC-style completion buffer with an attached waker.
///
/// "Unbounded" is safe by construction: at most one completion per
/// in-flight connection can be pending, and the reactor caps in-flight
/// connections (`--max-conns`), so the queue's high-water mark is the
/// connection limit, not attacker-controlled.
pub struct CompletionQueue<T> {
    inner: Mutex<VecDeque<T>>,
    waker: Box<dyn Fn() + Send + Sync>,
}

impl<T> std::fmt::Debug for CompletionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("pending", &self.inner.lock().len())
            .finish()
    }
}

impl<T> CompletionQueue<T> {
    /// Build a queue whose `waker` is invoked after every push. The
    /// waker must be cheap, non-blocking, and idempotent (extra wakes
    /// are fine; missed wakes are not — see the module docs).
    pub fn new(waker: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            waker: Box::new(waker),
        }
    }

    /// Publish one completion, then wake the consumer. The item is
    /// visible to `drain` strictly before the waker runs.
    pub fn push(&self, item: T) {
        let mut guard = self.inner.lock();
        guard.push_back(item);
        drop(guard);
        (self.waker)();
    }

    /// Take everything currently pending, in push order.
    ///
    /// Called from the hubd reactor between poll wakeups; the queue
    /// lock below is the only sync op and is never held across
    /// blocking work by any pusher, so the critical section is a
    /// bounded memory move.
    // mh-audit: nonblocking_zone
    pub fn drain(&self) -> Vec<T> {
        // mh-audit: allow(R001, queue mutex is bounded: pushers only move one item under it and never block while holding it)
        let mut guard = self.inner.lock();
        guard.drain(..).collect()
    }

    /// Completions currently pending (diagnostic only — racy by nature).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A condvar-backed wake signal with the same raise/await contract as
/// the hub's wake-socket byte: `raise` is idempotent and never blocks,
/// `await_and_clear` parks until at least one raise happened since the
/// last clear. Used by in-process consumers and by the model tests as
/// a checker-visible stand-in for the epoll wakeup path.
#[derive(Debug, Default)]
pub struct WakeFlag {
    raised: Mutex<bool>,
    cv: Condvar,
}

impl WakeFlag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a wake and notify the (single) waiter.
    pub fn raise(&self) {
        let mut guard = self.raised.lock();
        *guard = true;
        drop(guard);
        self.cv.notify_one();
    }

    /// Block until raised, then consume the signal.
    pub fn await_and_clear(&self) {
        let mut guard = self.raised.lock();
        while !*guard {
            guard = self.cv.wait(guard);
        }
        *guard = false;
    }

    /// Nonblocking probe: consume the signal if raised.
    pub fn take(&self) -> bool {
        let mut guard = self.raised.lock();
        std::mem::take(&mut *guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync;
    use std::sync::Arc;

    #[test]
    fn push_then_drain_preserves_order_and_wakes() {
        let flag = Arc::new(WakeFlag::new());
        let f2 = Arc::clone(&flag);
        let q = CompletionQueue::new(move || f2.raise());
        q.push(1);
        q.push(2);
        assert!(flag.take(), "waker must run on push");
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }

    #[test]
    fn concurrent_pushers_lose_nothing() {
        let flag = Arc::new(WakeFlag::new());
        let f2 = Arc::clone(&flag);
        let q = Arc::new(CompletionQueue::new(move || f2.raise()));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let q2 = Arc::clone(&q);
            handles.push(sync::thread::spawn(move || {
                for i in 0..100u32 {
                    q2.push(t * 1000 + i);
                }
            }));
        }
        let mut got = Vec::new();
        // Drain concurrently with the pushers, then once more after join.
        while got.len() < 400 {
            flag.await_and_clear();
            got.extend(q.drain());
        }
        for h in handles {
            h.join().expect("pusher");
        }
        got.extend(q.drain());
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..100u32).map(move |i| t * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// Exhaustive interleaving checks of the handoff discipline
/// (`cargo test -p mh-par --features model`).
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use crate::sync;
    use std::sync::Arc;

    #[test]
    fn model_completion_handoff_no_lost_wakeup() {
        // Two workers push; the reactor thread drains on each wake.
        // A lost wakeup would leave the reactor parked forever with a
        // completion pending — the checker reports that as M001.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let flag = Arc::new(WakeFlag::new());
                let f2 = Arc::clone(&flag);
                let q = Arc::new(CompletionQueue::new(move || f2.raise()));
                let mut workers = Vec::new();
                for v in 0..2u32 {
                    let q2 = Arc::clone(&q);
                    workers.push(sync::thread::spawn(move || q2.push(v)));
                }
                let reactor = {
                    let q2 = Arc::clone(&q);
                    let flag2 = Arc::clone(&flag);
                    sync::thread::spawn(move || {
                        let mut got = Vec::new();
                        while got.len() < 2 {
                            flag2.await_and_clear();
                            got.extend(q2.drain());
                        }
                        got
                    })
                };
                for h in workers {
                    h.join().expect("worker");
                }
                let mut got = reactor.join().expect("reactor never hangs");
                got.sort_unstable();
                assert_eq!(got, vec![0, 1], "every completion is delivered");
            })
            .expect("no lost wakeup or deadlock in the handoff");
        assert!(stats.complete, "exploration must be exhaustive: {stats:?}");
        assert!(stats.iterations > 1, "nontrivial schedule space: {stats:?}");
    }

    #[test]
    fn model_drain_racing_push_never_drops() {
        // One worker pushing while the reactor is mid-drain: the item
        // lands either in this drain or a later one, never nowhere.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let flag = Arc::new(WakeFlag::new());
                let f2 = Arc::clone(&flag);
                let q = Arc::new(CompletionQueue::new(move || f2.raise()));
                let q2 = Arc::clone(&q);
                let worker = sync::thread::spawn(move || q2.push(7u32));
                let mut got = Vec::new();
                got.extend(q.drain()); // racy early drain: may be empty
                while got.is_empty() {
                    flag.await_and_clear();
                    got.extend(q.drain());
                }
                worker.join().expect("worker");
                assert_eq!(got, vec![7]);
            })
            .expect("no drop under drain/push races");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn model_try_push_never_blocks_against_close() {
        // The reactor-side handoff INTO the pool is nonblocking by
        // construction: try_push racing close() either lands the job or
        // reports Closed — it can never park the reactor thread.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let q = Arc::new(crate::BoundedQueue::<u32>::new(1));
                let q2 = Arc::clone(&q);
                let closer = sync::thread::spawn(move || q2.close_and_discard());
                let q3 = Arc::clone(&q);
                let reactor = sync::thread::spawn(move || q3.try_push(5));
                let res = reactor.join().expect("try_push returned immediately");
                match res {
                    Ok(()) | Err(crate::TryPushError::Closed(_)) => {}
                    Err(crate::TryPushError::Full(_)) => {
                        panic!("capacity-1 empty queue cannot be full")
                    }
                }
                closer.join().expect("closer");
            })
            .expect("try_push vs close never deadlocks");
        assert!(stats.complete, "{stats:?}");
    }
}
