//! The workspace sync facade.
//!
//! Every crate in the workspace reaches shared-state primitives — `Mutex`,
//! `Condvar`, `RwLock`, atomics, thread spawn/join/scope, and the wall
//! clock — through this module (`mh_par::sync`; enforced by the
//! `tools/lint-scan` source lint). Two backends:
//!
//! * **default**: thin wrappers over `std::sync` with poisoning swallowed
//!   (a panicking holder releases the lock; condition loops re-check
//!   state anyway). The mutex/condvar pairing is a single coherent
//!   implementation — previously `BoundedQueue` paired a `parking_lot`
//!   mutex with a `std` condvar, which only type-checked because the
//!   vendored stub re-exported std's guard. In debug builds, exclusive
//!   lock acquisitions additionally feed a cheap always-on lock-order
//!   cycle detector ([`mh_model::lockorder`], finding code `M003`);
//!   release builds compile the calls out entirely.
//! * **`model` feature**: re-exports [`mh_model::sync`] — instrumented
//!   primitives whose every operation is a scheduling point for the
//!   deterministic model checker (`mh_model::check`), and which fall
//!   back to real primitives outside a checker run so the build stays
//!   fully functional.
//!
//! [`now`] lives here so application code never names `Instant::now()`
//! directly: timestamps come from the facade, where the model build can
//! keep them out of scheduling decisions.

#[cfg(feature = "model")]
pub use mh_model::sync::*;

#[cfg(not(feature = "model"))]
mod std_backend {
    use mh_model::lockorder::LockClass;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};

    /// Which backend the facade compiled to (surfaced by
    /// `modelhub fsck --version`).
    pub const BACKEND: &str = "std";

    /// The current wall-clock instant (the facade's only time source).
    pub fn now() -> std::time::Instant {
        std::time::Instant::now()
    }

    #[cfg(debug_assertions)]
    fn class_here() -> LockClass {
        mh_model::lockorder::class_of(std::panic::Location::caller())
    }

    #[cfg(not(debug_assertions))]
    fn class_here() -> LockClass {
        ("", 0, 0)
    }

    fn debug_acquire(class: LockClass) {
        #[cfg(debug_assertions)]
        mh_model::lockorder::debug_acquire(class);
        #[cfg(not(debug_assertions))]
        let _ = class;
    }

    fn debug_release(class: LockClass) {
        #[cfg(debug_assertions)]
        mh_model::lockorder::debug_release(class);
        #[cfg(not(debug_assertions))]
        let _ = class;
    }

    /// A mutual-exclusion lock over `std::sync::Mutex`, without
    /// poisoning. Each lock's *class* is its creation site; debug builds
    /// maintain a global class-level acquisition-order graph and panic
    /// with an `M003` report when two call paths acquire lock classes in
    /// conflicting orders (a latent deadlock, caught without the model).
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        class: LockClass,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            Mutex {
                class: class_here(),
                inner: std::sync::Mutex::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            debug_acquire(self.class);
            MutexGuard {
                class: self.class,
                inner: ManuallyDrop::new(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        class: LockClass,
        inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            debug_release(self.class);
            // SAFETY: dropped exactly once, here.
            unsafe { ManuallyDrop::drop(&mut self.inner) }
        }
    }

    /// A condition variable paired with [`Mutex`] (one coherent std
    /// implementation underneath).
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically release the guard's mutex and wait; reacquire
        /// before returning. May wake spuriously. The lock-order state is
        /// carried through the wait (the lock is logically re-held on
        /// return, and the thread acquires nothing while parked).
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let class = guard.class;
            // SAFETY: `guard` is forgotten right after, so the inner
            // guard is not double-dropped and Drop's release never runs.
            let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
            std::mem::forget(guard);
            let std_guard = self
                .inner
                .wait(std_guard)
                .unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                class,
                inner: ManuallyDrop::new(std_guard),
            }
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// A reader-writer lock over `std::sync::RwLock` (parking_lot-style
    /// API: `read`/`write` return guards directly, no poisoning). Only
    /// write acquisitions feed the debug lock-order detector — read-side
    /// tracking would be noisy for a cheap always-on check; the model
    /// backend covers reads.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        class: LockClass,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            RwLock {
                class: class_here(),
                inner: std::sync::RwLock::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            }
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            debug_acquire(self.class);
            RwLockWriteGuard {
                class: self.class,
                inner: ManuallyDrop::new(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        class: LockClass,
        inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            debug_release(self.class);
            // SAFETY: dropped exactly once, here.
            unsafe { ManuallyDrop::drop(&mut self.inner) }
        }
    }

    /// Atomics are std's own — real atomics need no wrapping outside the
    /// model backend.
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    pub use atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    /// Thread spawn/join/scope (std's own; the model backend substitutes
    /// scheduler-aware equivalents with the same API shape).
    pub mod thread {
        pub use std::thread::{
            scope, spawn, yield_now, JoinHandle, Result, Scope, ScopedJoinHandle,
        };
    }
}

#[cfg(not(feature = "model"))]
pub use std_backend::*;
