//! # mh-par
//!
//! The workspace's work-scheduling layer: a scoped worker pool fed from a
//! bounded work queue, built on the workspace sync facade ([`sync`]). PAS
//! archival, segment retrieval, progressive evaluation, solver candidate
//! scoring, and `fsck --deep` all fan out through [`parallel_map`] and
//! friends.
//!
//! Design rules, in priority order:
//!
//! 1. **Determinism.** Results are always assembled in input order, so a
//!    parallel run is bit-identical to the serial one. With one thread no
//!    worker is spawned at all — the closure runs inline, making the serial
//!    path *literally* the sequential code.
//! 2. **No deadlocks on failure.** A panicking worker poisons the queue:
//!    pending work is discarded, the producer unblocks, every worker
//!    drains, and the panic surfaces as [`PoolError::WorkerPanic`] instead
//!    of hanging the scope.
//! 3. **Bounded memory.** The queue holds at most a small multiple of the
//!    thread count, so a fast producer cannot buffer the whole input.
//!
//! Thread-count resolution (first match wins): an explicit `*_threads`
//! argument, the process-wide override set by [`set_threads`] (the CLI
//! `--jobs` flag), the `MH_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`].
//!
//! All shared-state primitives come from [`sync`] — std-backed by
//! default, instrumented for the deterministic model checker under the
//! `model` feature (`cargo test -p mh-par --features model` runs the
//! exhaustive interleaving suites in `model_tests`).

pub mod completion;
pub mod sync;

pub use completion::{CompletionQueue, WakeFlag};

/// The model checker itself, re-exported so downstream crates can write
/// model-checked tests (`mh_par::model::Builder`) without depending on
/// `mh-model` directly.
pub use mh_model as model;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use sync::atomic::{AtomicUsize, Ordering};
use sync::{Condvar, Mutex};

/// Which sync backend this build compiled against: `"std"` (real
/// primitives) or `"model"` (checker-instrumented primitives with a
/// graceful runtime fallback). Surfaced by `modelhub fsck --version`.
pub fn backend() -> &'static str {
    sync::BACKEND
}

/// Pre-register the pool's metric series in the global mh-obs registry so
/// they appear (at zero) in `/metrics` before any parallel work runs.
pub fn register_metrics() {
    let _ = mh_obs::counter!("par_tasks_total");
    let _ = mh_obs::counter!("par_worker_panics_total");
    let _ = mh_obs::gauge!("par_queue_depth");
    let _ = mh_obs::histogram!("par_task_wait_us", mh_obs::DURATION_US_BUCKETS);
    let _ = mh_obs::histogram!("par_task_run_us", mh_obs::DURATION_US_BUCKETS);
    let _ = mh_obs::counter!("par_batched_items_total");
    let _ = mh_obs::counter!("par_batched_chunks_total");
}

/// Errors surfaced by the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker panicked; the payload's message is preserved. Remaining
    /// queued work was discarded, all threads joined.
    WorkerPanic(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Why a [`BoundedQueue::try_push`] did not enqueue; the item comes
/// back in either case.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity — the saturation/backpressure signal.
    Full(T),
    /// The queue was closed (shutdown).
    Closed(T),
}

/// Process-wide thread-count override (0 = unset). Set by `--jobs`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Install (Some) or clear (None) the process-wide thread override. Takes
/// precedence over `MH_THREADS`; an explicit per-call thread count still
/// wins over both.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(
        n.unwrap_or(0).max(usize::from(n.is_some())),
        Ordering::SeqCst,
    );
}

/// The effective worker count: [`set_threads`] override, then `MH_THREADS`,
/// then the machine's available parallelism. Always at least 1.
pub fn current_threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if ov > 0 {
        return ov;
    }
    if let Ok(v) = std::env::var("MH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A blocking bounded MPMC queue: `push` blocks while full, `pop` blocks
/// while empty. Closing wakes everyone; `close_and_discard` additionally
/// drops pending items so a stalled producer can never deadlock against
/// dead consumers.
///
/// The mutex/condvar pairing is one coherent facade implementation
/// (previously a `parking_lot` mutex was paired with a `std` condvar,
/// which only type-checked because the vendored stub re-exported std's
/// guard type). Wake-up discipline: each state transition notifies the
/// one condvar it can satisfy (`not_empty` after push, `not_full` after
/// pop — `notify_one` each, since one transition unblocks at most one
/// waiter), and closing notifies **all** waiters on both sides.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Block until there is room, then enqueue. Returns the item back if
    /// the queue was closed before it could be accepted.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut guard = self.state.lock();
        loop {
            if guard.closed {
                return Err(item);
            }
            if guard.items.len() < self.capacity {
                guard.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            guard = self.not_full.wait(guard);
        }
    }

    /// Nonblocking push: enqueue if there is room, otherwise report why
    /// not — without ever parking the caller. This is the reactor-side
    /// handoff into the pool: a single-threaded event loop must never
    /// block on a full job queue (a full queue is the *saturation
    /// signal* that turns into `503 Retry-After`, not a wait).
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        // mh-audit: allow(R001, try_push never parks — every holder of this mutex does O(1) work and none blocks while holding it, verified by the mh-model checker)
        let mut guard = self.state.lock();
        if guard.closed {
            return Err(TryPushError::Closed(item));
        }
        if guard.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        guard.items.push_back(item);
        drop(guard);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut guard = self.state.lock();
        loop {
            if let Some(item) = guard.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if guard.closed {
                return None;
            }
            guard = self.not_empty.wait(guard);
        }
    }

    /// Close the queue: no further pushes are accepted; consumers drain
    /// what remains and then observe `None`.
    pub fn close(&self) {
        let mut guard = self.state.lock();
        guard.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drop(guard);
    }

    /// Close AND discard pending items — the failure path: consumers stop
    /// immediately, a blocked producer wakes and sees the closure.
    pub fn close_and_discard(&self) {
        let mut guard = self.state.lock();
        guard.closed = true;
        guard.items.clear();
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drop(guard);
    }

    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` with worker-local state, using the given number of
/// worker threads, preserving input order in the output.
///
/// `init` runs once per worker (and once total on the serial path) to build
/// reusable scratch state — e.g. compression buffers — so per-item
/// allocation is amortized away.
///
/// With `threads <= 1` (or at most one item) everything runs inline on the
/// caller's thread in input order: the deterministic serial fallback.
/// Otherwise `threads` workers pull indices from a bounded queue
/// (capacity `4 × threads`); a panicking worker discards pending work and
/// is reported as [`PoolError::WorkerPanic`] after all threads joined.
pub fn parallel_map_init<T, S, R, FI, F>(
    threads: usize,
    items: &[T],
    init: FI,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut scratch = init();
        return Ok(items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item))
            .collect());
    }

    let queue: BoundedQueue<(usize, std::time::Instant)> = BoundedQueue::new(threads * 4);
    let panic_slot: Mutex<Option<String>> = Mutex::new(None);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();

    // Metric handles resolved once per call (and cached per call site);
    // the submitting thread's trace context (trace id + open span) is
    // re-established on the workers, keeping traces connected across the
    // pool and across processes.
    let parent_ctx = mh_obs::current_context();
    let tasks = mh_obs::counter!("par_tasks_total");
    let panics = mh_obs::counter!("par_worker_panics_total");
    let depth = mh_obs::gauge!("par_queue_depth");
    let wait_hist = mh_obs::histogram!("par_task_wait_us", mh_obs::DURATION_US_BUCKETS);
    let run_hist = mh_obs::histogram!("par_task_run_us", mh_obs::DURATION_US_BUCKETS);

    let worker_outputs: Result<Vec<Vec<(usize, R)>>, PoolError> = sync::thread::scope(|s| {
        let queue = &queue;
        let panic_slot = &panic_slot;
        let f = &f;
        let init = &init;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    // `init` may itself panic; treat it like a task panic.
                    let mut scratch = match catch_unwind(AssertUnwindSafe(init)) {
                        Ok(sc) => Some(sc),
                        Err(p) => {
                            panics.inc();
                            *panic_slot.lock() = Some(panic_message(p));
                            queue.close_and_discard();
                            None
                        }
                    };
                    while let Some((i, enqueued)) = queue.pop() {
                        depth.sub(1);
                        let Some(scratch) = scratch.as_mut() else {
                            continue;
                        };
                        let Some(item) = items.get(i) else {
                            continue;
                        };
                        tasks.inc();
                        wait_hist.observe(enqueued.elapsed().as_micros() as f64);
                        let run_start = sync::now();
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            mh_obs::with_context(parent_ctx, || f(scratch, i, item))
                        }));
                        match out {
                            Ok(r) => {
                                run_hist.observe(run_start.elapsed().as_micros() as f64);
                                local.push((i, r));
                            }
                            Err(p) => {
                                panics.inc();
                                let mut slot = panic_slot.lock();
                                if slot.is_none() {
                                    *slot = Some(panic_message(p));
                                }
                                drop(slot);
                                queue.close_and_discard();
                            }
                        }
                    }
                    local
                })
            })
            .collect();

        // Produce indices; a closed (poisoned) queue stops us early. The
        // enqueue timestamp feeds the task-wait histogram.
        for i in 0..items.len() {
            if queue.push((i, sync::now())).is_err() {
                break;
            }
            depth.add(1);
        }
        queue.close();

        let mut outputs = Vec::with_capacity(threads);
        for h in handles {
            match h.join() {
                Ok(local) => outputs.push(local),
                // A panic that escaped catch_unwind (e.g. in the local
                // Vec) still surfaces as an error, never a deadlock.
                Err(p) => {
                    panics.inc();
                    let mut slot = panic_slot.lock();
                    if slot.is_none() {
                        *slot = Some(panic_message(p));
                    }
                }
            }
        }
        if let Some(msg) = panic_slot.lock().take() {
            return Err(PoolError::WorkerPanic(msg));
        }
        Ok(outputs)
    });

    // The failure path discards queued items wholesale, so the running
    // add/sub bookkeeping can be left nonzero; the queue is gone either way.
    depth.set(0);

    for (i, r) in worker_outputs?.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(r);
        }
    }
    // Every index was produced and no worker failed, so every slot is full.
    slots
        .into_iter()
        .collect::<Option<Vec<R>>>()
        .ok_or_else(|| PoolError::WorkerPanic("result slot left unfilled".into()))
}

/// [`parallel_map_init`] without worker-local state.
pub fn parallel_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_init(threads, items, || (), |(), i, item| f(i, item))
}

/// [`parallel_map_threads`] at the ambient thread count
/// ([`current_threads`]).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_threads(current_threads(), items, f)
}

/// Default per-task payload budget for the batched maps. Each queue task
/// carries at least this many payload bytes (except possibly the final
/// remainder chunk), so the per-task costs — one bounded-queue
/// push/pop with its mutex/condvar traffic, one wait-histogram
/// timestamp, one catch_unwind frame — are amortized over a quarter
/// megabyte of real work instead of being paid per matrix plane.
pub const DEFAULT_BATCH_BYTES: usize = 256 * 1024;

/// The effective batch budget: the `MH_BATCH_BYTES` environment
/// variable when set to a positive integer, else
/// [`DEFAULT_BATCH_BYTES`]. Tunable so perf investigations can sweep
/// the batch size without a rebuild.
pub fn batch_bytes() -> usize {
    if let Ok(v) = std::env::var("MH_BATCH_BYTES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    DEFAULT_BATCH_BYTES
}

/// Greedy contiguous chunking by byte weight: accumulate items left to
/// right, closing a chunk as soon as it carries `budget` bytes. The
/// boundaries depend only on the items and the budget — never on the
/// thread count — and chunks partition `0..items.len()` in order.
fn chunk_by_bytes<T, W: Fn(&T) -> usize>(
    items: &[T],
    weight: &W,
    budget: usize,
) -> Vec<std::ops::Range<usize>> {
    let budget = budget.max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, item) in items.iter().enumerate() {
        acc = acc.saturating_add(weight(item));
        if acc >= budget {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < items.len() {
        out.push(start..items.len());
    }
    out
}

/// [`parallel_map_init`] with byte-budgeted task batching: instead of
/// one queue task per item, contiguous runs of items are coalesced into
/// chunks of at least `budget` payload bytes (per `weight`), and each
/// chunk is one task. A worker maps its chunk left to right with its
/// local scratch, and chunk outputs are flattened in chunk order — so
/// the output is in input order and bit-identical to the serial path at
/// any thread count, exactly like [`parallel_map_init`].
///
/// When only one chunk results (small total payload) or `threads <= 1`,
/// everything runs inline on the caller's thread: tiny workloads never
/// pay for the pool at all.
pub fn parallel_map_batched_with<T, S, R, W, FI, F>(
    threads: usize,
    items: &[T],
    budget: usize,
    weight: W,
    init: FI,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let chunks = chunk_by_bytes(items, &weight, budget);
    if threads == 1 || chunks.len() <= 1 {
        let mut scratch = init();
        return Ok(items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item))
            .collect());
    }
    mh_obs::counter!("par_batched_items_total").add(items.len() as u64);
    mh_obs::counter!("par_batched_chunks_total").add(chunks.len() as u64);
    let nested = parallel_map_init(threads, &chunks, init, |scratch, _, range| {
        let base = range.start;
        items
            .get(range.clone())
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .map(|(k, item)| f(scratch, base + k, item))
            .collect::<Vec<R>>()
    })?;
    Ok(nested.into_iter().flatten().collect())
}

/// [`parallel_map_batched_with`] at the ambient batch budget
/// ([`batch_bytes`]).
pub fn parallel_map_batched_init<T, S, R, W, FI, F>(
    threads: usize,
    items: &[T],
    weight: W,
    init: FI,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    parallel_map_batched_with(threads, items, batch_bytes(), weight, init, f)
}

/// [`parallel_map_batched_init`] without worker-local state.
pub fn parallel_map_batched<T, R, W, F>(
    threads: usize,
    items: &[T],
    weight: W,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_batched_init(threads, items, weight, || (), |(), i, item| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use sync::atomic::AtomicBool;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map_threads(threads, &items, |_, &x| x * 3 + 1).unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let got = parallel_map_threads(8, &Vec::<u32>::new(), |_, &x| x).unwrap();
        assert!(got.is_empty());
        let got = parallel_map_threads(8, &[41], |_, &x| x + 1).unwrap();
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn worker_local_state_is_reused() {
        // Count inits: must be <= threads, not per-item.
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let got = parallel_map_init(
            4,
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u8>::with_capacity(64)
            },
            |buf, _, &x| {
                buf.clear();
                buf.extend_from_slice(&x.to_le_bytes());
                buf.len()
            },
        )
        .unwrap();
        assert!(got.iter().all(|&l| l == 8));
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn panic_in_worker_surfaces_as_error_not_deadlock() {
        // More items than queue capacity so the producer would block
        // forever if the poisoned queue did not discard pending work.
        let items: Vec<usize> = (0..10_000).collect();
        let err = parallel_map_threads(2, &items, |_, &x| {
            if x == 3 {
                panic!("injected failure at {x}");
            }
            x
        })
        .unwrap_err();
        let PoolError::WorkerPanic(msg) = err;
        assert!(msg.contains("injected failure"), "got: {msg}");
    }

    #[test]
    fn panic_in_init_surfaces_as_error() {
        let items: Vec<usize> = (0..1000).collect();
        let err = parallel_map_init(
            3,
            &items,
            || -> usize { panic!("init exploded") },
            |_, _, &x| x,
        )
        .unwrap_err();
        let PoolError::WorkerPanic(msg) = err;
        assert!(msg.contains("init exploded"), "got: {msg}");
    }

    #[test]
    fn serial_fallback_runs_inline() {
        // With one thread the closure must run on the calling thread.
        let caller = std::thread::current().id();
        let same = parallel_map_threads(1, &[0u8; 4], |_, _| std::thread::current().id() == caller)
            .unwrap();
        assert!(same.iter().all(|&b| b));
    }

    #[test]
    fn bounded_queue_blocks_and_drains() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        let full = AtomicBool::new(false);
        sync::thread::scope(|s| {
            let q = &q;
            let full = &full;
            let h = s.spawn(move || {
                q.push(3).unwrap(); // blocks until a pop
                full.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(!full.load(Ordering::SeqCst), "push must block while full");
            assert_eq!(q.pop(), Some(1));
            h.join().unwrap();
        });
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        q.close();
        assert_eq!(q.pop(), None);
        assert!(q.push(9).is_err(), "closed queue rejects pushes");
    }

    #[test]
    fn try_push_reports_full_and_closed_without_blocking() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1).is_ok());
        match q.try_push(2) {
            Err(TryPushError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        q.close();
        match q.try_push(4) {
            Err(TryPushError::Closed(v)) => assert_eq!(v, 4),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(3), "closed queue still drains");
    }

    #[test]
    fn close_and_discard_unblocks_producer() {
        let q = BoundedQueue::new(1);
        q.push(0).unwrap();
        sync::thread::scope(|s| {
            let q = &q;
            let h = s.spawn(move || q.push(1)); // blocked: queue full
            std::thread::sleep(Duration::from_millis(20));
            q.close_and_discard();
            assert!(h.join().unwrap().is_err(), "producer must wake with Err");
        });
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wakeup_semantics_one_notify_per_transition() {
        // Pin the queue's wake-up discipline on the facade primitives:
        // each push's notify_one wakes a distinct parked consumer (two
        // pushes satisfy two waiters — no lost wakeup), each pop's
        // notify_one wakes a distinct parked producer, and close wakes
        // *all* remaining waiters at once.
        let q = BoundedQueue::new(4);
        sync::thread::scope(|s| {
            let c1 = s.spawn(|| q.pop());
            let c2 = s.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.push(1).unwrap();
            q.push(2).unwrap();
            let mut got = vec![c1.join().unwrap(), c2.join().unwrap()];
            got.sort();
            assert_eq!(got, vec![Some(1), Some(2)]);
            let c3 = s.spawn(|| q.pop());
            let c4 = s.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(c3.join().unwrap(), None, "close wakes every consumer");
            assert_eq!(c4.join().unwrap(), None, "close wakes every consumer");
        });

        let q = BoundedQueue::new(1);
        q.push(10).unwrap();
        sync::thread::scope(|s| {
            let p1 = s.spawn(|| q.push(11));
            let p2 = s.spawn(|| q.push(12));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(10));
            let a = q.pop().unwrap(); // wakes the second producer
            assert!(p1.join().unwrap().is_ok(), "pop must wake producer 1");
            assert!(p2.join().unwrap().is_ok(), "pop must wake producer 2");
            let b = q.pop().unwrap();
            let mut got = vec![a, b];
            got.sort();
            assert_eq!(got, vec![11, 12]);
        });
    }

    #[test]
    fn chunks_close_exactly_at_the_byte_budget() {
        // Four 128-byte items against a 256-byte budget: two chunks of
        // two; the boundary lands exactly where the budget fills.
        let items = [128usize; 4];
        let got = chunk_by_bytes(&items, &|&w| w, 256);
        assert_eq!(got, vec![0..2, 2..4]);
        // Off-by-one above the budget: the third item starts a new chunk.
        let items = [129usize, 128, 128];
        let got = chunk_by_bytes(&items, &|&w| w, 256);
        assert_eq!(got, vec![0..2, 2..3]);
    }

    #[test]
    fn oversized_and_zero_weight_items_chunk_sanely() {
        // An item larger than the whole budget closes its chunk at once.
        let items = [1usize, 600, 1, 700, 1];
        let got = chunk_by_bytes(&items, &|&w| w, 256);
        assert_eq!(got, vec![0..2, 2..4, 4..5]);
        // All-zero weights never fill the budget: one remainder chunk.
        let items = [0usize; 9];
        let got = chunk_by_bytes(&items, &|&w| w, 256);
        assert_eq!(got, vec![0..9]);
        // Empty input produces no chunks.
        assert!(chunk_by_bytes(&Vec::<usize>::new(), &|&w| w, 256).is_empty());
    }

    #[test]
    fn chunks_partition_the_input_in_order() {
        let items: Vec<usize> = (0..97).map(|i| (i * 37) % 90).collect();
        for budget in [1, 7, 64, 1000, usize::MAX] {
            let chunks = chunk_by_bytes(&items, &|&w| w, budget);
            let mut next = 0usize;
            for c in &chunks {
                assert_eq!(c.start, next, "budget={budget}");
                assert!(c.end > c.start, "budget={budget}");
                next = c.end;
            }
            assert_eq!(next, items.len(), "budget={budget}");
        }
    }

    #[test]
    fn batched_map_matches_serial_across_widths_and_budgets() {
        // Payloads straddling the byte budget, single-item batches
        // (budget 1), and one giant chunk (budget MAX) must all produce
        // the exact serial output at every thread count.
        let items: Vec<u64> = (0..311).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7 + 5).collect();
        for budget in [1usize, 8, 64, 1 << 20, usize::MAX] {
            for threads in [1, 2, 3, 8] {
                let got = parallel_map_batched_with(
                    threads,
                    &items,
                    budget,
                    |_| 16,
                    || (),
                    |(), _, &x| x * 7 + 5,
                )
                .unwrap();
                assert_eq!(got, expect, "threads={threads} budget={budget}");
            }
        }
    }

    #[test]
    fn batched_map_reuses_worker_scratch_and_reports_panics() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..200).collect();
        let got = parallel_map_batched_with(
            4,
            &items,
            4, // 1-byte items, 4-byte budget: 50 chunks
            |_| 1,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u64
            },
            |acc, _, &x| {
                *acc += 1;
                x + 1
            },
        )
        .unwrap();
        assert_eq!(got, (1..=200).collect::<Vec<_>>());
        assert!(inits.load(Ordering::SeqCst) <= 4);

        let err = parallel_map_batched_with(
            2,
            &items,
            1,
            |_| 1,
            || (),
            |(), _, &x| {
                if x == 7 {
                    panic!("batched task failed at {x}");
                }
                x
            },
        )
        .unwrap_err();
        let PoolError::WorkerPanic(msg) = err;
        assert!(msg.contains("batched task failed"), "got: {msg}");
    }

    #[test]
    fn single_chunk_batched_map_runs_inline() {
        // A payload under the budget collapses to the serial path: the
        // closure runs on the calling thread, no pool is spun up.
        let caller = std::thread::current().id();
        let same = parallel_map_batched_with(
            8,
            &[0u8; 16],
            usize::MAX,
            |_| 1,
            || (),
            |(), _, _| std::thread::current().id() == caller,
        )
        .unwrap();
        assert!(same.iter().all(|&b| b));
    }

    #[test]
    fn batch_bytes_env_override() {
        // Note: process-global env; keep writes confined to this test.
        std::env::set_var("MH_BATCH_BYTES", "4096");
        assert_eq!(batch_bytes(), 4096);
        std::env::set_var("MH_BATCH_BYTES", "not-a-number");
        assert_eq!(batch_bytes(), DEFAULT_BATCH_BYTES);
        std::env::remove_var("MH_BATCH_BYTES");
        assert_eq!(batch_bytes(), DEFAULT_BATCH_BYTES);
    }

    #[test]
    fn thread_resolution_precedence() {
        // Explicit argument beats everything (exercised throughout); the
        // override beats the environment.
        set_threads(Some(3));
        assert_eq!(current_threads(), 3);
        set_threads(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn backend_matches_feature() {
        if cfg!(feature = "model") {
            assert_eq!(backend(), "model");
        } else {
            assert_eq!(backend(), "std");
        }
    }
}

/// Exhaustive interleaving suites, run under the deterministic model
/// checker: `cargo test -p mh-par --features model`. Each test body is
/// executed once per schedule; `Stats::complete` asserts the (preemption-
/// bounded) schedule space was exhausted, not sampled.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn model_bounded_queue_2p2c_exhaustive() {
        // 2 producers / 2 consumers over a capacity-1 queue: producers
        // must block on the full queue and be woken by pops; every
        // consumer gets exactly one item. Preemption bound 2, exhaustive.
        // The bound-2 schedule space measures 174,566 interleavings
        // (~35s in release); the cap is headroom, not a truncation —
        // `stats.complete` below asserts nothing was cut off.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .max_iterations(400_000)
            .try_check(|| {
                let q = Arc::new(BoundedQueue::new(1));
                let mut producers = Vec::new();
                for v in 0..2u32 {
                    let q2 = Arc::clone(&q);
                    producers.push(sync::thread::spawn(move || {
                        q2.push(v).expect("queue is never closed");
                    }));
                }
                let mut consumers = Vec::new();
                for _ in 0..2 {
                    let q2 = Arc::clone(&q);
                    consumers.push(sync::thread::spawn(move || q2.pop()));
                }
                for h in producers {
                    h.join().expect("producer");
                }
                let mut got: Vec<u32> = consumers
                    .into_iter()
                    .map(|h| h.join().expect("consumer").expect("one item each"))
                    .collect();
                got.sort();
                assert_eq!(got, vec![0, 1], "every pushed item is popped once");
            })
            .expect("no deadlock or race in push/pop");
        assert!(stats.complete, "exploration must be exhaustive: {stats:?}");
        assert!(
            stats.iterations > 10,
            "nontrivial schedule space: {stats:?}"
        );
    }

    #[test]
    fn model_queue_close_vs_pop() {
        // close() racing pop(): the consumer either drains the item or
        // observes the closure — it never hangs.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let q = Arc::new(BoundedQueue::new(2));
                let q2 = Arc::clone(&q);
                let consumer = sync::thread::spawn(move || q2.pop());
                let q3 = Arc::clone(&q);
                let producer = sync::thread::spawn(move || {
                    let _ = q3.push(7);
                    q3.close();
                });
                producer.join().expect("producer");
                let got = consumer.join().expect("consumer never hangs");
                assert!(got == Some(7) || got.is_none());
            })
            .expect("close vs pop never deadlocks");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn model_close_and_discard_unblocks_producer() {
        // The poison path: a producer blocked on a full queue must be
        // woken with Err by close_and_discard in every schedule.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let q = Arc::new(BoundedQueue::new(1));
                q.push(0).expect("open");
                let q2 = Arc::clone(&q);
                let producer = sync::thread::spawn(move || q2.push(1));
                let q3 = Arc::clone(&q);
                let killer = sync::thread::spawn(move || q3.close_and_discard());
                killer.join().expect("killer");
                let res = producer.join().expect("producer woke up");
                if let Ok(()) = res {
                    // Legal: the push landed before the discard.
                }
                assert_eq!(q.pop(), None, "discarded queue is empty");
            })
            .expect("blocked producer is always woken");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn model_worker_panic_never_deadlocks() {
        // The real worker-panic path through parallel_map: a panicking
        // task poisons the queue; the pool must surface WorkerPanic —
        // never hang — in every explored schedule.
        let stats = mh_model::Builder::new()
            .preemption_bound(1)
            .try_check(|| {
                let items: Vec<usize> = (0..3).collect();
                let err = parallel_map_threads(2, &items, |_, &x| {
                    if x == 0 {
                        panic!("injected worker failure");
                    }
                    x
                })
                .expect_err("the injected panic must surface");
                let PoolError::WorkerPanic(msg) = err;
                assert!(msg.contains("injected worker failure"), "{msg}");
            })
            .expect("worker panic never deadlocks");
        assert!(stats.iterations > 1, "{stats:?}");
    }

    #[test]
    fn model_parallel_map_result_correct_under_interleaving() {
        let stats = mh_model::Builder::new()
            .preemption_bound(1)
            .try_check(|| {
                let items: Vec<u32> = (0..3).collect();
                let got = parallel_map_threads(2, &items, |_, &x| x * 2).expect("no worker fails");
                assert_eq!(got, vec![0, 2, 4], "order preserved in every schedule");
            })
            .expect("no race in result assembly");
        assert!(stats.iterations >= 1, "{stats:?}");
    }

    #[test]
    fn model_set_threads_vs_reader_race() {
        // set_threads racing current_threads(): the reader sees either
        // the old or the new value, never garbage, and the override wins
        // once both threads join.
        let stats = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(|| {
                let setter = sync::thread::spawn(|| set_threads(Some(2)));
                let reader = sync::thread::spawn(current_threads);
                let seen = reader.join().expect("reader");
                assert!(seen >= 1, "thread count is always sane, got {seen}");
                setter.join().expect("setter");
                assert_eq!(current_threads(), 2, "override visible after join");
                set_threads(None);
            })
            .expect("no race in the override");
        assert!(stats.complete, "{stats:?}");
    }

    // ---- seeded racy fixture + replay-trace regression --------------

    /// A deliberately broken use of the queue: each pusher checks
    /// `len()` and then pushes, without holding the lock across the
    /// check — the classic TOCTOU that `BoundedQueue::push` itself
    /// avoids by deciding under the lock. When both pushers pass the
    /// stale check, `push` (which does enforce capacity) blocks the
    /// loser on a full queue nobody ever drains — the race manifests as
    /// a lost-progress hang, which the checker reports as an `M001`
    /// deadlock with a replayable schedule. Used as the checker's
    /// negative self-check (CI asserts this is caught) and as the
    /// replay-trace regression fixture.
    fn racy_overfill_fixture() {
        let q = Arc::new(BoundedQueue::new(1));
        let mut handles = Vec::new();
        for v in 0..2u32 {
            let q2 = Arc::clone(&q);
            handles.push(sync::thread::spawn(move || {
                // BUG (seeded): check-then-act without atomicity.
                if q2.len() < 1 {
                    q2.push(v).expect("fixture queue stays open");
                }
            }));
        }
        for h in handles {
            h.join().expect("pusher");
        }
    }

    #[test]
    fn model_racy_fixture_is_caught() {
        let failure = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(racy_overfill_fixture)
            .expect_err("the seeded TOCTOU race must be found");
        assert_eq!(failure.kind, mh_model::FailureKind::Deadlock, "{failure}");
        assert_eq!(failure.kind.code(), "M001", "{failure}");
        assert!(
            !failure.schedule.is_empty(),
            "failing schedule must be replayable: {failure}"
        );
        assert!(
            failure.to_string().contains("MH_MODEL_REPLAY="),
            "{failure}"
        );
    }

    #[test]
    fn model_racy_fixture_replays_from_trace() {
        // The replay-trace regression: re-running the reported decision
        // string reproduces the failure in exactly one execution.
        let failure = mh_model::Builder::new()
            .preemption_bound(2)
            .try_check(racy_overfill_fixture)
            .expect_err("race found");
        let replayed = mh_model::Builder::new()
            .try_replay(&failure.schedule, racy_overfill_fixture)
            .expect_err("replay must reproduce the failure");
        assert_eq!(replayed.kind, failure.kind);
        assert_eq!(replayed.schedule, failure.schedule);
        assert_eq!(replayed.iteration, 1, "reproduced on the first run");
    }

    #[test]
    fn model_lock_order_inversion_is_flagged() {
        // The injected A/B–B/A acceptance fixture, at the facade level.
        let failure = mh_model::Builder::new()
            .try_check(|| {
                let a = Arc::new(sync::Mutex::new(()));
                let b = Arc::new(sync::Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                sync::thread::spawn(move || {
                    let _g1 = a2.lock();
                    let _g2 = b2.lock();
                })
                .join()
                .expect("first order");
                sync::thread::spawn(move || {
                    let _g1 = b.lock();
                    let _g2 = a.lock();
                })
                .join()
                .expect("second order");
            })
            .expect_err("inversion must be flagged");
        assert_eq!(
            failure.kind,
            mh_model::FailureKind::LockOrderCycle,
            "{failure}"
        );
    }
}
