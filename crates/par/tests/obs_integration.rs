//! Observability integration with the worker pool: counters incremented
//! from many workers lose no updates, worker spans re-parent under the
//! submitting span across threads, and the pool's own series are recorded.

use mh_par::parallel_map_threads;

/// Hammer one global counter from pool workers across thread counts; the
/// final value must equal the exact number of increments (no lost updates).
#[test]
fn concurrent_counter_increments_from_workers_lose_nothing() {
    let c = mh_obs::counter!("par_it_concurrency_total");
    let items: Vec<usize> = (0..4000).collect();
    let before = c.get();
    for threads in [2, 4, 8] {
        parallel_map_threads(threads, &items, |_, _| {
            c.inc();
        })
        .expect("map succeeds");
    }
    assert_eq!(c.get() - before, 3 * items.len() as u64);
}

/// Spans opened inside pool workers attach under the span that submitted
/// the work, even though they run on different threads.
#[test]
fn span_nesting_crosses_pool_threads() {
    let _g = mh_obs::test_trace_lock();
    mh_obs::enable_capture();
    let items: Vec<usize> = (0..64).collect();
    {
        let _submit = mh_obs::span("parit.submit");
        parallel_map_threads(4, &items, |_, _| {
            let _task = mh_obs::span("parit.task");
        })
        .expect("map succeeds");
    }
    let records = mh_obs::drain_capture();
    mh_obs::disable();

    let submit = records
        .iter()
        .find(|r| r.name == "parit.submit")
        .expect("submit span recorded");
    let tasks: Vec<_> = records.iter().filter(|r| r.name == "parit.task").collect();
    assert_eq!(tasks.len(), items.len());
    assert!(
        tasks.iter().all(|t| t.parent == submit.id),
        "every worker span must parent under the submitting span"
    );
    // The work genuinely ran on multiple threads. Only asserted on the
    // std backend: the model backend's runtime-fallback primitives are
    // spin-based, so a single worker legitimately drains all 64 trivial
    // tasks before the other workers win a first pop.
    #[cfg(not(feature = "model"))]
    {
        let threads: std::collections::HashSet<u64> = tasks.iter().map(|t| t.thread).collect();
        assert!(threads.len() > 1, "expected >1 worker thread");
    }
    // And the profile tree nests the tasks under the submit span.
    let tree = mh_obs::build_profile(&records);
    let root = tree
        .iter()
        .find(|n| n.name == "parit.submit")
        .expect("submit is a root");
    let task_node = root
        .children
        .iter()
        .find(|n| n.name == "parit.task")
        .expect("tasks nested under submit");
    assert_eq!(task_node.count, items.len() as u64);
}

/// The pool records its task counter and wait/run histograms, and counts
/// worker panics.
#[test]
fn pool_metrics_are_recorded() {
    mh_par::register_metrics();
    let tasks = mh_obs::counter!("par_tasks_total");
    let run_hist = mh_obs::histogram!("par_task_run_us", mh_obs::DURATION_US_BUCKETS);
    let wait_hist = mh_obs::histogram!("par_task_wait_us", mh_obs::DURATION_US_BUCKETS);
    let panics = mh_obs::counter!("par_worker_panics_total");

    let (t0, r0, w0) = (tasks.get(), run_hist.count(), wait_hist.count());
    let items: Vec<usize> = (0..100).collect();
    parallel_map_threads(3, &items, |_, &x| x * 2).expect("map succeeds");
    assert_eq!(tasks.get() - t0, 100);
    assert_eq!(run_hist.count() - r0, 100);
    assert_eq!(wait_hist.count() - w0, 100);

    let p0 = panics.get();
    let err = parallel_map_threads(2, &items, |_, &x| {
        if x == 5 {
            panic!("boom");
        }
        x
    });
    assert!(err.is_err());
    assert!(panics.get() > p0, "panic counter must advance");
}
