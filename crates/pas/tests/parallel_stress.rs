//! Parallel archival/retrieval stress: the mh-par fan-out in
//! `SegmentStore::create`, `recreate_group_parallel` and the progressive
//! paths must be invisible — bit-identical stores and matrices at every
//! thread count — and a failing worker must surface an error, never a
//! deadlock or a poisoned caller.
//!
//! All thread-count sweeps live in ONE #[test] because the worker-pool
//! width (`mh_par::set_threads`) is process-global and the libtest harness
//! runs tests concurrently; the error-path tests below only touch
//! explicit-width APIs or a store that fails identically at any width.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_compress::Level;
use mh_delta::{bit_equal, DeltaOp};
use mh_pas::{solver, CostModel, GraphBuilder, PasError, SegmentStore, StorageGraph, VertexId};
use mh_tensor::Matrix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-parstress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Three snapshots of a small model, version-chained: enough structure for
/// materialize + delta edges on every recreation chain.
fn build_graph() -> (StorageGraph, BTreeMap<VertexId, Matrix>) {
    let mut b = GraphBuilder::new(CostModel::default());
    let net = mh_dnn::zoo::lenet_s(3);
    let w0 = mh_dnn::Weights::init(&net, 7).unwrap();
    let w1: mh_dnn::Weights = w0
        .layers()
        .map(|(n, m)| (n.clone(), m.map(|x| x * 0.99 + 3e-4)))
        .collect();
    let w2: mh_dnn::Weights = w1
        .layers()
        .map(|(n, m)| (n.clone(), m.map(|x| x * 1.01 - 2e-4)))
        .collect();
    b.add_snapshot("v", 0, &w0);
    b.add_snapshot("v", 1, &w1);
    b.add_snapshot("v", 2, &w2);
    b.link_version_chain("v", &[0, 1, 2]);
    let (g, mats) = b.finish();
    (g, mats)
}

/// Sorted (file name, contents) of a store directory.
type StoreFingerprint = Vec<(String, Vec<u8>)>;

fn dir_fingerprint(dir: &Path) -> StoreFingerprint {
    let mut entries: StoreFingerprint = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn archival_and_retrieval_bit_identical_across_thread_counts_and_batch_budgets() {
    let (graph, mats) = build_graph();
    let plan = solver::mst(&graph).unwrap();
    let verts: Vec<VertexId> = graph.matrix_vertices().collect();

    // Budget sweep straddles the batching boundaries: 1 byte forces one
    // chunk per item (maximum fan-out, a boundary after every matrix),
    // 4096 lands chunk boundaries mid-snapshot, and None is the default
    // quarter-megabyte budget (this workload coalesces to few chunks).
    // This test binary is its own process and these are the only tests
    // that read the env var, so the writes below race nothing.
    let mut baseline: Option<(StoreFingerprint, Vec<Matrix>)> = None;
    for budget in [Some("1"), Some("4096"), None] {
        match budget {
            Some(b) => std::env::set_var("MH_BATCH_BYTES", b),
            None => std::env::remove_var("MH_BATCH_BYTES"),
        }
        for threads in [1usize, 2, 8] {
            mh_par::set_threads(Some(threads));
            let dir = temp_dir(&format!("sweep-{threads}-{}", budget.unwrap_or("def")));
            let store = SegmentStore::create(&dir, &graph, &plan, &mats, DeltaOp::Sub, Level::Fast)
                .unwrap();
            let files = dir_fingerprint(&dir);
            let group = store.recreate_group_parallel(&verts).unwrap();
            // Per-vertex retrieval agrees with the group path at this width.
            for (m, &v) in group.iter().zip(&verts) {
                assert!(
                    bit_equal(m, &store.recreate(v).unwrap()),
                    "group vs single retrieval diverged at {threads} threads"
                );
            }
            match &baseline {
                None => baseline = Some((files, group)),
                Some((base_files, base_group)) => {
                    assert_eq!(
                        base_files, &files,
                        "store layout differs at {threads} threads, budget {budget:?}"
                    );
                    for (a, b) in base_group.iter().zip(&group) {
                        assert!(
                            bit_equal(a, b),
                            "retrieved matrices differ at {threads} threads, budget {budget:?}"
                        );
                    }
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    std::env::remove_var("MH_BATCH_BYTES");
    mh_par::set_threads(None);
}

#[test]
fn failing_worker_surfaces_error_not_deadlock() {
    // A chunk deleted after create makes some recreation chains fail inside
    // pool workers. The parallel group call must return Err (not hang, not
    // panic), at an explicit width so the process-global stays untouched.
    let (graph, mats) = build_graph();
    let plan = solver::mst(&graph).unwrap();
    let verts: Vec<VertexId> = graph.matrix_vertices().collect();
    let dir = temp_dir("worker-fail");
    let store =
        SegmentStore::create(&dir, &graph, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "mhz") {
            std::fs::remove_file(&p).unwrap();
        }
    }
    let err = store.recreate_group_parallel(&verts).unwrap_err();
    assert!(
        matches!(
            err,
            PasError::Io(_) | PasError::Corrupt(_) | PasError::Parallel(_)
        ),
        "unexpected error kind: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_panic_propagates_through_pool_with_pas_error_conversion() {
    // Drive the pool directly with a panicking closure over PAS inputs and
    // check the PasError::from conversion the archival paths rely on: the
    // producer must not deadlock and the panic message must survive.
    let (graph, _) = build_graph();
    let verts: Vec<VertexId> = graph.matrix_vertices().collect();
    assert!(verts.len() >= 8, "need enough items to keep the queue busy");
    let result = mh_par::parallel_map_threads(4, &verts, |i, &v| {
        if i == verts.len() / 2 {
            panic!("injected failure on vertex {v}");
        }
        v
    });
    let err = PasError::from(result.unwrap_err());
    let msg = err.to_string();
    assert!(
        msg.contains("injected failure"),
        "panic payload lost in transit: {msg}"
    );
    assert!(matches!(err, PasError::Parallel(_)));
}
