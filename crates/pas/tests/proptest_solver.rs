//! Property tests for the archival solvers on random storage graphs.
//!
//! Invariants checked:
//! * every solver returns a structurally valid spanning plan;
//! * no plan's storage cost beats the MST's (MST optimality);
//! * no plan's per-vertex recreation cost beats the SPT's (SPT optimality);
//! * with budgets set at α ≥ 1 times the SPT group costs, PAS-MT and
//!   PAS-PT always return feasible plans (the SPT is a feasible witness);
//! * LAST respects its (1+ε) path guarantee.

use mh_pas::{apply_alpha_budgets, solver, EdgeKind, RetrievalScheme, StorageGraph, NULL_VERTEX};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomGraphSpec {
    n: usize,
    // (from, to, storage, recreation) candidate deltas.
    deltas: Vec<(usize, usize, f64, f64)>,
    // per-vertex materialize costs.
    materialize: Vec<(f64, f64)>,
    // group assignment per vertex (group id).
    groups: Vec<u8>,
}

fn arb_graph() -> impl Strategy<Value = RandomGraphSpec> {
    (2usize..12).prop_flat_map(|n| {
        let mats = proptest::collection::vec((1.0f64..100.0, 0.5f64..50.0), n);
        let deltas = proptest::collection::vec((0..n, 0..n, 0.5f64..60.0, 0.1f64..30.0), 0..n * 3);
        let groups = proptest::collection::vec(0u8..4, n);
        (Just(n), deltas, mats, groups).prop_map(|(n, deltas, materialize, groups)| {
            RandomGraphSpec {
                n,
                deltas,
                materialize,
                groups,
            }
        })
    })
}

fn build(spec: &RandomGraphSpec) -> StorageGraph {
    let mut g = StorageGraph::new();
    let vs: Vec<_> = (0..spec.n)
        .map(|i| g.add_vertex(&format!("m{i}")))
        .collect();
    for (v, &(cs, cr)) in vs.iter().zip(&spec.materialize) {
        g.add_edge(NULL_VERTEX, *v, EdgeKind::Materialize, cs, cr);
    }
    for &(a, b, cs, cr) in &spec.deltas {
        if a != b {
            g.add_edge(vs[a], vs[b], EdgeKind::Delta, cs, cr);
        }
    }
    // Groups from the assignment vector.
    for gid in 0..4u8 {
        let members: Vec<_> = vs
            .iter()
            .zip(&spec.groups)
            .filter(|(_, &g)| g == gid)
            .map(|(&v, _)| v)
            .collect();
        if !members.is_empty() {
            g.add_snapshot(&format!("g{gid}"), members, f64::INFINITY);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_invariants(spec in arb_graph(), alpha in 1.0f64..4.0) {
        let mut graph = build(&spec);
        let scheme = RetrievalScheme::Independent;

        let mst = solver::mst(&graph).expect("complete graph spans");
        let spt = solver::spt(&graph).expect("complete graph spans");
        mst.validate(&graph).unwrap();
        spt.validate(&graph).unwrap();

        // SPT recreation optimality per vertex.
        for v in graph.matrix_vertices() {
            prop_assert!(
                spt.matrix_recreation_cost(&graph, v)
                    <= mst.matrix_recreation_cost(&graph, v) + 1e-9
            );
        }

        apply_alpha_budgets(&mut graph, alpha, scheme).unwrap();
        let mt = solver::pas_mt(&graph, scheme).expect("solvable");
        let pt = solver::pas_pt(&graph, scheme).expect("solvable");
        mt.validate(&graph).unwrap();
        pt.validate(&graph).unwrap();

        // MST storage optimality.
        for plan in [&mt, &pt, &spt] {
            prop_assert!(plan.storage_cost(&graph) >= mst.storage_cost(&graph) - 1e-9);
        }
        // Feasibility: the SPT satisfies α ≥ 1 budgets by construction, so
        // the heuristics must too.
        prop_assert!(spt.satisfies_budgets(&graph, scheme));
        prop_assert!(
            mt.satisfies_budgets(&graph, scheme),
            "PAS-MT infeasible at alpha={} costs={:?} budgets={:?}",
            alpha,
            mt.all_snapshot_costs(&graph, scheme),
            graph.snapshots.iter().map(|s| s.budget).collect::<Vec<_>>()
        );
        prop_assert!(pt.satisfies_budgets(&graph, scheme));
        // (No claim that MT/PT beat the SPT on storage: the greedy repair
        // optimizes marginal gain, not the global optimum — `dlv archive`
        // runs both heuristics and keeps the better plan for this reason.)
    }

    #[test]
    fn parallel_scheme_invariants(spec in arb_graph(), alpha in 1.0f64..3.0) {
        let mut graph = build(&spec);
        let scheme = RetrievalScheme::Parallel;
        apply_alpha_budgets(&mut graph, alpha, scheme).unwrap();
        for plan in [
            solver::pas_mt(&graph, scheme).expect("solvable"),
            solver::pas_pt(&graph, scheme).expect("solvable"),
        ] {
            plan.validate(&graph).unwrap();
            prop_assert!(plan.satisfies_budgets(&graph, scheme));
        }
    }

    #[test]
    fn last_respects_path_guarantee(spec in arb_graph(), eps in 0.0f64..2.0) {
        let graph = build(&spec);
        let plan = solver::last(&graph, eps).expect("solvable");
        plan.validate(&graph).unwrap();
        let spt = solver::spt(&graph).unwrap();
        for v in graph.matrix_vertices() {
            let d = spt.matrix_recreation_cost(&graph, v);
            prop_assert!(
                plan.matrix_recreation_cost(&graph, v) <= (1.0 + eps) * d + 1e-6,
                "vertex {} exceeds (1+eps) bound", v
            );
        }
    }

    #[test]
    fn reusable_cost_never_exceeds_independent(spec in arb_graph()) {
        let graph = build(&spec);
        let plan = solver::mst(&graph).unwrap();
        for s in &graph.snapshots {
            let ind = plan.snapshot_recreation_cost(&graph, &s.members, RetrievalScheme::Independent);
            let reuse = plan.snapshot_recreation_cost(&graph, &s.members, RetrievalScheme::Reusable);
            let par = plan.snapshot_recreation_cost(&graph, &s.members, RetrievalScheme::Parallel);
            prop_assert!(reuse <= ind + 1e-9, "reusable {} > independent {}", reuse, ind);
            prop_assert!(par <= ind + 1e-9);
            prop_assert!(par <= reuse + 1e-9, "parallel {} > reusable {}", par, reuse);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edmonds_never_worse_than_greedy(spec in arb_graph()) {
        let graph = build(&spec);
        let exact = solver::mst(&graph).expect("spans");
        // The greedy Prim-style variant also spans (materialize edges
        // exist for every vertex) but may pick a costlier arborescence on
        // asymmetric graphs.
        let greedy = solver::greedy_mst(&graph).expect("spans");
        prop_assert!(
            exact.storage_cost(&graph) <= greedy.storage_cost(&graph) + 1e-9,
            "Edmonds {} > greedy {}",
            exact.storage_cost(&graph),
            greedy.storage_cost(&graph)
        );
    }
}
