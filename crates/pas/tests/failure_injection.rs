//! Failure injection: corrupted or missing chunk files, truncated
//! manifests, and mismatched plane data must surface as errors — never
//! panics, never silently wrong matrices.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_compress::Level;
use mh_delta::{bit_equal, DeltaOp};
use mh_pas::{solver, CostModel, GraphBuilder, PasError, SegmentStore};
use mh_tensor::Matrix;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_store(dir: &std::path::Path) -> (SegmentStore, Vec<(mh_pas::VertexId, Matrix)>) {
    let mut b = GraphBuilder::new(CostModel::default());
    let net = mh_dnn::zoo::lenet_s(3);
    let w0 = mh_dnn::Weights::init(&net, 1).unwrap();
    let w1: mh_dnn::Weights = w0
        .layers()
        .map(|(n, m)| (n.clone(), m.map(|x| x + 1e-4)))
        .collect();
    let lv0 = b.add_snapshot("v", 0, &w0);
    let lv1 = b.add_snapshot("v", 1, &w1);
    b.link_version_chain("v", &[0, 1]);
    let (g, mats) = b.finish();
    let plan = solver::mst(&g).unwrap();
    let store = SegmentStore::create(dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
    let mut expected = Vec::new();
    for (layer, &v) in lv0.iter().chain(lv1.iter()) {
        let m = mats[&v].clone();
        let _ = layer;
        expected.push((v, m));
    }
    (store, expected)
}

#[test]
fn bitflip_in_chunk_is_detected() {
    let dir = temp_dir("bitflip");
    let (store, expected) = build_store(&dir);
    // Sanity: everything recreates.
    for (v, m) in &expected {
        assert!(bit_equal(&store.recreate(*v).unwrap(), m));
    }
    // Flip one byte in every chunk file, one at a time; at least the
    // affected vertex must fail (checksum) — and no call may panic.
    let mut detected = 0usize;
    let chunks: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mhz"))
        .collect();
    assert!(!chunks.is_empty());
    for chunk in &chunks {
        let orig = std::fs::read(chunk).unwrap();
        let mut bad = orig.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x5a;
        std::fs::write(chunk, &bad).unwrap();
        let any_err = expected.iter().any(|(v, _)| store.recreate(*v).is_err());
        if any_err {
            detected += 1;
        }
        std::fs::write(chunk, &orig).unwrap();
    }
    assert!(
        detected as f64 >= chunks.len() as f64 * 0.9,
        "corruption detected in only {detected}/{} chunks",
        chunks.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_chunk_file_is_an_error() {
    let dir = temp_dir("missing");
    let (store, expected) = build_store(&dir);
    // Remove the first chunk file.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "mhz"))
        .unwrap();
    std::fs::remove_file(&victim).unwrap();
    let mut failures = 0;
    for (v, _) in &expected {
        match store.recreate(*v) {
            Err(PasError::Io(_)) => failures += 1,
            Err(_) => failures += 1,
            Ok(_) => {}
        }
    }
    assert!(
        failures >= 1,
        "a missing chunk must break at least one chain"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_manifest_rejected_on_open() {
    let dir = temp_dir("manifest");
    let (_store, _) = build_store(&dir);
    let manifest = dir.join("manifest.mhp");

    // Garbage header.
    std::fs::write(&manifest, "NOT A MANIFEST\n").unwrap();
    assert!(matches!(
        SegmentStore::open(&dir),
        Err(PasError::Corrupt(_))
    ));

    // Structurally valid header, broken row.
    std::fs::write(
        &manifest,
        "MHPAS1\n1\tmat\tnot-a-number\t2\t2\t1\t1\t1\t1\tx\n",
    )
    .unwrap();
    assert!(matches!(
        SegmentStore::open(&dir),
        Err(PasError::Corrupt(_))
    ));

    // Truncated row arity.
    std::fs::write(&manifest, "MHPAS1\n1\tmat\t0\n").unwrap();
    assert!(matches!(
        SegmentStore::open(&dir),
        Err(PasError::Corrupt(_))
    ));

    // Missing manifest entirely.
    std::fs::remove_file(&manifest).unwrap();
    assert!(matches!(SegmentStore::open(&dir), Err(PasError::Io(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_pointing_at_wrong_shapes_fails_cleanly() {
    let dir = temp_dir("shapes");
    let (_store, expected) = build_store(&dir);
    // Rewrite the manifest doubling every row count: plane byte counts no
    // longer match rows*cols, which decode must reject.
    let manifest = dir.join("manifest.mhp");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let mut out = String::from("MHPAS1\n");
    for line in text.lines().skip(1) {
        let mut f: Vec<String> = line.split('\t').map(str::to_string).collect();
        let rows: usize = f[3].parse().unwrap();
        f[3] = (rows * 2).to_string();
        out.push_str(&f.join("\t"));
        out.push('\n');
    }
    std::fs::write(&manifest, out).unwrap();
    let store = SegmentStore::open(&dir).unwrap();
    for (v, _) in &expected {
        assert!(
            store.recreate(*v).is_err(),
            "shape lie must not produce data"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn weight_blob_corruption_detected_by_dlv() {
    use mh_dlv::{CommitRequest, Repository};
    let dir = temp_dir("dlv-blob");
    let repo = Repository::init(&dir).unwrap();
    let net = mh_dnn::zoo::lenet_s(3);
    let w = mh_dnn::Weights::init(&net, 1).unwrap();
    let mut req = CommitRequest::new("m", net);
    req.snapshots = vec![(0, w)];
    repo.commit(&req).unwrap();
    // Corrupt the staged blob.
    let blob = std::fs::read_dir(dir.join("weights"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let mut data = std::fs::read(&blob).unwrap();
    let mid = data.len() - 8;
    data[mid] ^= 0xff;
    std::fs::write(&blob, data).unwrap();
    assert!(repo.get_weights("m", None).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_catalog_rejected() {
    use mh_dlv::Repository;
    let dir = temp_dir("dlv-cat");
    Repository::init(&dir).unwrap();
    let cat = dir.join("catalog.mhs");
    let mut data = std::fs::read(&cat).unwrap();
    data.truncate(data.len() / 2);
    std::fs::write(&cat, data).unwrap();
    assert!(Repository::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
