//! Property-based tests for `StoragePlan::from_parents` / `validate`:
//! arbitrary parent-edge assignments never panic, and every accepted plan
//! is a genuine spanning tree — acyclic with all matrix vertices reachable
//! from ν₀.

use mh_pas::{EdgeKind, PlanError, StorageGraph, StoragePlan, NULL_VERTEX};
use proptest::prelude::*;

/// A random storage graph: `n` matrix vertices, every vertex
/// materializable, plus a random set of delta edges.
fn graph_with_deltas(n: usize, deltas: &[(usize, usize)]) -> StorageGraph {
    let mut g = StorageGraph::new();
    let vs: Vec<_> = (0..n).map(|i| g.add_vertex(&format!("m{i}"))).collect();
    for &v in &vs {
        g.add_edge(NULL_VERTEX, v, EdgeKind::Materialize, 8.0, 2.0);
    }
    for &(a, b) in deltas {
        let (a, b) = (vs[a % n], vs[b % n]);
        if a != b {
            g.add_delta_pair(a, b, 2.0, 1.0);
        }
    }
    g
}

fn graph_strategy() -> impl Strategy<Value = StorageGraph> {
    (
        1usize..7,
        proptest::collection::vec((0usize..7, 0usize..7), 0..12),
    )
        .prop_map(|(n, deltas)| graph_with_deltas(n, &deltas))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `from_parents` must never panic, whatever the assignment: arbitrary
    /// lengths, out-of-range edge ids, edges targeting other vertices,
    /// duplicates, and assignments to ν₀ all come back as structured
    /// `PlanError`s.
    #[test]
    fn from_parents_never_panics(
        g in graph_strategy(),
        assignment in proptest::collection::vec(proptest::option::of(0usize..64), 0..10),
    ) {
        let _ = StoragePlan::from_parents(&g, assignment);
    }

    /// Any accepted plan is structurally sound: ν₀ unassigned, every matrix
    /// vertex's parent edge targets it, and walking parents from any vertex
    /// reaches ν₀ without revisiting a vertex (acyclicity + reachability).
    #[test]
    fn accepted_plans_are_spanning_trees(
        g in graph_strategy(),
        raw in proptest::collection::vec(proptest::option::of(0usize..64), 0..10),
    ) {
        let mut assignment: Vec<Option<usize>> = raw
            .iter()
            .map(|o| o.map(|e| e % g.num_edges().max(1)))
            .collect();
        assignment.resize(g.num_vertices(), None);
        assignment[NULL_VERTEX] = None;
        let Ok(plan) = StoragePlan::from_parents(&g, assignment) else {
            return Ok(());
        };
        prop_assert!(plan.parent_edge(NULL_VERTEX).is_none());
        for v in g.matrix_vertices() {
            let e = plan.parent_edge(v).expect("validated plan assigns every vertex");
            prop_assert_eq!(g.edge(e).to, v);
            // Reachability from ν₀ without cycles.
            let mut seen = std::collections::BTreeSet::new();
            let mut cur = v;
            while cur != NULL_VERTEX {
                prop_assert!(seen.insert(cur), "cycle through {}", cur);
                cur = plan.parent(&g, cur).expect("path reaches the root");
            }
        }
    }

    /// A known-good assignment (everything materialized) always validates,
    /// and its costs are finite and non-negative under every scheme.
    #[test]
    fn materialize_everything_is_always_feasible(g in graph_strategy()) {
        let mut plan = StoragePlan::empty(&g);
        for v in g.matrix_vertices() {
            let e = g.edges().iter().find(|e| e.from == NULL_VERTEX && e.to == v)
                .expect("every vertex is materializable").id;
            plan.set_parent(v, e);
        }
        prop_assert!(plan.validate(&g).is_ok());
        let members: Vec<_> = g.matrix_vertices().collect();
        for scheme in [
            mh_pas::RetrievalScheme::Independent,
            mh_pas::RetrievalScheme::Parallel,
            mh_pas::RetrievalScheme::Reusable,
        ] {
            let c = plan.snapshot_recreation_cost(&g, &members, scheme);
            prop_assert!(c.is_finite() && c >= 0.0);
        }
    }

    /// Wrong-length assignments are rejected with `WrongSize`, never a
    /// panic.
    #[test]
    fn wrong_size_is_structured(g in graph_strategy(), extra in 1usize..4) {
        let too_long = vec![None; g.num_vertices() + extra];
        prop_assert_eq!(
            StoragePlan::from_parents(&g, too_long).unwrap_err(),
            PlanError::WrongSize
        );
        if g.num_vertices() > extra {
            let too_short = vec![None; g.num_vertices() - extra];
            prop_assert_eq!(
                StoragePlan::from_parents(&g, too_short).unwrap_err(),
                PlanError::WrongSize
            );
        }
    }
}

#[test]
fn out_of_range_edge_id_is_a_mismatch_not_a_panic() {
    let g = graph_with_deltas(2, &[(0, 1)]);
    let mut assignment = vec![None; g.num_vertices()];
    for v in g.matrix_vertices() {
        assignment[v] = Some(usize::MAX);
    }
    assert!(matches!(
        StoragePlan::from_parents(&g, assignment),
        Err(PlanError::EdgeMismatch(_))
    ));
}
