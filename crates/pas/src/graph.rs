//! The matrix storage graph (Definition 1 of the paper).
//!
//! Vertices are the parameter matrices of every snapshot of every model
//! version, plus the distinguished empty matrix ν₀. Edges are *storage
//! options*: materializing a matrix (an edge from ν₀) or storing a delta
//! against another matrix. Each edge carries a storage cost and a
//! recreation cost; parallel edges between the same pair model alternative
//! storage tiers or encodings.

/// Index of a vertex in the storage graph. `NULL_VERTEX` (0) is ν₀.
pub type VertexId = usize;

/// The empty-matrix vertex ν₀.
pub const NULL_VERTEX: VertexId = 0;

/// Index of an edge.
pub type EdgeId = usize;

/// What an edge physically stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// Store the target matrix itself (compressed). Only valid from ν₀.
    Materialize,
    /// Store a delta; recreating the target requires the source first.
    Delta,
}

/// One storage option.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub id: EdgeId,
    pub from: VertexId,
    pub to: VertexId,
    pub kind: EdgeKind,
    /// Bytes this option occupies.
    pub storage_cost: f64,
    /// Cost of recreating `to` given `from` (abstract units; the builder
    /// uses estimated decode work).
    pub recreation_cost: f64,
}

/// A group of matrices that are always retrieved together (one snapshot),
/// with its recreation budget θ.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGroup {
    pub name: String,
    pub members: Vec<VertexId>,
    /// Recreation budget θᵢ (f64::INFINITY = unconstrained).
    pub budget: f64,
}

/// The matrix storage graph GV(V, E, cs, cr).
#[derive(Debug, Clone, Default)]
pub struct StorageGraph {
    /// Human-readable vertex labels; index 0 is ν₀.
    labels: Vec<String>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per vertex.
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per vertex.
    incoming: Vec<Vec<EdgeId>>,
    pub snapshots: Vec<SnapshotGroup>,
}

impl StorageGraph {
    /// A graph containing only ν₀.
    pub fn new() -> Self {
        Self {
            labels: vec!["ν0".to_string()],
            edges: Vec::new(),
            out: vec![Vec::new()],
            incoming: vec![Vec::new()],
            snapshots: Vec::new(),
        }
    }

    /// Add a matrix vertex.
    pub fn add_vertex(&mut self, label: &str) -> VertexId {
        let id = self.labels.len();
        self.labels.push(label.to_string());
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        id
    }

    /// Add a directed storage option.
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        kind: EdgeKind,
        storage_cost: f64,
        recreation_cost: f64,
    ) -> EdgeId {
        assert!(
            from < self.labels.len() && to < self.labels.len(),
            "edge endpoints exist"
        );
        assert!(to != NULL_VERTEX, "ν0 is never a target");
        assert!(
            kind != EdgeKind::Materialize || from == NULL_VERTEX,
            "materialize edges start at ν0"
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            id,
            from,
            to,
            kind,
            storage_cost,
            recreation_cost,
        });
        self.out[from].push(id);
        self.incoming[to].push(id);
        id
    }

    /// Convenience: add symmetric delta options in both directions.
    pub fn add_delta_pair(
        &mut self,
        a: VertexId,
        b: VertexId,
        storage_cost: f64,
        recreation_cost: f64,
    ) -> (EdgeId, EdgeId) {
        (
            self.add_edge(a, b, EdgeKind::Delta, storage_cost, recreation_cost),
            self.add_edge(b, a, EdgeKind::Delta, storage_cost, recreation_cost),
        )
    }

    /// Register a co-usage group.
    pub fn add_snapshot(&mut self, name: &str, members: Vec<VertexId>, budget: f64) {
        self.snapshots.push(SnapshotGroup {
            name: name.to_string(),
            members,
            budget,
        });
    }

    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Matrix vertices (excluding ν₀).
    pub fn matrix_vertices(&self) -> impl Iterator<Item = VertexId> {
        1..self.num_vertices()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn label(&self, v: VertexId) -> &str {
        &self.labels[v]
    }

    pub fn outgoing(&self, v: VertexId) -> &[EdgeId] {
        &self.out[v]
    }

    pub fn incoming(&self, v: VertexId) -> &[EdgeId] {
        &self.incoming[v]
    }

    /// Whether every matrix vertex has at least one incoming edge from ν₀
    /// (guarantees a feasible plan exists).
    pub fn is_complete(&self) -> bool {
        self.matrix_vertices().all(|v| {
            self.incoming(v)
                .iter()
                .any(|&e| self.edges[e].from == NULL_VERTEX)
        })
    }

    /// The snapshot groups containing a vertex.
    pub fn groups_of(&self, v: VertexId) -> Vec<usize> {
        self.snapshots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.members.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Cheapest (by recreation cost) direct edge ν₀→v, used as the lower
    /// bound `cr(ν0, vk)` in PAS-PT feasibility estimation.
    pub fn direct_recreation_bound(&self, v: VertexId) -> f64 {
        self.incoming(v)
            .iter()
            .map(|&e| &self.edges[e])
            .filter(|e| e.from == NULL_VERTEX)
            .map(|e| e.recreation_cost)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Build a toy instance in the spirit of the paper's Fig. 5: two snapshots
/// s1 = {m1, m2}, s2 = {m3, m4, m5}, edge weights chosen so the figure's
/// headline numbers hold exactly — the unconstrained optimum (the MST) has
/// Cs = 19 with Cr(s1) = 3 and Cr(s2) = 7.5 under the independent scheme,
/// and tightening to θ = (3, 6) forces a strictly costlier plan.
/// Returns (graph, [m1..m5]).
pub fn fig5_example() -> (StorageGraph, Vec<VertexId>) {
    let mut g = StorageGraph::new();
    let m: Vec<VertexId> = (1..=5).map(|i| g.add_vertex(&format!("m{i}"))).collect();
    // Materialize edges (storage, recreation).
    g.add_edge(NULL_VERTEX, m[0], EdgeKind::Materialize, 2.0, 1.0); // m1 (2,1)
    g.add_edge(NULL_VERTEX, m[1], EdgeKind::Materialize, 8.0, 2.0); // m2 (8,2)
    g.add_edge(NULL_VERTEX, m[2], EdgeKind::Materialize, 8.0, 2.0); // m3 (8,2)
    g.add_edge(NULL_VERTEX, m[3], EdgeKind::Materialize, 9.0, 2.0); // m4 (9,2)
    g.add_edge(NULL_VERTEX, m[4], EdgeKind::Materialize, 8.0, 2.0); // m5 (8,2)
                                                                    // Delta edges.
    g.add_delta_pair(m[0], m[2], 1.0, 0.5); // m1-m3 (1,0.5)
    g.add_delta_pair(m[2], m[3], 4.0, 1.0); // m3-m4 (4,1)
    g.add_delta_pair(m[3], m[4], 4.0, 1.0); // m4-m5 (4,1)
    g.add_snapshot("s1", vec![m[0], m[1]], f64::INFINITY);
    g.add_snapshot("s2", vec![m[2], m[3], m[4]], f64::INFINITY);
    (g, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let (g, m) = fig5_example();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5 + 3 * 2);
        assert!(
            g.is_complete(),
            "every matrix has a direct materialize option"
        );
        assert_eq!(g.groups_of(m[0]), vec![0]);
        assert_eq!(g.groups_of(m[3]), vec![1]);
        assert_eq!(g.label(NULL_VERTEX), "ν0");
    }

    #[test]
    fn direct_bound() {
        let (g, m) = fig5_example();
        assert_eq!(g.direct_recreation_bound(m[0]), 1.0);
        assert_eq!(g.direct_recreation_bound(m[4]), 2.0);
    }

    #[test]
    #[should_panic(expected = "materialize edges start at ν0")]
    fn materialize_must_start_at_null() {
        let mut g = StorageGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, EdgeKind::Materialize, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "ν0 is never a target")]
    fn null_vertex_never_target() {
        let mut g = StorageGraph::new();
        let a = g.add_vertex("a");
        g.add_edge(a, NULL_VERTEX, EdgeKind::Delta, 1.0, 1.0);
    }
}
