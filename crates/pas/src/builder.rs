//! Build a [`StorageGraph`] from the weight artifacts of a model
//! repository.
//!
//! The builder registers one vertex per (version, snapshot, layer) matrix
//! and one co-usage group per snapshot, then generates storage options:
//!
//! * a materialize edge ν₀ → v for every matrix (cost = measured compressed
//!   size of its byte planes);
//! * delta edges between matching layers of **adjacent snapshots** within
//!   a version (both directions);
//! * delta edges between matching layers of the **latest snapshots** of
//!   lineage-related versions (the fine-tuning case) — exactly where §IV-B
//!   found deltas to pay off.
//!
//! Costs are measured by actually compressing the candidate payloads, so
//! the optimization operates on real footprints rather than guesses.

use crate::graph::{EdgeKind, StorageGraph, VertexId, NULL_VERTEX};
use crate::plan::RetrievalScheme;
use crate::solver;
use mh_compress::Level;
use mh_delta::{Delta, DeltaOp};
use mh_dnn::Weights;
use mh_tensor::{Matrix, SegmentedMatrix};
use std::collections::BTreeMap;

/// A storage tier: an alternative physical placement with its own
/// storage/recreation trade-off (the paper's "remote storage option ...
/// storage cost is lower and the recreation cost is higher" generalized to
/// parallel edges). Multipliers apply to the measured baseline costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageTier {
    pub name: &'static str,
    pub storage_mult: f64,
    pub recreation_mult: f64,
}

impl StorageTier {
    /// The default local tier (measured costs as-is).
    pub fn local() -> Self {
        Self {
            name: "local",
            storage_mult: 1.0,
            recreation_mult: 1.0,
        }
    }

    /// A remote/cold tier: cheaper capacity, slower reads.
    pub fn remote() -> Self {
        Self {
            name: "remote",
            storage_mult: 0.4,
            recreation_mult: 5.0,
        }
    }
}

/// Cost-model knobs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Compression level used when measuring storage costs.
    pub level: Level,
    /// Recreation cost = read_weight * compressed_bytes
    ///                 + apply_weight * uncompressed_bytes.
    pub read_weight: f64,
    pub apply_weight: f64,
    /// Delta operator whose footprint defines delta edge costs.
    pub delta_op: DeltaOp,
    /// Storage tiers; every candidate edge is offered once per tier
    /// (parallel edges between the same vertices), letting the solvers
    /// pick placements per matrix.
    pub tiers: Vec<StorageTier>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            level: Level::Fast,
            read_weight: 1.0,
            apply_weight: 0.25,
            delta_op: DeltaOp::Sub,
            tiers: vec![StorageTier::local()],
        }
    }
}

impl CostModel {
    /// A local + remote two-tier configuration.
    pub fn with_remote_tier() -> Self {
        Self {
            tiers: vec![StorageTier::local(), StorageTier::remote()],
            ..Self::default()
        }
    }
}

/// Incrementally assembles the storage graph for a repository.
#[derive(Debug)]
pub struct GraphBuilder {
    cost: CostModel,
    graph: StorageGraph,
    matrices: BTreeMap<VertexId, Matrix>,
    /// (version, snapshot index) -> layer name -> vertex.
    snapshots: BTreeMap<(String, usize), BTreeMap<String, VertexId>>,
}

impl GraphBuilder {
    pub fn new(cost: CostModel) -> Self {
        Self {
            cost,
            graph: StorageGraph::new(),
            matrices: BTreeMap::new(),
            snapshots: BTreeMap::new(),
        }
    }

    fn recreation_cost(&self, compressed: f64, uncompressed: f64) -> f64 {
        self.cost.read_weight * compressed + self.cost.apply_weight * uncompressed
    }

    /// Register a snapshot's weights. Creates vertices, the co-usage group,
    /// and materialize edges. Returns the vertices per layer.
    pub fn add_snapshot(
        &mut self,
        version: &str,
        snap_idx: usize,
        weights: &Weights,
    ) -> BTreeMap<String, VertexId> {
        // Cost measurement actually compresses every byte plane — the
        // builder's hot loop. Measure all layers on the pool in
        // byte-batched chunks (weight = matrix payload bytes, so small
        // layers coalesce), then mutate the graph serially in layer order.
        let layers: Vec<(&String, &Matrix)> = weights.layers().collect();
        let level = self.cost.level;
        let measured = mh_par::parallel_map_batched_init(
            mh_par::current_threads(),
            &layers,
            |(_, m)| m.len() * 4,
            mh_compress::Scratch::new,
            |scratch, _, (_, m)| {
                let seg = SegmentedMatrix::from_matrix(m);
                (0..4)
                    .map(|p| mh_compress::compressed_len_with(seg.plane(p), level, scratch))
                    .sum::<usize>() as f64
            },
        )
        .expect("cost measurement workers");
        let mut layer_vertices = BTreeMap::new();
        for ((layer, m), compressed) in layers.into_iter().zip(measured) {
            let label = format!("{version}/s{snap_idx}/{layer}");
            let v = self.graph.add_vertex(&label);
            // Materialize option: segmented planes, individually compressed.
            let uncompressed = (m.len() * 4) as f64;
            let rc = self.recreation_cost(compressed, uncompressed);
            for tier in &self.cost.tiers {
                self.graph.add_edge(
                    NULL_VERTEX,
                    v,
                    EdgeKind::Materialize,
                    compressed * tier.storage_mult,
                    rc * tier.recreation_mult,
                );
            }
            self.matrices.insert(v, m.clone());
            layer_vertices.insert(layer.clone(), v);
        }
        let members: Vec<VertexId> = layer_vertices.values().copied().collect();
        self.graph
            .add_snapshot(&format!("{version}/s{snap_idx}"), members, f64::INFINITY);
        self.snapshots
            .insert((version.to_string(), snap_idx), layer_vertices.clone());
        layer_vertices
    }

    /// Register a snapshot at *byte-segment granularity* (the §IV-C
    /// generalization): each matrix becomes two vertices — its high-order
    /// byte planes (0-1) and its low-order planes (2-3) — with separately
    /// measured costs. Two co-usage groups are created: the full snapshot
    /// (all segments; budget for full-precision retrieval) and a `…#hi`
    /// preview group (high segments only; budget for partial-precision
    /// queries like `dlv desc` plots and progressive evaluation).
    ///
    /// Combined with storage tiers this lets the solvers, e.g., keep the
    /// high-order segments on fast local storage while pushing low-order
    /// bytes to a cold tier.
    pub fn add_snapshot_segmented(
        &mut self,
        version: &str,
        snap_idx: usize,
        weights: &Weights,
    ) -> BTreeMap<String, (VertexId, VertexId)> {
        // Measure both halves of every layer on the pool in byte-batched
        // chunks, then register vertices in layer order.
        let layers: Vec<(&String, &Matrix)> = weights.layers().collect();
        let level = self.cost.level;
        let measured = mh_par::parallel_map_batched_init(
            mh_par::current_threads(),
            &layers,
            |(_, m)| m.len() * 4,
            mh_compress::Scratch::new,
            |scratch, _, (_, m)| {
                let seg = SegmentedMatrix::from_matrix(m);
                [[0usize, 1], [2, 3]].map(|planes| {
                    planes
                        .iter()
                        .map(|&p| mh_compress::compressed_len_with(seg.plane(p), level, scratch))
                        .sum::<usize>() as f64
                })
            },
        )
        .expect("cost measurement workers");
        let mut out = BTreeMap::new();
        let mut full_members = Vec::new();
        let mut hi_members = Vec::new();
        for ((layer, m), half_sizes) in layers.into_iter().zip(measured) {
            let uncompressed_half = (m.len() * 2) as f64;
            let mut halves = Vec::with_capacity(2);
            for (suffix, cs) in ["hi", "lo"].into_iter().zip(half_sizes) {
                let rc = self.recreation_cost(cs, uncompressed_half);
                let v = self
                    .graph
                    .add_vertex(&format!("{version}/s{snap_idx}/{layer}#{suffix}"));
                for tier in &self.cost.tiers {
                    self.graph.add_edge(
                        NULL_VERTEX,
                        v,
                        EdgeKind::Materialize,
                        cs * tier.storage_mult,
                        rc * tier.recreation_mult,
                    );
                }
                halves.push(v);
            }
            let (hi, lo) = (halves[0], halves[1]);
            full_members.push(hi);
            full_members.push(lo);
            hi_members.push(hi);
            out.insert(layer.clone(), (hi, lo));
        }
        self.graph.add_snapshot(
            &format!("{version}/s{snap_idx}"),
            full_members,
            f64::INFINITY,
        );
        self.graph.add_snapshot(
            &format!("{version}/s{snap_idx}#hi"),
            hi_members,
            f64::INFINITY,
        );
        out
    }

    /// Add delta edges between two registered snapshots for every layer
    /// name they share.
    pub fn link_snapshots(
        &mut self,
        version_a: &str,
        snap_a: usize,
        version_b: &str,
        snap_b: usize,
    ) {
        let Some(a) = self
            .snapshots
            .get(&(version_a.to_string(), snap_a))
            .cloned()
        else {
            return;
        };
        let Some(b) = self
            .snapshots
            .get(&(version_b.to_string(), snap_b))
            .cloned()
        else {
            return;
        };
        let jobs: Vec<(VertexId, VertexId)> = a
            .iter()
            .filter_map(|(layer, &va)| b.get(layer).map(|&vb| (va, vb)))
            .collect();
        // Delta computation + plane compression per shared layer is
        // independent work: measure on the pool in byte-batched chunks
        // (weight = both endpoint payloads), add edges serially.
        let level = self.cost.level;
        let op = self.cost.delta_op;
        let (rw, aw) = (self.cost.read_weight, self.cost.apply_weight);
        let matrices = &self.matrices;
        let measured = mh_par::parallel_map_batched_init(
            mh_par::current_threads(),
            &jobs,
            |&(va, vb)| {
                4 * (matrices.get(&va).map_or(0, |m| m.len())
                    + matrices.get(&vb).map_or(0, |m| m.len()))
            },
            mh_compress::Scratch::new,
            |scratch, _, &(va, vb)| {
                let planes_size = |bytes: &[u8], scratch: &mut mh_compress::Scratch| {
                    mh_tensor::split_byte_planes(bytes, 4)
                        .iter()
                        .map(|p| mh_compress::compressed_len_with(p, level, scratch))
                        .sum::<usize>() as f64
                };
                let (ma, mb) = (&matrices[&va], &matrices[&vb]);
                // Forward delta a -> b.
                let dab = Delta::compute(ma, mb, op);
                let s_ab = planes_size(&dab.word_bytes(), scratch);
                let rc_ab = rw * s_ab + aw * (mb.len() * 4) as f64;
                // Backward delta b -> a.
                let dba = Delta::compute(mb, ma, op);
                let s_ba = planes_size(&dba.word_bytes(), scratch);
                let rc_ba = rw * s_ba + aw * (ma.len() * 4) as f64;
                (s_ab, rc_ab, s_ba, rc_ba)
            },
        )
        .expect("delta measurement workers");
        for (&(va, vb), (s_ab, rc_ab, s_ba, rc_ba)) in jobs.iter().zip(measured) {
            for tier in &self.cost.tiers {
                self.graph.add_edge(
                    va,
                    vb,
                    EdgeKind::Delta,
                    s_ab * tier.storage_mult,
                    rc_ab * tier.recreation_mult,
                );
                self.graph.add_edge(
                    vb,
                    va,
                    EdgeKind::Delta,
                    s_ba * tier.storage_mult,
                    rc_ba * tier.recreation_mult,
                );
            }
        }
    }

    /// Link all adjacent snapshot pairs of one version (checkpoint chain).
    pub fn link_version_chain(&mut self, version: &str, snapshot_indices: &[usize]) {
        for pair in snapshot_indices.windows(2) {
            self.link_snapshots(version, pair[0], version, pair[1]);
        }
    }

    /// The vertex of a specific layer matrix, if registered.
    pub fn vertex_of(&self, version: &str, snap_idx: usize, layer: &str) -> Option<VertexId> {
        self.snapshots
            .get(&(version.to_string(), snap_idx))?
            .get(layer)
            .copied()
    }

    /// Members of a registered snapshot group.
    pub fn snapshot_members(&self, version: &str, snap_idx: usize) -> Option<Vec<VertexId>> {
        self.snapshots
            .get(&(version.to_string(), snap_idx))
            .map(|m| m.values().copied().collect())
    }

    /// Finish, returning the graph and the matrix contents.
    pub fn finish(self) -> (StorageGraph, BTreeMap<VertexId, Matrix>) {
        (self.graph, self.matrices)
    }

    pub fn graph(&self) -> &StorageGraph {
        &self.graph
    }
}

/// Set every snapshot budget to `alpha ×` its SPT recreation cost — the
/// constraint sweep of Fig 6(c): `Cr(T, sᵢ) ≤ α · Cr(SPT, sᵢ)`.
pub fn apply_alpha_budgets(
    graph: &mut StorageGraph,
    alpha: f64,
    scheme: RetrievalScheme,
) -> Result<(), crate::plan::PlanError> {
    let spt = solver::spt(graph)?;
    let costs: Vec<f64> = graph
        .snapshots
        .iter()
        .map(|s| spt.snapshot_recreation_cost(graph, &s.members, scheme))
        .collect();
    for (s, c) in graph.snapshots.iter_mut().zip(costs) {
        s.budget = alpha * c;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mh_dnn::{zoo, Weights};

    fn snapshot_weights(seed: u64, jitter: f32) -> Weights {
        let net = zoo::lenet_s(4);
        let base = Weights::init(&net, seed).unwrap();
        if jitter == 0.0 {
            base
        } else {
            base.layers()
                .map(|(n, m)| (n.clone(), m.map(|x| x + jitter)))
                .collect()
        }
    }

    #[test]
    fn builder_registers_vertices_and_groups() {
        let mut b = GraphBuilder::new(CostModel::default());
        let w = snapshot_weights(1, 0.0);
        let lv = b.add_snapshot("v1", 0, &w);
        assert_eq!(lv.len(), w.len());
        let (g, mats) = b.finish();
        assert_eq!(g.num_vertices(), 1 + w.len());
        assert_eq!(g.snapshots.len(), 1);
        assert!(g.is_complete());
        assert_eq!(mats.len(), w.len());
    }

    #[test]
    fn close_snapshots_get_cheap_delta_edges() {
        let mut b = GraphBuilder::new(CostModel::default());
        let w0 = snapshot_weights(1, 0.0);
        let w1 = snapshot_weights(1, 1e-4); // adjacent checkpoint: tiny drift
        b.add_snapshot("v1", 0, &w0);
        b.add_snapshot("v1", 1, &w1);
        b.link_version_chain("v1", &[0, 1]);
        let (g, _) = b.finish();
        // Delta edges must be cheaper than materialize edges for the same
        // target (that's why delta encoding wins for checkpoints).
        for e in g.edges().iter().filter(|e| e.kind == EdgeKind::Delta) {
            let mat_cost = g
                .edges()
                .iter()
                .find(|o| o.kind == EdgeKind::Materialize && o.to == e.to)
                .unwrap()
                .storage_cost;
            assert!(
                e.storage_cost < mat_cost,
                "delta {} !< materialize {}",
                e.storage_cost,
                mat_cost
            );
        }
    }

    #[test]
    fn unrelated_versions_get_expensive_deltas() {
        let mut b = GraphBuilder::new(CostModel::default());
        let w0 = snapshot_weights(1, 0.0);
        let w1 = snapshot_weights(999, 0.0); // retrained: unrelated weights
        b.add_snapshot("a", 0, &w0);
        b.add_snapshot("b", 0, &w1);
        b.link_snapshots("a", 0, "b", 0);
        let (g, _) = b.finish();
        // For uncorrelated parameters the delta is roughly as expensive as
        // materializing (the Fig 6(b) "Similar models" finding).
        for e in g.edges().iter().filter(|e| e.kind == EdgeKind::Delta) {
            let mat = g
                .edges()
                .iter()
                .find(|o| o.kind == EdgeKind::Materialize && o.to == e.to)
                .unwrap()
                .storage_cost;
            assert!(
                e.storage_cost > 0.7 * mat,
                "unrelated delta unexpectedly cheap: {} vs {}",
                e.storage_cost,
                mat
            );
        }
    }

    #[test]
    fn end_to_end_solve_and_store() {
        let mut b = GraphBuilder::new(CostModel::default());
        let w0 = snapshot_weights(7, 0.0);
        let w1 = snapshot_weights(7, 5e-5);
        let w2 = snapshot_weights(7, 1e-4);
        b.add_snapshot("v1", 0, &w0);
        b.add_snapshot("v1", 1, &w1);
        b.add_snapshot("v1", 2, &w2);
        b.link_version_chain("v1", &[0, 1, 2]);
        let (mut g, mats) = b.finish();
        apply_alpha_budgets(&mut g, 2.0, RetrievalScheme::Independent).unwrap();
        let plan = solver::pas_mt(&g, RetrievalScheme::Independent).unwrap();
        assert!(plan.satisfies_budgets(&g, RetrievalScheme::Independent));
        // Storage should beat the all-materialized plan.
        let spt = solver::spt(&g).unwrap();
        assert!(plan.storage_cost(&g) <= spt.storage_cost(&g));
        assert_eq!(mats.len(), g.num_vertices() - 1);
    }

    #[test]
    fn alpha_budget_scaling() {
        let mut b = GraphBuilder::new(CostModel::default());
        let w0 = snapshot_weights(3, 0.0);
        b.add_snapshot("v", 0, &w0);
        let (mut g, _) = b.finish();
        apply_alpha_budgets(&mut g, 1.5, RetrievalScheme::Independent).unwrap();
        let spt = solver::spt(&g).unwrap();
        let base =
            spt.snapshot_recreation_cost(&g, &g.snapshots[0].members, RetrievalScheme::Independent);
        assert!((g.snapshots[0].budget - 1.5 * base).abs() < 1e-6);
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;
    use crate::plan::RetrievalScheme;
    use mh_dnn::{zoo, Weights};

    #[test]
    fn two_tiers_create_parallel_edges() {
        let mut b = GraphBuilder::new(CostModel::with_remote_tier());
        let net = zoo::lenet_s(3);
        let w = Weights::init(&net, 1).unwrap();
        b.add_snapshot("v", 0, &w);
        let (g, _) = b.finish();
        // Every matrix has two materialize options (local + remote).
        for v in g.matrix_vertices() {
            let mats: Vec<_> = g
                .incoming(v)
                .iter()
                .map(|&e| g.edge(e))
                .filter(|e| e.kind == EdgeKind::Materialize)
                .collect();
            assert_eq!(mats.len(), 2);
            // Remote = cheaper storage, costlier recreation.
            let (a, b) = (mats[0], mats[1]);
            let (local, remote) = if a.storage_cost < b.storage_cost {
                (b, a)
            } else {
                (a, b)
            };
            assert!(remote.storage_cost < local.storage_cost);
            assert!(remote.recreation_cost > local.recreation_cost);
        }
    }

    #[test]
    fn tight_budgets_choose_local_loose_choose_remote() {
        let mut b = GraphBuilder::new(CostModel::with_remote_tier());
        let net = zoo::lenet_s(3);
        let w = Weights::init(&net, 2).unwrap();
        b.add_snapshot("v", 0, &w);
        let (graph, _) = b.finish();
        let scheme = RetrievalScheme::Independent;

        // Tight: α = 1 forces shortest recreation = local placements.
        let mut tight = graph.clone();
        apply_alpha_budgets(&mut tight, 1.0, scheme).unwrap();
        let plan_t = solver::pas_mt(&tight, scheme).unwrap();
        assert!(plan_t.satisfies_budgets(&tight, scheme));

        // Loose: α huge lets the MST pick the cheap remote tier.
        let mut loose = graph.clone();
        apply_alpha_budgets(&mut loose, 1e9, scheme).unwrap();
        let plan_l = solver::pas_mt(&loose, scheme).unwrap();
        assert!(
            plan_l.storage_cost(&loose) < plan_t.storage_cost(&tight),
            "loose budgets must unlock the cheap tier: {} !< {}",
            plan_l.storage_cost(&loose),
            plan_t.storage_cost(&tight)
        );
        // And the loose plan's recreation is worse — the trade was real.
        let rc_t = plan_t.snapshot_recreation_cost(&tight, &tight.snapshots[0].members, scheme);
        let rc_l = plan_l.snapshot_recreation_cost(&loose, &loose.snapshots[0].members, scheme);
        assert!(rc_l > rc_t);
    }

    #[test]
    fn segment_granularity_with_tiers_splits_placement() {
        // High-order segments must answer preview queries fast (tight #hi
        // budget); low-order segments are free to go remote. The optimal
        // plan therefore mixes tiers within one matrix — the paper's
        // "decisions at a very fine granularity".
        let mut b = GraphBuilder::new(CostModel::with_remote_tier());
        let net = zoo::lenet_s(3);
        let w = Weights::init(&net, 3).unwrap();
        b.add_snapshot_segmented("v", 0, &w);
        let (mut graph, _) = b.finish();
        let scheme = RetrievalScheme::Independent;

        // Budgets: preview group at its SPT optimum (forces local hi),
        // full group unconstrained (lets lo go remote).
        let spt = solver::spt(&graph).unwrap();
        for i in 0..graph.snapshots.len() {
            let s = &graph.snapshots[i];
            let budget = if s.name.ends_with("#hi") {
                spt.snapshot_recreation_cost(&graph, &s.members, scheme)
            } else {
                f64::INFINITY
            };
            graph.snapshots[i].budget = budget;
        }
        let plan = solver::pas_mt(&graph, scheme).unwrap();
        assert!(plan.satisfies_budgets(&graph, scheme));

        // Classify placements by comparing the chosen edge against the two
        // available materialize options.
        let placement = |v: VertexId| -> &'static str {
            let chosen = graph.edge(plan.parent_edge(v).unwrap());
            let cheapest_storage = graph
                .incoming(v)
                .iter()
                .map(|&e| graph.edge(e).storage_cost)
                .fold(f64::INFINITY, f64::min);
            if (chosen.storage_cost - cheapest_storage).abs() < 1e-9 {
                "remote"
            } else {
                "local"
            }
        };
        let mut hi_local = 0;
        let mut lo_remote = 0;
        for v in graph.matrix_vertices() {
            let label = graph.label(v).to_string();
            match (label.ends_with("#hi"), placement(v)) {
                (true, "local") => hi_local += 1,
                (false, "remote") => lo_remote += 1,
                _ => {}
            }
        }
        assert!(hi_local > 0, "some high segments pinned local");
        assert!(lo_remote > 0, "some low segments offloaded remote");
    }
}
