//! The on-disk segment store: physical storage for a chosen plan.
//!
//! Every plan edge becomes one *object*: the target matrix (materialized)
//! or the delta against its parent, stored as four separately-compressed
//! byte planes (plane 0 = most significant byte of each 32-bit word). This
//! is the paper's segmented design: high-order planes compress well and can
//! be fetched alone; low-order planes can live on slower storage and are
//! only read when a query needs full precision.
//!
//! Partial-precision retrieval composes along the delta chain:
//! * XOR deltas compose bytewise, so a k-plane prefix is exact in its top
//!   k bytes.
//! * SUB (wrapping-add) deltas admit carries from the unknown low bytes;
//!   [`SegmentStore::recreate_bounds`] widens the interval by one carry
//!   unit per chain object, keeping the bounds sound.

use crate::graph::{StorageGraph, VertexId, NULL_VERTEX};
use crate::plan::StoragePlan;
use crate::PasError;
use mh_compress::Level;
use mh_delta::{Delta, DeltaOp};
use mh_tensor::Matrix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How an object is encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjectKind {
    Materialized,
    DeltaSub,
    DeltaXor,
}

/// Manifest entry for one stored object.
#[derive(Debug, Clone)]
struct ObjectMeta {
    vertex: VertexId,
    label: String,
    kind: ObjectKind,
    /// Parent vertex (NULL_VERTEX for materialized objects).
    parent: VertexId,
    rows: usize,
    cols: usize,
    /// Compressed size of each plane file.
    plane_sizes: [u64; 4],
}

/// The store: a directory of per-object plane files plus a manifest.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    objects: BTreeMap<VertexId, ObjectMeta>,
}

/// Which word-combine a delta plane applies. Dispatching on this (rather
/// than a closure) lets the same-shape fast path hit the SIMD kernels in
/// `mh_delta::simd`.
#[derive(Clone, Copy)]
enum WordOp {
    /// Wrapping add: SUB-delta application.
    Add,
    /// XOR: self-inverse delta application.
    Xor,
}

/// One fully-encoded object, ready to hit disk: the output of the parallel
/// archival stage, consumed serially (in vertex order) by the writer.
struct EncodedObject {
    kind: ObjectKind,
    parent: VertexId,
    rows: usize,
    cols: usize,
    planes: [Vec<u8>; 4],
}

/// Delta-encode and compress one matrix vertex. Runs on a pool worker
/// during [`SegmentStore::create`]; `scratch` amortizes the compressor's
/// hash-chain tables across the worker's whole share of the input.
fn encode_object(
    graph: &StorageGraph,
    plan: &StoragePlan,
    matrices: &BTreeMap<VertexId, Matrix>,
    op: DeltaOp,
    level: Level,
    v: VertexId,
    scratch: &mut mh_compress::Scratch,
) -> Result<EncodedObject, PasError> {
    let m = matrices
        .get(&v)
        .ok_or_else(|| PasError::MissingMatrix(graph.label(v).to_string()))?;
    let parent = plan.parent(graph, v).expect("validated plan");
    let (kind, words) = if parent == NULL_VERTEX {
        (ObjectKind::Materialized, matrix_words(m))
    } else {
        let _sp = mh_obs::span("pas.delta_encode");
        let base = matrices
            .get(&parent)
            .ok_or_else(|| PasError::MissingMatrix(graph.label(parent).to_string()))?;
        let delta = Delta::compute(base, m, op);
        let kind = match op {
            DeltaOp::Sub => ObjectKind::DeltaSub,
            DeltaOp::Xor => ObjectKind::DeltaXor,
        };
        let bytes = delta.word_bytes();
        let words = bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("fixed-size chunk")))
            .collect();
        (kind, words)
    };
    let raw_planes = words_to_planes(&words);
    let mut planes: [Vec<u8>; 4] = std::array::from_fn(|_| Vec::new());
    {
        let mut sp = mh_obs::span("pas.plane_compress");
        for (packed, plane) in planes.iter_mut().zip(&raw_planes) {
            mh_compress::compress_into(plane, level, scratch, packed);
        }
        if sp.is_recording() {
            sp.add_bytes_in(4 * words.len() as u64);
            sp.add_bytes_out(planes.iter().map(|p| p.len() as u64).sum());
        }
    }
    Ok(EncodedObject {
        kind,
        parent,
        rows: m.rows(),
        cols: m.cols(),
        planes,
    })
}

fn plane_path(dir: &Path, v: VertexId, plane: usize) -> PathBuf {
    dir.join(format!("obj{v:06}_p{plane}.mhz"))
}

/// The 32-bit words (big-endian semantics) of a matrix's bit patterns.
fn matrix_words(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn words_to_planes(words: &[u32]) -> [Vec<u8>; 4] {
    let mut planes: [Vec<u8>; 4] = std::array::from_fn(|_| Vec::with_capacity(words.len()));
    for &w in words {
        let b = w.to_be_bytes();
        for (p, plane) in planes.iter_mut().enumerate() {
            plane.push(b[p]);
        }
    }
    planes
}

impl SegmentStore {
    /// Materialize a plan: encode every chosen edge and write it under
    /// `dir`. `matrices` maps every matrix vertex to its full-precision
    /// content.
    pub fn create(
        dir: &Path,
        graph: &StorageGraph,
        plan: &StoragePlan,
        matrices: &BTreeMap<VertexId, Matrix>,
        op: DeltaOp,
        level: Level,
    ) -> Result<Self, PasError> {
        let mut sp = mh_obs::span("pas.archive_build");
        plan.validate(graph).map_err(PasError::Plan)?;
        std::fs::create_dir_all(dir).map_err(PasError::Io)?;
        // Delta encoding + per-plane compression is the archival hot path:
        // fan out with worker-local compressor scratch, batching matrices
        // by payload bytes so a queue task carries a real slab of work
        // instead of one small matrix. Results are written serially in
        // vertex order, so the store layout is bit-identical regardless of
        // thread count or batch budget.
        let vertices: Vec<VertexId> = graph.matrix_vertices().collect();
        let encoded = mh_par::parallel_map_batched_init(
            mh_par::current_threads(),
            &vertices,
            |&v| matrices.get(&v).map_or(0, |m| m.len() * 4),
            mh_compress::Scratch::new,
            |scratch, _, &v| encode_object(graph, plan, matrices, op, level, v, scratch),
        )
        .map_err(PasError::from)?;
        let mut objects = BTreeMap::new();
        for (&v, enc) in vertices.iter().zip(encoded) {
            let enc = enc?;
            let mut plane_sizes = [0u64; 4];
            for (p, packed) in enc.planes.iter().enumerate() {
                plane_sizes[p] = packed.len() as u64;
                std::fs::write(plane_path(dir, v, p), packed).map_err(PasError::Io)?;
                sp.add_bytes_out(packed.len() as u64);
            }
            objects.insert(
                v,
                ObjectMeta {
                    vertex: v,
                    label: graph.label(v).to_string(),
                    kind: enc.kind,
                    parent: enc.parent,
                    rows: enc.rows,
                    cols: enc.cols,
                    plane_sizes,
                },
            );
        }
        sp.field("objects", vertices.len());
        let store = Self {
            dir: dir.to_path_buf(),
            objects,
        };
        store.write_manifest()?;
        Ok(store)
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.mhp")
    }

    fn write_manifest(&self) -> Result<(), PasError> {
        let mut out = String::new();
        out.push_str("MHPAS1\n");
        for o in self.objects.values() {
            let kind = match o.kind {
                ObjectKind::Materialized => "mat",
                ObjectKind::DeltaSub => "sub",
                ObjectKind::DeltaXor => "xor",
            };
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                o.vertex,
                kind,
                o.parent,
                o.rows,
                o.cols,
                o.plane_sizes[0],
                o.plane_sizes[1],
                o.plane_sizes[2],
                o.plane_sizes[3],
                o.label.replace(['\t', '\n'], "_"),
            ));
        }
        std::fs::write(Self::manifest_path(&self.dir), out).map_err(PasError::Io)
    }

    /// Open an existing store. The manifest may arrive inside a pulled
    /// repository, so every field is validated before use: malformed rows,
    /// bad numbers, and `rows * cols` overflow are errors, never panics.
    // mh-audit: no_panic_zone
    pub fn open(dir: &Path) -> Result<Self, PasError> {
        let text = std::fs::read_to_string(Self::manifest_path(dir)).map_err(PasError::Io)?;
        let mut lines = text.lines();
        if lines.next() != Some("MHPAS1") {
            return Err(PasError::Corrupt("bad manifest header"));
        }
        let mut objects = BTreeMap::new();
        for line in lines {
            let f: Vec<&str> = line.split('\t').collect();
            let [v, kind, parent, rows, cols, p0, p1, p2, p3, label] = f.as_slice() else {
                return Err(PasError::Corrupt("bad manifest row"));
            };
            let parse = |s: &&str| -> Result<u64, PasError> {
                s.parse()
                    .map_err(|_| PasError::Corrupt("bad manifest number"))
            };
            let vertex = parse(v)? as VertexId;
            let kind = match *kind {
                "mat" => ObjectKind::Materialized,
                "sub" => ObjectKind::DeltaSub,
                "xor" => ObjectKind::DeltaXor,
                _ => return Err(PasError::Corrupt("bad object kind")),
            };
            let rows = parse(rows)? as usize;
            let cols = parse(cols)? as usize;
            if rows.checked_mul(cols).is_none() {
                return Err(PasError::Corrupt("manifest shape overflows"));
            }
            objects.insert(
                vertex,
                ObjectMeta {
                    vertex,
                    kind,
                    parent: parse(parent)? as VertexId,
                    rows,
                    cols,
                    plane_sizes: [parse(p0)?, parse(p1)?, parse(p2)?, parse(p3)?],
                    label: label.to_string(),
                },
            );
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            objects,
        })
    }

    /// Total compressed bytes on disk (all planes).
    pub fn bytes_on_disk(&self) -> u64 {
        self.objects
            .values()
            .map(|o| o.plane_sizes.iter().sum::<u64>())
            .sum()
    }

    /// Compressed bytes needed to fetch the first `k` planes of everything
    /// on `v`'s recreation path.
    pub fn prefix_bytes(&self, v: VertexId, k: usize) -> Result<u64, PasError> {
        Ok(self
            .path(v)?
            .iter()
            .map(|o| o.plane_sizes.iter().take(k).sum::<u64>())
            .sum())
    }

    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.objects.keys().copied()
    }

    pub fn label(&self, v: VertexId) -> Option<&str> {
        self.objects.get(&v).map(|o| o.label.as_str())
    }

    /// Objects on the recreation path of `v`, root-first. A dangling
    /// parent or a parent cycle in the manifest is a corruption error, not
    /// a panic or an infinite loop.
    fn path(&self, v: VertexId) -> Result<Vec<&ObjectMeta>, PasError> {
        let mut rev = Vec::new();
        let mut cur = v;
        while cur != NULL_VERTEX {
            let o = self
                .objects
                .get(&cur)
                .ok_or(PasError::Corrupt("dangling parent in manifest"))?;
            rev.push(o);
            if rev.len() > self.objects.len() {
                return Err(PasError::Corrupt("parent cycle in manifest"));
            }
            cur = o.parent;
        }
        rev.reverse();
        Ok(rev)
    }

    /// Read and decompress the first `k` planes of one object, returning
    /// its words with the low bytes zeroed.
    ///
    /// Plane decompression goes through the byte-batched pool map: each
    /// plane's task weight is its compressed + decompressed size, so small
    /// objects coalesce into a single chunk and run inline (no pool
    /// round-trip) while large ones fan out. The merge stays serial in
    /// plane order, so the result is identical at any width or budget.
    // mh-audit: no_panic_zone
    fn load_words(&self, o: &ObjectMeta, k: usize) -> Result<Vec<u32>, PasError> {
        let mut sp = mh_obs::span("pas.load_planes");
        if sp.is_recording() {
            sp.field("planes", k);
            sp.add_bytes_in(o.plane_sizes.iter().take(k).sum());
        }
        let n = o
            .rows
            .checked_mul(o.cols)
            .ok_or(PasError::Corrupt("manifest shape overflows"))?;
        let read_plane = |p: usize| -> Result<Vec<u8>, PasError> {
            let packed = std::fs::read(plane_path(&self.dir, o.vertex, p)).map_err(PasError::Io)?;
            let plane = mh_compress::decompress(&packed).map_err(PasError::Compress)?;
            if plane.len() != n {
                return Err(PasError::Corrupt("plane length mismatch"));
            }
            Ok(plane)
        };
        let idx: Vec<usize> = (0..k).collect();
        let planes: Vec<Vec<u8>> = mh_par::parallel_map_batched(
            mh_par::current_threads(),
            &idx,
            |&p| o.plane_sizes.get(p).map_or(0, |&s| s as usize) + n,
            |_, &p| read_plane(p),
        )
        .map_err(PasError::from)?
        .into_iter()
        .collect::<Result<_, _>>()?;
        let mut words = vec![0u32; n];
        for (p, plane) in planes.iter().enumerate() {
            let shift = 8 * (3 - p) as u32;
            for (w, &b) in words.iter_mut().zip(plane) {
                *w |= u32::from(b) << shift;
            }
        }
        Ok(words)
    }

    /// Recreate the full-precision matrix at `v` by walking its chain.
    /// The chain metadata and every plane file may come from a pulled
    /// archive, so the whole walk is corruption-tolerant.
    // mh-audit: no_panic_zone
    pub fn recreate(&self, v: VertexId) -> Result<Matrix, PasError> {
        let mut sp = mh_obs::span("pas.recreate");
        let path = self.path(v)?;
        if sp.is_recording() {
            sp.field("chain_len", path.len());
        }
        let mut acc: Vec<u32> = Vec::new();
        let mut shape = (0usize, 0usize);
        for (i, o) in path.iter().enumerate() {
            let words = self.load_words(o, 4)?;
            match (i, o.kind) {
                (0, ObjectKind::Materialized) => {
                    acc = words;
                    shape = (o.rows, o.cols);
                }
                (0, _) => return Err(PasError::Corrupt("chain does not start materialized")),
                (_, ObjectKind::DeltaSub) => {
                    acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Add);
                    shape = (o.rows, o.cols);
                }
                (_, ObjectKind::DeltaXor) => {
                    acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Xor);
                    shape = (o.rows, o.cols);
                }
                (_, ObjectKind::Materialized) => {
                    return Err(PasError::Corrupt("materialized object mid-chain"))
                }
            }
        }
        let last = path.last().ok_or(PasError::Corrupt("empty chain"))?;
        words_to_matrix(&acc, last.rows, last.cols)
    }

    /// Recreate every member of a snapshot group, sequentially
    /// ("independent" scheme).
    pub fn recreate_group(&self, members: &[VertexId]) -> Result<Vec<Matrix>, PasError> {
        members.iter().map(|&v| self.recreate(v)).collect()
    }

    /// Recreate every member concurrently on the worker pool (the
    /// "parallel" retrieval scheme of Table V). A panicking or failing
    /// worker surfaces as an error instead of poisoning the whole process.
    pub fn recreate_group_parallel(&self, members: &[VertexId]) -> Result<Vec<Matrix>, PasError> {
        mh_par::parallel_map(members, |_, &v| self.recreate(v))
            .map_err(PasError::from)?
            .into_iter()
            .collect()
    }

    /// Approximate weight histogram from only the first `k` byte planes —
    /// the paper's observation that plots and visualizations "can often be
    /// executed without retrieving the lower-order bytes". Each value is
    /// binned by its interval midpoint; `range` defaults to the observed
    /// bounds.
    pub fn weight_histogram(
        &self,
        v: VertexId,
        k: usize,
        bins: usize,
        range: Option<(f32, f32)>,
    ) -> Result<Histogram, PasError> {
        assert!(bins > 0);
        let (lo, hi) = self.recreate_bounds(v, k)?;
        let mids: Vec<f32> = lo
            .as_slice()
            .iter()
            .zip(hi.as_slice())
            .map(|(l, h)| (l + h) * 0.5)
            .collect();
        let (min, max) = match range {
            Some(r) => r,
            None => {
                let min = mids.iter().copied().fold(f32::INFINITY, f32::min);
                let max = mids.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                if min < max {
                    (min, max)
                } else {
                    (min - 0.5, min + 0.5)
                }
            }
        };
        let width = (max - min) / bins as f32;
        let mut counts = vec![0u64; bins];
        for &m in &mids {
            let idx = if width > 0.0 {
                (((m - min) / width) as usize).min(bins - 1)
            } else {
                0
            };
            counts[idx] += 1;
        }
        Ok(Histogram {
            min,
            max,
            counts,
            planes_used: k,
        })
    }

    /// Recreate a group under the *reusable* scheme (Table III, ψr):
    /// intermediate chain states are computed once and shared across
    /// members whose recreation paths overlap, at the price of holding
    /// them in memory simultaneously.
    pub fn recreate_group_reusable(&self, members: &[VertexId]) -> Result<Vec<Matrix>, PasError> {
        let mut cache: BTreeMap<VertexId, (Vec<u32>, (usize, usize))> = BTreeMap::new();
        let mut out = Vec::with_capacity(members.len());
        for &m in members {
            let path = self.path(m)?;
            // Deepest already-computed vertex on this path.
            let start = path
                .iter()
                .rposition(|o| cache.contains_key(&o.vertex))
                .map(|i| i + 1)
                .unwrap_or(0);
            let (mut acc, mut shape) = if start == 0 {
                (Vec::new(), (0usize, 0usize))
            } else {
                cache[&path[start - 1].vertex].clone()
            };
            for (i, o) in path.iter().enumerate().skip(start) {
                let words = self.load_words(o, 4)?;
                match (i, o.kind) {
                    (0, ObjectKind::Materialized) => {
                        acc = words;
                        shape = (o.rows, o.cols);
                    }
                    (0, _) => return Err(PasError::Corrupt("chain does not start materialized")),
                    (_, ObjectKind::DeltaSub) => {
                        acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Add);
                        shape = (o.rows, o.cols);
                    }
                    (_, ObjectKind::DeltaXor) => {
                        acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Xor);
                        shape = (o.rows, o.cols);
                    }
                    (_, ObjectKind::Materialized) => {
                        return Err(PasError::Corrupt("materialized object mid-chain"))
                    }
                }
                cache.insert(o.vertex, (acc.clone(), shape));
            }
            out.push(words_to_matrix(&acc, shape.0, shape.1)?);
        }
        Ok(out)
    }

    /// Sound elementwise bounds on the matrix at `v` using only the first
    /// `k` byte planes of every object on its chain.
    pub fn recreate_bounds(&self, v: VertexId, k: usize) -> Result<(Matrix, Matrix), PasError> {
        assert!((1..=4).contains(&k));
        if k == 4 {
            let m = self.recreate(v)?;
            return Ok((m.clone(), m));
        }
        let path = self.path(v)?;
        let mut acc: Vec<u32> = Vec::new();
        let mut shape = (0usize, 0usize);
        // Number of objects whose unknown low bytes feed additive carries.
        let mut additive_terms = 0u32;
        let mut chain_has_sub = false;
        for (i, o) in path.iter().enumerate() {
            let words = self.load_words(o, k)?;
            match (i, o.kind) {
                (0, ObjectKind::Materialized) => {
                    acc = words;
                    shape = (o.rows, o.cols);
                    additive_terms = 1;
                }
                (0, _) => return Err(PasError::Corrupt("chain does not start materialized")),
                (_, ObjectKind::DeltaSub) => {
                    acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Add);
                    shape = (o.rows, o.cols);
                    additive_terms += 1;
                    chain_has_sub = true;
                }
                (_, ObjectKind::DeltaXor) => {
                    acc = apply_positional(&acc, shape, &words, (o.rows, o.cols), WordOp::Xor);
                    shape = (o.rows, o.cols);
                    // XOR preserves the known top bytes exactly; the low
                    // bytes stay unknown but do not spill carries upward.
                }
                (_, ObjectKind::Materialized) => {
                    return Err(PasError::Corrupt("materialized object mid-chain"))
                }
            }
        }
        let last = path.last().ok_or(PasError::Corrupt("empty chain"))?;
        let mask: u32 = (1u32 << (8 * (4 - k))) - 1;
        // Total additive slack: each additive term's low bytes lie in
        // [0, mask]. XOR-only chains still have the (single) unknown low
        // part of the final value.
        let slack: u64 = if chain_has_sub {
            u64::from(mask) * u64::from(additive_terms)
        } else {
            u64::from(mask)
        };
        let n = last.rows * last.cols;
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for &p in &acc {
            let base = u64::from(p & !mask);
            let top = (base + slack).min(u64::from(u32::MAX));
            let f0 = f32::from_bits(base as u32);
            let f1 = f32::from_bits(top as u32);
            if !f0.is_finite() || !f1.is_finite() {
                // NaN/Inf pattern territory (never reached by real weights):
                // the widest sound interval.
                lo.push(-f32::MAX);
                hi.push(f32::MAX);
            } else if (base as u32) & 0x8000_0000 != 0 && (top as u32) & 0x8000_0000 != 0 {
                // Same negative sign: larger pattern = more negative.
                lo.push(f1);
                hi.push(f0);
            } else if (base as u32) & 0x8000_0000 == 0 && (top as u32) & 0x8000_0000 == 0 {
                lo.push(f0);
                hi.push(f1);
            } else {
                // Pattern range crosses the sign boundary: fall back to the
                // widest sound interval for these magnitudes.
                let m = f0.abs().max(f1.abs());
                lo.push(-m);
                hi.push(m);
            }
        }
        Ok((
            Matrix::from_vec(last.rows, last.cols, lo),
            Matrix::from_vec(last.rows, last.cols, hi),
        ))
    }
}

/// An approximate weight histogram computed from high-order byte planes.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub min: f32,
    pub max: f32,
    pub counts: Vec<u64>,
    pub planes_used: usize,
}

impl Histogram {
    /// Total variation distance to another histogram over the same bins
    /// (0 = identical distributions, 1 = disjoint).
    pub fn distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len());
        let (na, nb) = (
            self.counts.iter().sum::<u64>().max(1) as f64,
            other.counts.iter().sum::<u64>().max(1) as f64,
        );
        0.5 * self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| (a as f64 / na - b as f64 / nb).abs())
            .sum::<f64>()
    }

    /// Render an ASCII bar chart (for the dlv CLI).
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        let bin_w = (self.max - self.min) / self.counts.len() as f32;
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.min + i as f32 * bin_w;
            let bar = "#".repeat((c as usize * width / max as usize).max(usize::from(c > 0)));
            out.push_str(&format!(
                "{lo:>10.4} | {bar} {c}
"
            ));
        }
        out
    }
}

/// Apply a delta positionally, matching `mh_delta`'s shape semantics: the
/// base is virtually zero-extended or cropped to the target's (row, col)
/// grid, never reflowed.
fn apply_positional(
    base: &[u32],
    base_shape: (usize, usize),
    delta: &[u32],
    target_shape: (usize, usize),
    op: WordOp,
) -> Vec<u32> {
    let (br, bc) = base_shape;
    let (tr, tc) = target_shape;
    let total = tr.saturating_mul(tc);
    // Fast path: same-shape delta application (the overwhelmingly common
    // case on real chains) runs the runtime-dispatched SIMD word kernels —
    // exact integer ops, bit-identical to the scalar loop below.
    if (br, bc) == (tr, tc) && base.len() == total && delta.len() == total {
        let mut out = base.to_vec();
        match op {
            WordOp::Add => mh_delta::simd::add_assign(&mut out, delta),
            WordOp::Xor => mh_delta::simd::xor_assign(&mut out, delta),
        }
        return out;
    }
    let op = |b: u32, d: u32| match op {
        WordOp::Add => b.wrapping_add(d),
        WordOp::Xor => b ^ d,
    };
    let mut out = Vec::with_capacity(total.min(1 << 24));
    for r in 0..tr {
        let base_row = if r < br {
            let start = r.saturating_mul(bc);
            base.get(start..start.saturating_add(bc)).unwrap_or(&[])
        } else {
            &[]
        };
        let delta_start = r.saturating_mul(tc);
        let delta_row = delta
            .get(delta_start..delta_start.saturating_add(tc))
            .unwrap_or(&[]);
        for c in 0..tc {
            let b = base_row.get(c).copied().unwrap_or(0);
            let d = delta_row.get(c).copied().unwrap_or(0);
            out.push(op(b, d));
        }
    }
    out
}

fn words_to_matrix(words: &[u32], rows: usize, cols: usize) -> Result<Matrix, PasError> {
    Matrix::try_from_vec(
        rows,
        cols,
        words.iter().map(|&w| f32::from_bits(w)).collect(),
    )
    .ok_or(PasError::Corrupt("word count mismatch"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::solver;
    use mh_delta::bit_equal;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mh-pas-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Three close-by matrices chained by deltas plus one independent one.
    fn setup(
        op: DeltaOp,
        tag: &str,
    ) -> (
        StorageGraph,
        StoragePlan,
        BTreeMap<VertexId, Matrix>,
        PathBuf,
    ) {
        let mut g = StorageGraph::new();
        let m0 = Matrix::from_fn(8, 9, |r, c| ((r * 9 + c) as f32 * 0.17).sin() * 0.4);
        let m1 = m0.map(|x| x + 3e-4);
        let m2 = m1.map(|x| x * 1.001 - 1e-4);
        let other = Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.21);
        let v0 = g.add_vertex("v0/conv1");
        let v1 = g.add_vertex("v1/conv1");
        let v2 = g.add_vertex("v2/conv1");
        let v3 = g.add_vertex("other/fc");
        for v in [v0, v1, v2, v3] {
            g.add_edge(NULL_VERTEX, v, EdgeKind::Materialize, 100.0, 10.0);
        }
        g.add_delta_pair(v0, v1, 10.0, 2.0);
        g.add_delta_pair(v1, v2, 10.0, 2.0);
        g.add_snapshot("s0", vec![v0, v3], f64::INFINITY);
        g.add_snapshot("s2", vec![v2], f64::INFINITY);
        let plan = solver::mst(&g).unwrap();
        let mats: BTreeMap<VertexId, Matrix> = [(v0, m0), (v1, m1), (v2, m2), (v3, other)]
            .into_iter()
            .collect();
        let dir = temp_dir(tag);
        let _ = op;
        (g, plan, mats, dir)
    }

    #[test]
    fn full_recreation_is_exact_for_both_ops() {
        for (op, tag) in [(DeltaOp::Sub, "sub"), (DeltaOp::Xor, "xor")] {
            let (g, plan, mats, dir) = setup(op, tag);
            let store = SegmentStore::create(&dir, &g, &plan, &mats, op, Level::Fast).unwrap();
            for (&v, m) in &mats {
                let back = store.recreate(v).unwrap();
                assert!(bit_equal(&back, m), "vertex {v} ({op:?})");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn reopen_from_manifest() {
        let (g, plan, mats, dir) = setup(DeltaOp::Sub, "reopen");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let disk1 = store.bytes_on_disk();
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.bytes_on_disk(), disk1);
        for (&v, m) in &mats {
            assert!(bit_equal(&store.recreate(v).unwrap(), m));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_chains_use_less_disk_than_materializing_everything() {
        let (g, plan, mats, dir) = setup(DeltaOp::Sub, "size");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let chained = store.bytes_on_disk();
        std::fs::remove_dir_all(&dir).ok();

        // All-materialized plan.
        let dir2 = temp_dir("size-mat");
        let mut flat = StoragePlan::empty(&g);
        for v in g.matrix_vertices() {
            let e = g
                .edges()
                .iter()
                .find(|e| e.to == v && e.from == NULL_VERTEX)
                .unwrap()
                .id;
            flat.set_parent(v, e);
        }
        let store2 =
            SegmentStore::create(&dir2, &g, &flat, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let materialized = store2.bytes_on_disk();
        std::fs::remove_dir_all(&dir2).ok();
        assert!(
            chained < materialized,
            "delta chain {chained} should beat materialization {materialized}"
        );
    }

    #[test]
    fn bounds_contain_truth_at_every_prefix() {
        for (op, tag) in [(DeltaOp::Sub, "bsub"), (DeltaOp::Xor, "bxor")] {
            let (g, plan, mats, dir) = setup(op, tag);
            let store = SegmentStore::create(&dir, &g, &plan, &mats, op, Level::Fast).unwrap();
            for (&v, m) in &mats {
                for k in 1..=4usize {
                    let (lo, hi) = store.recreate_bounds(v, k).unwrap();
                    for i in 0..m.len() {
                        let (l, h, x) = (lo.as_slice()[i], hi.as_slice()[i], m.as_slice()[i]);
                        assert!(
                            l <= x && x <= h,
                            "{op:?} v{v} k{k} elem {i}: {l} <= {x} <= {h}"
                        );
                    }
                }
                // Full precision prefix is exact.
                let (lo, hi) = store.recreate_bounds(v, 4).unwrap();
                assert!(bit_equal(&lo, m) && bit_equal(&hi, m));
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn bounds_tighten_with_planes() {
        let (g, plan, mats, dir) = setup(DeltaOp::Xor, "tighten");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Xor, Level::Fast).unwrap();
        let v = *mats.keys().next().unwrap();
        let mut prev = f32::INFINITY;
        for k in 1..=4usize {
            let (lo, hi) = store.recreate_bounds(v, k).unwrap();
            let w = lo
                .as_slice()
                .iter()
                .zip(hi.as_slice())
                .map(|(l, h)| h - l)
                .fold(0.0f32, f32::max);
            assert!(w <= prev + 1e-6, "width at k={k}: {w} vs {prev}");
            prev = w;
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, plan, mats, dir) = setup(DeltaOp::Sub, "par");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let members: Vec<VertexId> = mats.keys().copied().collect();
        let seq = store.recreate_group(&members).unwrap();
        let par = store.recreate_group_parallel(&members).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert!(bit_equal(a, b));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefix_bytes_monotone() {
        let (g, plan, mats, dir) = setup(DeltaOp::Sub, "prefix");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let v = *mats.keys().last().unwrap();
        let b1 = store.prefix_bytes(v, 1).unwrap();
        let b2 = store.prefix_bytes(v, 2).unwrap();
        let b4 = store.prefix_bytes(v, 4).unwrap();
        assert!(b1 < b2 && b2 < b4);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod reusable_tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::solver;
    use mh_delta::bit_equal;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mh-pas-reuse-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn reusable_matches_independent_and_shares_prefixes() {
        // Chain m0 -> m1 -> m2 -> m3: retrieving {m2, m3} reusably must
        // produce the same matrices as independent retrieval.
        let mut g = StorageGraph::new();
        let m0 = Matrix::from_fn(10, 11, |r, c| ((r * 11 + c) as f32 * 0.31).cos() * 0.5);
        let mats: Vec<Matrix> = (0..4).map(|i| m0.map(|x| x + i as f32 * 1e-4)).collect();
        let vs: Vec<VertexId> = (0..4).map(|i| g.add_vertex(&format!("m{i}"))).collect();
        for &v in &vs {
            g.add_edge(NULL_VERTEX, v, EdgeKind::Materialize, 100.0, 10.0);
        }
        for w in vs.windows(2) {
            g.add_delta_pair(w[0], w[1], 5.0, 1.0);
        }
        g.add_snapshot("s", vec![vs[2], vs[3]], f64::INFINITY);
        let plan = solver::mst(&g).unwrap();
        let map: BTreeMap<VertexId, Matrix> =
            vs.iter().copied().zip(mats.iter().cloned()).collect();
        let dir = temp_dir("basic");
        let store = SegmentStore::create(&dir, &g, &plan, &map, DeltaOp::Sub, Level::Fast).unwrap();
        let group = vec![vs[2], vs[3]];
        let independent = store.recreate_group(&group).unwrap();
        let reusable = store.recreate_group_reusable(&group).unwrap();
        for (a, b) in independent.iter().zip(&reusable) {
            assert!(bit_equal(a, b));
        }
        // And arbitrary order / duplicates still work.
        let rev = store
            .recreate_group_reusable(&[vs[3], vs[2], vs[3]])
            .unwrap();
        assert!(bit_equal(&rev[0], &mats[3]));
        assert!(bit_equal(&rev[1], &mats[2]));
        assert!(bit_equal(&rev[2], &mats[3]));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use crate::builder::{CostModel, GraphBuilder};
    use crate::solver;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mh-hist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn histogram_from_two_planes_close_to_full_precision() {
        let net = mh_dnn::zoo::lenet_s(4);
        let w = mh_dnn::Weights::init(&net, 9).unwrap();
        let mut b = GraphBuilder::new(CostModel::default());
        let lv = b.add_snapshot("m", 0, &w);
        let (g, mats) = b.finish();
        let plan = solver::mst(&g).unwrap();
        let dir = temp_dir("close");
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let v = *lv.values().next().unwrap();
        let range = Some((-0.5f32, 0.5f32));
        let full = store.weight_histogram(v, 4, 32, range).unwrap();
        let partial = store.weight_histogram(v, 2, 32, range).unwrap();
        let coarse = store.weight_histogram(v, 1, 32, range).unwrap();
        // Two high-order bytes suffice for a visually-identical histogram.
        assert!(
            full.distance(&partial) < 0.05,
            "2-plane histogram far from truth: {}",
            full.distance(&partial)
        );
        // One byte is much rougher (the exponent LSB is unknown, so
        // midpoints shift by up to 2.5x) yet still bounded away from
        // disjoint.
        assert!(
            full.distance(&coarse) < 0.8,
            "1-plane distance {}",
            full.distance(&coarse)
        );
        assert!(full.distance(&partial) < full.distance(&coarse));
        // Rendering works and mentions every bin.
        let text = full.render_ascii(40);
        assert_eq!(text.lines().count(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }
}
