//! Solvers for the Optimal Parameter Archival Storage problem (§IV-C).
//!
//! The problem (minimize total storage subject to per-snapshot co-retrieval
//! budgets) is NP-hard (Theorem 1); for the Independent and Parallel
//! schemes the optimum is a spanning tree (Lemma 2). Implemented here:
//!
//! * [`mst`] — Prim's minimum spanning tree on storage cost (the
//!   unconstrained storage optimum; one extreme of the trade-off).
//! * [`spt`] — Dijkstra's shortest-path tree on recreation cost (full
//!   materialization bias; the other extreme).
//! * [`last`] — the Khuller–Raghavachari–Young balanced tree baseline,
//!   which bounds each vertex's path to (1+ε)·dist but is blind to group
//!   constraints.
//! * [`pas_mt`] — iterative refinement: start at the MST and swap parent
//!   edges with the best marginal gain (Eq. 1 / Eq. 2) until all snapshot
//!   budgets hold.
//! * [`pas_pt`] — priority-based construction: grow the tree cheapest-
//!   storage-first, checking group feasibility with lower-bound estimates,
//!   then repair.

use crate::graph::{EdgeId, StorageGraph, VertexId, NULL_VERTEX};
use crate::plan::{PlanError, RetrievalScheme, StoragePlan};
use std::collections::BTreeSet;

/// Nominal cost in "payload bytes" of scoring one candidate edge (or
/// scanning one violated member), fed to the byte-batched pool map so a
/// scoring task amortizes its queue round-trip over thousands of edge
/// evaluations. Small graphs coalesce into a single chunk and run inline.
const SCORING_EDGE_WEIGHT: usize = 64;

/// Minimum-storage spanning arborescence rooted at ν₀ (Chu-Liu/Edmonds).
///
/// The storage graph is directed (deltas may be asymmetric and materialize
/// edges only leave ν₀), so Prim's undirected MST is not optimal here; the
/// paper's "minimum spanning tree" corresponds to the minimum arborescence
/// in our directed formulation.
pub fn mst(graph: &StorageGraph) -> Result<StoragePlan, PlanError> {
    #[derive(Clone, Debug)]
    struct E {
        u: usize,
        v: usize,
        w: f64,
        orig: EdgeId,
    }

    /// Returns the original edges of a minimum arborescence of `edges`
    /// over vertices `0..n` rooted at `root`, or None if some vertex is
    /// unreachable. `to_level` maps original graph vertices to this
    /// contraction level's vertex ids.
    fn solve(
        n: usize,
        root: usize,
        edges: &[E],
        to_level: &[usize],
        graph: &StorageGraph,
    ) -> Option<Vec<EdgeId>> {
        if n <= 1 {
            return Some(Vec::new());
        }
        // Cheapest incoming edge per non-root vertex.
        let mut inc: Vec<Option<&E>> = vec![None; n];
        for e in edges {
            if e.v != root && e.u != e.v && inc[e.v].is_none_or(|b| e.w < b.w) {
                inc[e.v] = Some(e);
            }
        }
        for (v, i) in inc.iter().enumerate() {
            if v != root && i.is_none() {
                return None;
            }
        }
        // Detect a cycle among the chosen in-edges.
        let mut color = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        let mut cycle: Option<Vec<usize>> = None;
        for start in 0..n {
            if color[start] != 0 || start == root {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            while cur != root && color[cur] == 0 {
                color[cur] = 1;
                path.push(cur);
                cur = inc[cur].expect("non-root has in-edge").u;
            }
            if cur != root && color[cur] == 1 {
                // Found a cycle: the suffix of `path` from `cur`.
                let pos = path.iter().position(|&x| x == cur).expect("on path");
                cycle = Some(path[pos..].to_vec());
            }
            for &p in &path {
                color[p] = 2;
            }
            if cycle.is_some() {
                break;
            }
        }
        let Some(cycle) = cycle else {
            // Acyclic: the chosen in-edges are the arborescence.
            return Some(
                (0..n)
                    .filter(|&v| v != root)
                    .map(|v| inc[v].expect("chosen").orig)
                    .collect(),
            );
        };

        // Contract the cycle into a fresh vertex.
        let in_cycle = {
            let mut m = vec![false; n];
            for &c in &cycle {
                m[c] = true;
            }
            m
        };
        let mut map = vec![0usize; n];
        let mut next = 0usize;
        for v in 0..n {
            if !in_cycle[v] {
                map[v] = next;
                next += 1;
            }
        }
        let nc = next; // contracted vertex id
        for &c in &cycle {
            map[c] = nc;
        }
        let new_n = next + 1;
        let new_root = map[root];
        let mut new_edges = Vec::with_capacity(edges.len());
        for e in edges {
            let (u2, v2) = (map[e.u], map[e.v]);
            if u2 == v2 {
                continue;
            }
            let w = if v2 == nc {
                e.w - inc[e.v].expect("cycle vertex has in-edge").w
            } else {
                e.w
            };
            new_edges.push(E {
                u: u2,
                v: v2,
                w,
                orig: e.orig,
            });
        }
        let new_to_level: Vec<usize> = to_level.iter().map(|&lv| map[lv]).collect();
        let chosen = solve(new_n, new_root, &new_edges, &new_to_level, graph)?;
        // Exactly one chosen edge enters the cycle; its target (translated
        // into this level's vertex space) tells us which cycle in-edge to
        // drop.
        let entered = chosen
            .iter()
            .map(|&id| to_level[graph.edge(id).to])
            .find(|t| in_cycle[*t])
            .expect("one edge enters the contracted cycle");
        let mut out = chosen;
        for &c in &cycle {
            if c != entered {
                out.push(inc[c].expect("chosen").orig);
            }
        }
        Some(out)
    }

    let edges: Vec<E> = graph
        .edges()
        .iter()
        .map(|e| E {
            u: e.from,
            v: e.to,
            w: e.storage_cost,
            orig: e.id,
        })
        .collect();
    let identity: Vec<usize> = (0..graph.num_vertices()).collect();
    let chosen = solve(graph.num_vertices(), NULL_VERTEX, &edges, &identity, graph)
        .ok_or(PlanError::Infeasible)?;
    let mut parent: Vec<Option<EdgeId>> = vec![None; graph.num_vertices()];
    for id in chosen {
        parent[graph.edge(id).to] = Some(id);
    }
    StoragePlan::from_parents(graph, parent)
}

/// Prim-style greedy spanning tree on storage cost (kept as a fast
/// approximation and for cost-model experiments; exact only when delta
/// costs are symmetric).
pub fn greedy_mst(graph: &StorageGraph) -> Result<StoragePlan, PlanError> {
    grow_tree(graph, |e| e.storage_cost)
}

/// Dijkstra shortest-path tree on recreation cost from ν₀.
pub fn spt(graph: &StorageGraph) -> Result<StoragePlan, PlanError> {
    let n = graph.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[NULL_VERTEX] = 0.0;
    for _ in 0..n {
        // Extract the unfinished vertex with minimum distance.
        let u = (0..n)
            .filter(|&v| !done[v] && dist[v].is_finite())
            .min_by(|&a, &b| dist[a].total_cmp(&dist[b]));
        let Some(u) = u else { break };
        done[u] = true;
        for &eid in graph.outgoing(u) {
            let e = graph.edge(eid);
            let nd = dist[u] + e.recreation_cost;
            if nd < dist[e.to] {
                dist[e.to] = nd;
                parent[e.to] = Some(eid);
            }
        }
    }
    if graph.matrix_vertices().any(|v| parent[v].is_none()) {
        return Err(PlanError::Infeasible);
    }
    StoragePlan::from_parents(graph, parent)
}

/// Generic greedy tree growth minimizing `weight` on the crossing edge.
fn grow_tree(
    graph: &StorageGraph,
    weight: impl Fn(&crate::graph::Edge) -> f64,
) -> Result<StoragePlan, PlanError> {
    let n = graph.num_vertices();
    let mut in_tree = vec![false; n];
    in_tree[NULL_VERTEX] = true;
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut best: Vec<Option<EdgeId>> = vec![None; n];
    for &eid in graph.outgoing(NULL_VERTEX) {
        let e = graph.edge(eid);
        if best[e.to].is_none_or(|b| weight(graph.edge(b)) > weight(e)) {
            best[e.to] = Some(eid);
        }
    }
    for _ in 1..n {
        let next = (0..n)
            .filter(|&v| !in_tree[v])
            .filter_map(|v| best[v].map(|e| (v, e)))
            .min_by(|&(_, a), &(_, b)| weight(graph.edge(a)).total_cmp(&weight(graph.edge(b))))
            .map(|(v, _)| v);
        let Some(v) = next else {
            return Err(PlanError::Infeasible);
        };
        in_tree[v] = true;
        parent[v] = best[v];
        for &eid in graph.outgoing(v) {
            let e = graph.edge(eid);
            if !in_tree[e.to] && best[e.to].is_none_or(|b| weight(graph.edge(b)) > weight(e)) {
                best[e.to] = Some(eid);
            }
        }
    }
    StoragePlan::from_parents(graph, parent)
}

/// LAST (Khuller et al. 1995): start from the MST, DFS, and re-hang any
/// vertex whose tree path exceeds (1+ε) times its shortest-path distance
/// onto its SPT parent. Ignores group constraints entirely — the baseline
/// the paper compares against in Fig 6(c).
pub fn last(graph: &StorageGraph, epsilon: f64) -> Result<StoragePlan, PlanError> {
    let mst_plan = mst(graph)?;
    let spt_plan = spt(graph)?;
    let n = graph.num_vertices();
    let mut dist = vec![0.0f64; n];
    for v in graph.matrix_vertices() {
        dist[v] = spt_plan.matrix_recreation_cost(graph, v);
    }
    let mut parent: Vec<Option<EdgeId>> = (0..n).map(|v| mst_plan.parent_edge(v)).collect();

    // DFS from ν₀ over the MST, tracking the current path cost with the
    // relinks applied so far.
    let mut cost = vec![0.0f64; n];
    let mut stack: Vec<VertexId> = mst_plan.children(graph, NULL_VERTEX).into_iter().collect();
    let mut order = Vec::new();
    // Pre-compute DFS order (children lists don't change during the scan —
    // a relink only redirects a vertex's parent pointer upward).
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend(mst_plan.children(graph, v));
    }
    // Tracks which vertices have been switched onto their SPT parent; once
    // switched, a vertex's whole root path is SPT edges (SPT parents are
    // unique and never reverted), so its cost is exactly dist[v].
    let mut on_spt = vec![false; n];
    for &v in &order {
        let e = parent[v].expect("spanning MST");
        let p = graph.edge(e).from;
        let via_tree = cost[p] + graph.edge(e).recreation_cost;
        if via_tree > (1.0 + epsilon) * dist[v] + 1e-12 {
            // Re-hang the *entire* shortest path from ν₀ to v: relinking
            // only v's parent edge would leave MST edges upstream and void
            // the (1+ε) guarantee.
            for pe in spt_plan.path_edges(graph, v) {
                let u = graph.edge(pe).to;
                parent[u] = Some(pe);
                if !on_spt[u] {
                    on_spt[u] = true;
                    cost[u] = dist[u];
                }
            }
        } else if !on_spt[v] {
            cost[v] = via_tree;
        }
    }
    StoragePlan::from_parents(graph, parent)
}

/// The marginal-gain repair loop shared by PAS-MT and PAS-PT.
///
/// While any snapshot budget is violated, evaluate every legal parent swap
/// `(p(v) → v)  ⇒  (s → v)` and apply the one with the largest gain:
/// recreation improvement summed over violated groups (Eq. 1, independent)
/// or max-based (Eq. 2, parallel), divided by the storage increase.
pub fn repair(
    graph: &StorageGraph,
    plan: &mut StoragePlan,
    scheme: RetrievalScheme,
    max_rounds: usize,
) {
    let mut sp = mh_obs::span("pas.solver.repair");
    let rounds = repair_impl(graph, plan, scheme, max_rounds);
    mh_obs::counter!("pas_repair_rounds_total").add(rounds as u64);
    if sp.is_recording() {
        sp.field("rounds", rounds);
    }
}

/// [`repair`] body, returning the number of swap rounds executed so the
/// wrapper can report it.
fn repair_impl(
    graph: &StorageGraph,
    plan: &mut StoragePlan,
    scheme: RetrievalScheme,
    max_rounds: usize,
) -> usize {
    for round in 0..max_rounds {
        let violated = plan.violated_snapshots(graph, scheme);
        if violated.is_empty() {
            return round;
        }
        let n = graph.num_vertices();
        // One O(V + E) pass per round: children adjacency, recreation costs
        // via a preorder walk, and Euler-tour in/out times so subtree
        // membership is an O(1) interval check (the naive per-vertex
        // subtree sets made large instances quadratic).
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in graph.matrix_vertices() {
            let p = plan.parent(graph, v).expect("spanning plan");
            children[p].push(v);
        }
        let mut cr = vec![0.0f64; n];
        let mut tin = vec![0usize; n];
        let mut tout = vec![0usize; n];
        let mut clock = 0usize;
        // Iterative DFS from ν₀ computing costs and Euler intervals.
        enum Ev {
            Enter(VertexId),
            Exit(VertexId),
        }
        let mut stack = vec![Ev::Enter(NULL_VERTEX)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(v) => {
                    clock += 1;
                    tin[v] = clock;
                    if v != NULL_VERTEX {
                        let e = graph.edge(plan.parent_edge(v).expect("spanning"));
                        cr[v] = cr[e.from] + e.recreation_cost;
                    }
                    stack.push(Ev::Exit(v));
                    for &c in &children[v] {
                        stack.push(Ev::Enter(c));
                    }
                }
                Ev::Exit(v) => {
                    clock += 1;
                    tout[v] = clock;
                }
            }
        }
        let in_subtree = |root: VertexId, v: VertexId| tin[root] <= tin[v] && tout[v] <= tout[root];

        // Members of violated groups, for the gain numerator.
        let violated_members: Vec<(usize, &[VertexId])> = violated
            .iter()
            .map(|&gi| (gi, graph.snapshots[gi].members.as_slice()))
            .collect();

        // Best swap for one vertex, scanning its candidate edges in order
        // with strict `>` (first maximum wins — the serial tie-break).
        let score_vertex = |v: VertexId| -> Option<(f64, VertexId, EdgeId)> {
            let cur_edge = plan.parent_edge(v).expect("spanning plan");
            // Members of violated groups inside v's subtree (shared across
            // all candidate edges into v).
            let mut affected_independent = 0usize;
            let mut affected_groups = 0usize;
            for (_, members) in &violated_members {
                let c = members.iter().filter(|&&m| in_subtree(v, m)).count();
                affected_independent += c;
                affected_groups += usize::from(c > 0);
            }
            if affected_independent == 0 {
                return None; // swapping v cannot help any violated group
            }
            let mut best: Option<(f64, VertexId, EdgeId)> = None;
            for &eid in graph.incoming(v) {
                if eid == cur_edge {
                    continue;
                }
                let e = graph.edge(eid);
                if in_subtree(v, e.from) {
                    continue; // would create a cycle
                }
                // Recreation change for v and every descendant:
                // new - old = (cr[from] + cr(e)) - cr[v].
                let delta = cr[e.from] + e.recreation_cost - cr[v];
                if delta >= 0.0 {
                    continue; // no improvement
                }
                let improvement = -delta;
                let num = match scheme {
                    RetrievalScheme::Independent | RetrievalScheme::Reusable => {
                        improvement * affected_independent as f64
                    }
                    RetrievalScheme::Parallel => improvement * affected_groups as f64,
                };
                let denom = e.storage_cost - graph.edge(cur_edge).storage_cost;
                let gain = if denom <= 0.0 {
                    f64::INFINITY
                } else {
                    num / denom
                };
                if best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                    best = Some((gain, v, eid));
                }
            }
            best
        };
        // Scoring is read-only per vertex, so large instances fan out to
        // the pool in byte-batched chunks (weight ≈ candidate edges plus
        // violated-member scans); the serial reduce below (vertex order,
        // strict `>`) reproduces the serial scan's first-maximum choice
        // exactly at any thread count or batch budget.
        let verts: Vec<VertexId> = graph.matrix_vertices().collect();
        let members_scanned: usize = violated_members.iter().map(|(_, m)| m.len()).sum();
        let per_vertex: Vec<Option<(f64, VertexId, EdgeId)>> = mh_par::parallel_map_batched(
            mh_par::current_threads(),
            &verts,
            |&v| SCORING_EDGE_WEIGHT * (graph.incoming(v).len() + members_scanned),
            |_, &v| score_vertex(v),
        )
        .expect("scoring workers");
        let mut best: Option<(f64, VertexId, EdgeId)> = None;
        for cand in per_vertex.into_iter().flatten() {
            if best.as_ref().is_none_or(|(g, _, _)| cand.0 > *g) {
                best = Some(cand);
            }
        }
        match best {
            Some((_, v, eid)) => plan.set_parent(v, eid),
            None => {
                // Greedy swaps are stuck with violations remaining: fall
                // back to shortest paths for every member of a violated
                // group. Re-hanging the entire SPT path of a vertex sets
                // its recreation cost to the graph minimum, so if the SPT
                // satisfies the budgets at all, this terminates feasible.
                let Ok(spt_plan) = spt(graph) else {
                    return round + 1;
                };
                for gi in violated {
                    for &m in &graph.snapshots[gi].members {
                        for eid in spt_plan.path_edges(graph, m) {
                            plan.set_parent(graph.edge(eid).to, eid);
                        }
                    }
                }
                return round + 1;
            }
        }
    }
    max_rounds
}

/// PAS-MT: MST followed by iterative constraint repair.
pub fn pas_mt(graph: &StorageGraph, scheme: RetrievalScheme) -> Result<StoragePlan, PlanError> {
    let _sp = mh_obs::span("pas.solver.pas_mt");
    let mut plan = mst(graph)?;
    let bound = graph.num_edges().max(16) * 4;
    repair(graph, &mut plan, scheme, bound);
    Ok(plan)
}

/// PAS-PT: grow the tree cheapest-storage-first with group feasibility
/// estimates, then repair any residual violations.
pub fn pas_pt(graph: &StorageGraph, scheme: RetrievalScheme) -> Result<StoragePlan, PlanError> {
    let _sp = mh_obs::span("pas.solver.pas_pt");
    let n = graph.num_vertices();
    let mut in_tree = vec![false; n];
    in_tree[NULL_VERTEX] = true;
    let mut plan = StoragePlan::empty(graph);
    let mut cr = vec![0.0f64; n];

    // Candidate heap keyed by storage cost (BTreeSet used as an ordered
    // queue to keep determinism).
    let mut queue: BTreeSet<(u64, EdgeId)> = BTreeSet::new();
    let key = |c: f64, id: EdgeId| -> (u64, EdgeId) { (c.max(0.0).to_bits(), id) };
    for &eid in graph.outgoing(NULL_VERTEX) {
        queue.insert(key(graph.edge(eid).storage_cost, eid));
    }

    // Estimated group recreation cost if `cand` joins with recreation cost
    // `cand_cr`: in-tree members use actual cost, out-of-tree members use
    // the direct-edge lower bound.
    let estimate = |group: &crate::graph::SnapshotGroup,
                    in_tree: &[bool],
                    cr: &[f64],
                    cand: VertexId,
                    cand_cr: f64|
     -> f64 {
        let member_cost = |&v: &VertexId| -> f64 {
            if v == cand {
                cand_cr
            } else if in_tree[v] {
                cr[v]
            } else {
                let b = graph.direct_recreation_bound(v);
                if b.is_finite() {
                    b
                } else {
                    0.0 // no lower bound available: optimistic
                }
            }
        };
        match scheme {
            RetrievalScheme::Independent | RetrievalScheme::Reusable => {
                group.members.iter().map(member_cost).sum()
            }
            RetrievalScheme::Parallel => group.members.iter().map(member_cost).fold(0.0, f64::max),
        }
    };

    while let Some(&(k, eid)) = queue.iter().next() {
        queue.remove(&(k, eid));
        let e = graph.edge(eid);
        if in_tree[e.to] || !in_tree[e.from] {
            continue;
        }
        let cand_cr = cr[e.from] + e.recreation_cost;
        // Feasibility estimate for every group containing the candidate.
        let feasible = graph.groups_of(e.to).into_iter().all(|gi| {
            let g = &graph.snapshots[gi];
            estimate(g, &in_tree, &cr, e.to, cand_cr) <= g.budget + 1e-9
        });
        if !feasible {
            continue; // this option is discarded; another edge will cover e.to
        }
        // Accept.
        in_tree[e.to] = true;
        plan.set_parent(e.to, eid);
        cr[e.to] = cand_cr;
        for &out in graph.outgoing(e.to) {
            let oe = graph.edge(out);
            if !in_tree[oe.to] {
                queue.insert(key(oe.storage_cost, out));
            }
        }
        // Improvement: re-hang existing vertices through the newcomer when
        // it strictly reduces storage without increasing recreation.
        for &out in graph.outgoing(e.to) {
            let oe = graph.edge(out);
            if oe.to == NULL_VERTEX || !in_tree[oe.to] {
                continue;
            }
            let vk = oe.to;
            let cur = plan.parent_edge(vk).expect("in-tree vertex has parent");
            let cur_e = graph.edge(cur);
            let new_cr = cr[e.to] + oe.recreation_cost;
            if oe.storage_cost < cur_e.storage_cost && new_cr <= cr[vk] + 1e-12 {
                // Must not create a cycle: e.to cannot be in vk's subtree.
                if !plan.subtree(graph, vk).contains(&e.to) {
                    plan.set_parent(vk, out);
                    cr[vk] = new_cr;
                }
            }
        }
    }

    // Any vertices the feasibility filter starved: attach via the
    // lowest-recreation in-tree edge (preferring direct materialization).
    for v in graph.matrix_vertices() {
        if in_tree[v] {
            continue;
        }
        let mut best: Option<(f64, EdgeId)> = None;
        for &eid in graph.incoming(v) {
            let e = graph.edge(eid);
            if !in_tree[e.from] {
                continue;
            }
            let c = cr[e.from] + e.recreation_cost;
            if best.is_none_or(|(bc, _)| c < bc) {
                best = Some((c, eid));
            }
        }
        let (c, eid) = best.ok_or(PlanError::Infeasible)?;
        in_tree[v] = true;
        cr[v] = c;
        plan.set_parent(v, eid);
    }
    plan.validate(graph)?;
    let bound = graph.num_edges().max(16) * 4;
    repair(graph, &mut plan, scheme, bound);
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{fig5_example, StorageGraph};

    fn fig5_complete() -> (StorageGraph, Vec<VertexId>) {
        // The example already carries direct materialize options for every
        // matrix, so solvers always have a feasible fallback.
        fig5_example()
    }

    #[test]
    fn mst_matches_fig5b() {
        let (g, _) = fig5_example();
        let plan = mst(&g).unwrap();
        assert_eq!(plan.storage_cost(&g), 19.0);
    }

    #[test]
    fn spt_minimizes_recreation() {
        let (g, m) = fig5_complete();
        let plan = spt(&g).unwrap();
        for v in g.matrix_vertices() {
            // SPT distance is the minimum over any plan; check against MST.
            let d = plan.matrix_recreation_cost(&g, v);
            let mst_plan = mst(&g).unwrap();
            assert!(
                d <= mst_plan.matrix_recreation_cost(&g, v) + 1e-9,
                "vertex {v}"
            );
        }
        // m3's shortest path: ν0→m1→m3 = 1.5 (cheaper than direct 2).
        assert_eq!(plan.matrix_recreation_cost(&g, m[2]), 1.5);
    }

    #[test]
    fn pas_mt_satisfies_fig5c_budgets() {
        let (mut g, _) = fig5_example();
        g.snapshots[0].budget = 3.0;
        g.snapshots[1].budget = 6.0;
        let plan = pas_mt(&g, RetrievalScheme::Independent).unwrap();
        assert!(
            plan.satisfies_budgets(&g, RetrievalScheme::Independent),
            "costs: {:?}",
            plan.all_snapshot_costs(&g, RetrievalScheme::Independent)
        );
        // The optimum under these budgets is Cs = 23 (materialize m5,
        // keep the m1→m3→m4 delta chain); the heuristic should land there.
        assert!(
            plan.storage_cost(&g) <= 23.0 + 1e-9,
            "storage {} exceeds the known optimum 23",
            plan.storage_cost(&g)
        );
    }

    #[test]
    fn pas_pt_satisfies_fig5c_budgets() {
        let (mut g, _) = fig5_complete();
        g.snapshots[0].budget = 3.0;
        g.snapshots[1].budget = 6.0;
        let plan = pas_pt(&g, RetrievalScheme::Independent).unwrap();
        assert!(
            plan.satisfies_budgets(&g, RetrievalScheme::Independent),
            "costs: {:?}",
            plan.all_snapshot_costs(&g, RetrievalScheme::Independent)
        );
    }

    #[test]
    fn unconstrained_solvers_agree_with_mst() {
        let (g, _) = fig5_complete();
        let m = mst(&g).unwrap();
        for plan in [
            pas_mt(&g, RetrievalScheme::Independent).unwrap(),
            pas_pt(&g, RetrievalScheme::Independent).unwrap(),
        ] {
            assert!(
                plan.storage_cost(&g) <= m.storage_cost(&g) * 1.5 + 1e-9,
                "unconstrained plan should be near the MST"
            );
            assert!(plan.satisfies_budgets(&g, RetrievalScheme::Independent));
        }
    }

    #[test]
    fn last_interpolates_between_mst_and_spt() {
        let (g, _) = fig5_complete();
        let mst_cost = mst(&g).unwrap().storage_cost(&g);
        let spt_cost = spt(&g).unwrap().storage_cost(&g);
        // Large ε: behaves like the MST.
        let loose = last(&g, 100.0).unwrap();
        assert!((loose.storage_cost(&g) - mst_cost).abs() < 1e-9);
        // ε = 0: every path must be shortest, storage approaches SPT's.
        let tight = last(&g, 0.0).unwrap();
        for v in g.matrix_vertices() {
            let d = spt(&g).unwrap().matrix_recreation_cost(&g, v);
            assert!(tight.matrix_recreation_cost(&g, v) <= d + 1e-9);
        }
        assert!(tight.storage_cost(&g) <= spt_cost.max(mst_cost) + 1e-9);
    }

    #[test]
    fn parallel_scheme_constraints() {
        let (mut g, _) = fig5_complete();
        g.snapshots[1].budget = 2.5; // max path in s2 must be <= 2.5
        for plan in [
            pas_mt(&g, RetrievalScheme::Parallel).unwrap(),
            pas_pt(&g, RetrievalScheme::Parallel).unwrap(),
        ] {
            assert!(
                plan.satisfies_budgets(&g, RetrievalScheme::Parallel),
                "costs: {:?}",
                plan.all_snapshot_costs(&g, RetrievalScheme::Parallel)
            );
        }
    }

    #[test]
    fn infeasible_graph_reported() {
        let mut g = StorageGraph::new();
        let _a = g.add_vertex("isolated");
        assert!(matches!(mst(&g), Err(PlanError::Infeasible)));
        assert!(matches!(spt(&g), Err(PlanError::Infeasible)));
    }

    #[test]
    fn tight_budgets_drive_plans_toward_spt() {
        let (mut g, _) = fig5_complete();
        let spt_plan = spt(&g).unwrap();
        for (i, s) in g.snapshots.clone().iter().enumerate() {
            let c = spt_plan.snapshot_recreation_cost(&g, &s.members, RetrievalScheme::Independent);
            g.snapshots[i].budget = c; // tightest satisfiable budget
        }
        for plan in [
            pas_mt(&g, RetrievalScheme::Independent).unwrap(),
            pas_pt(&g, RetrievalScheme::Independent).unwrap(),
        ] {
            assert!(
                plan.satisfies_budgets(&g, RetrievalScheme::Independent),
                "PAS solvers must meet SPT-tight budgets; got {:?} vs budgets {:?}",
                plan.all_snapshot_costs(&g, RetrievalScheme::Independent),
                g.snapshots.iter().map(|s| s.budget).collect::<Vec<_>>()
            );
        }
    }
}
