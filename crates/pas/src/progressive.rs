//! Progressive query (inference) evaluation — §IV-D.
//!
//! `dlv eval` against an archived model first fetches only the high-order
//! byte plane of every weight matrix on the model's recreation chains,
//! evaluates the network with interval arithmetic, and checks the
//! error-determinism condition (Lemma 4). Only if the prediction is not
//! determined does it fetch the next plane, and so on — full precision is
//! the last resort, so most queries never touch the low-order bytes.

use crate::graph::VertexId;
use crate::segstore::SegmentStore;
use crate::PasError;
use mh_dnn::{determined_top_k, interval_forward, IntervalWeights, Network};
use mh_tensor::Tensor3;
use std::collections::BTreeMap;

/// Binds an archived snapshot to a network: layer name -> vertex holding
/// that layer's weights.
#[derive(Debug, Clone)]
pub struct ModelBinding {
    pub net: Network,
    pub layer_vertex: BTreeMap<String, VertexId>,
}

impl ModelBinding {
    pub fn new(net: Network, layer_vertex: BTreeMap<String, VertexId>) -> Self {
        Self { net, layer_vertex }
    }
}

/// Outcome of one progressive evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveResult {
    /// The determined top-k indices (best first).
    pub prediction: Vec<usize>,
    /// Byte planes that had to be fetched (1 = high byte only .. 4 = full).
    pub planes_used: usize,
    /// Compressed bytes actually read, summed over the chains.
    pub bytes_read: u64,
    /// Compressed bytes a full-precision read would have cost.
    pub full_bytes: u64,
}

impl ProgressiveResult {
    /// Fraction of the full-precision footprint that was read.
    pub fn read_fraction(&self) -> f64 {
        if self.full_bytes == 0 {
            1.0
        } else {
            self.bytes_read as f64 / self.full_bytes as f64
        }
    }
}

/// Progressive evaluator over a segment store.
#[derive(Debug)]
pub struct ProgressiveEvaluator<'a> {
    store: &'a SegmentStore,
    binding: &'a ModelBinding,
}

impl<'a> ProgressiveEvaluator<'a> {
    pub fn new(store: &'a SegmentStore, binding: &'a ModelBinding) -> Self {
        Self { store, binding }
    }

    /// Interval weights from the first `k` planes of every bound layer.
    /// Each layer's chain reconstruction is independent, so the per-layer
    /// bounds are computed on the pool in byte-batched chunks (weight =
    /// the layer's k-plane prefix bytes, so small layers coalesce into
    /// one inline chunk) and inserted serially in layer order (insertion
    /// order never depends on thread count or batch budget).
    fn interval_weights(&self, k: usize) -> Result<IntervalWeights, PasError> {
        let layers: Vec<(&String, VertexId)> = self
            .binding
            .layer_vertex
            .iter()
            .map(|(l, &v)| (l, v))
            .collect();
        let bounds = mh_par::parallel_map_batched(
            mh_par::current_threads(),
            &layers,
            |&(_, v)| self.store.prefix_bytes(v, k).unwrap_or(0) as usize,
            |_, &(_, v)| self.store.recreate_bounds(v, k),
        )
        .map_err(PasError::from)?;
        let mut iw = IntervalWeights::default();
        for ((layer, _), b) in layers.iter().zip(bounds) {
            let (lo, hi) = b?;
            iw.insert(layer, lo, hi);
        }
        Ok(iw)
    }

    fn chain_bytes(&self, k: usize) -> Result<u64, PasError> {
        self.binding
            .layer_vertex
            .values()
            .try_fold(0u64, |acc, &v| Ok(acc + self.store.prefix_bytes(v, k)?))
    }

    /// Evaluate one input progressively, guaranteeing the returned top-k
    /// prediction equals the full-precision result.
    pub fn eval(&self, input: &Tensor3, top_k: usize) -> Result<ProgressiveResult, PasError> {
        let mut sp = mh_obs::span("pas.progressive.eval");
        let full_bytes = self.chain_bytes(4)?;
        for k in 1..=4usize {
            let mut step = mh_obs::span("pas.progressive.step");
            let iw = self.interval_weights(k)?;
            let out = interval_forward(&self.binding.net, &iw, input)
                .map_err(|e| PasError::Eval(e.to_string()))?;
            if step.is_recording() {
                // Residual logit-interval width: the α-error still present
                // after k planes (0 means the prediction is exact).
                let width = out
                    .hi
                    .as_slice()
                    .iter()
                    .zip(out.lo.as_slice())
                    .map(|(h, l)| h - l)
                    .fold(0.0f32, f32::max);
                step.field("planes", k);
                step.field("logit_interval_width", width);
            }
            if let Some(pred) = determined_top_k(&out, top_k) {
                let bytes_read = self.chain_bytes(k)?;
                drop(step);
                mh_obs::histogram!("pas_progressive_planes_used", &[1.0, 2.0, 3.0])
                    .observe(k as f64);
                if sp.is_recording() {
                    sp.field("planes_used", k);
                    sp.add_bytes_in(bytes_read);
                }
                return Ok(ProgressiveResult {
                    prediction: pred,
                    planes_used: k,
                    bytes_read,
                    full_bytes,
                });
            }
        }
        // Full precision: bounds are exact, so only exact logit ties can
        // remain; break them by argmax order.
        let iw = self.interval_weights(4)?;
        let out = interval_forward(&self.binding.net, &iw, input)
            .map_err(|e| PasError::Eval(e.to_string()))?;
        let mut idx: Vec<usize> = (0..out.lo.len()).collect();
        idx.sort_by(|&a, &b| out.lo.as_slice()[b].total_cmp(&out.lo.as_slice()[a]));
        idx.truncate(top_k);
        mh_obs::histogram!("pas_progressive_planes_used", &[1.0, 2.0, 3.0]).observe(4.0);
        if sp.is_recording() {
            sp.field("planes_used", 4);
            sp.add_bytes_in(full_bytes);
        }
        Ok(ProgressiveResult {
            prediction: idx,
            planes_used: 4,
            bytes_read: full_bytes,
            full_bytes,
        })
    }

    /// Evaluate a labelled set, reporting per-plane usage histogram and the
    /// top-1 accuracy (identical to full precision by construction).
    pub fn eval_batch(
        &self,
        data: &[(Tensor3, usize)],
        top_k: usize,
    ) -> Result<BatchStats, PasError> {
        let mut stats = BatchStats::default();
        for (x, label) in data {
            let r = self.eval(x, top_k)?;
            stats.planes_histogram[r.planes_used - 1] += 1;
            stats.total_bytes_read += r.bytes_read;
            stats.total_full_bytes += r.full_bytes;
            if r.prediction.contains(label) {
                stats.correct += 1;
            }
            stats.total += 1;
        }
        Ok(stats)
    }
}

/// Aggregate progressive-evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// How many queries stopped after 1, 2, 3, 4 planes.
    pub planes_histogram: [usize; 4],
    pub total_bytes_read: u64,
    pub total_full_bytes: u64,
    pub correct: usize,
    pub total: usize,
}

impl BatchStats {
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    pub fn read_fraction(&self) -> f64 {
        if self.total_full_bytes == 0 {
            1.0
        } else {
            self.total_bytes_read as f64 / self.total_full_bytes as f64
        }
    }

    /// Fraction of queries that needed more than `k` planes.
    pub fn fraction_beyond(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.planes_histogram[k..].iter().sum::<usize>() as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CostModel, GraphBuilder};
    use crate::solver;
    use mh_compress::Level;
    use mh_delta::DeltaOp;
    use mh_dnn::{forward, synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mh-prog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn trained_setup(
        tag: &str,
    ) -> (
        SegmentStore,
        ModelBinding,
        Vec<(Tensor3, usize)>,
        mh_dnn::Weights,
        PathBuf,
    ) {
        let net = zoo::lenet_s(3);
        let data = synth_dataset(&SynthConfig {
            num_classes: 3,
            train_per_class: 10,
            test_per_class: 4,
            noise: 0.05,
            seed: 5,
            ..Default::default()
        });
        let trainer = Trainer::new(Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        });
        let init = Weights::init(&net, 2).unwrap();
        let result = trainer.train(&net, init, &data, 25).unwrap();

        let mut b = GraphBuilder::new(CostModel::default());
        let lv = b.add_snapshot("m", 0, &result.weights);
        let (g, mats) = b.finish();
        let plan = solver::mst(&g).unwrap();
        let dir = temp_dir(tag);
        let store =
            SegmentStore::create(&dir, &g, &plan, &mats, DeltaOp::Sub, Level::Fast).unwrap();
        let binding = ModelBinding::new(net, lv);
        (store, binding, data.test, result.weights, dir)
    }

    #[test]
    fn progressive_matches_full_precision() {
        let (store, binding, test, weights, dir) = trained_setup("match");
        let ev = ProgressiveEvaluator::new(&store, &binding);
        for (x, _) in test.iter().take(6) {
            let r = ev.eval(x, 1).unwrap();
            let exact = forward(&binding.net, &weights, x).unwrap().argmax();
            assert_eq!(r.prediction[0], exact, "progressive must equal exact");
            assert!(r.bytes_read <= r.full_bytes);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn most_queries_avoid_low_planes() {
        let (store, binding, test, _, dir) = trained_setup("hist");
        let ev = ProgressiveEvaluator::new(&store, &binding);
        let stats = ev.eval_batch(&test, 1).unwrap();
        assert_eq!(stats.total, test.len());
        // The design premise (Fig 6d): the overwhelming majority of queries
        // are determined from 1-2 high-order planes.
        assert!(
            stats.fraction_beyond(2) < 0.5,
            "too many full-precision reads: {:?}",
            stats.planes_histogram
        );
        assert!(stats.read_fraction() < 1.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top5_determination() {
        let (store, binding, test, weights, dir) = trained_setup("top5");
        let ev = ProgressiveEvaluator::new(&store, &binding);
        let (x, _) = &test[0];
        let r = ev.eval(x, 3).unwrap();
        assert_eq!(r.prediction.len(), 3);
        // All classes, so top-3 of 3 = every class; must agree with exact
        // ranking's first element.
        let exact = forward(&binding.net, &weights, x).unwrap().argmax();
        assert_eq!(r.prediction[0], exact);
        std::fs::remove_dir_all(&dir).ok();
    }
}
