//! # mh-pas
//!
//! PAS — the read-optimized Parameter Archival Storage of the ModelHub
//! paper (§IV). Maintains large collections of versioned float matrices
//! compactly without compromising query performance:
//!
//! * [`graph`] — the matrix storage graph: matrices ⊎ ν₀, with materialize
//!   and delta storage options weighted by storage/recreation cost;
//! * [`plan`] — spanning-tree storage plans and the Independent / Parallel
//!   / Reusable recreation cost model;
//! * [`solver`] — MST, SPT, the LAST baseline, and the paper's PAS-MT and
//!   PAS-PT heuristics for the NP-hard constrained archival problem;
//! * [`builder`] — constructs the graph from model-repository artifacts
//!   with measured compression costs;
//! * [`segstore`] — the physical byte-plane chunk store with full,
//!   truncated and interval-bounded retrieval;
//! * [`progressive`] — progressive query evaluation: fetch high-order
//!   planes, interval-evaluate, fetch more only when the prediction is not
//!   yet determined (Lemma 4).
//!
//! ```
//! use mh_pas::{apply_alpha_budgets, solver, CostModel, GraphBuilder, RetrievalScheme};
//! use mh_dnn::{zoo, Weights};
//!
//! // Two adjacent checkpoints of one model become a storage graph ...
//! let mut b = GraphBuilder::new(CostModel::default());
//! let net = zoo::lenet_s(4);
//! let w0 = Weights::init(&net, 1).unwrap();
//! let w1: Weights = w0.layers().map(|(n, m)| (n.clone(), m.map(|x| x + 1e-4))).collect();
//! b.add_snapshot("v", 0, &w0);
//! b.add_snapshot("v", 1, &w1);
//! b.link_version_chain("v", &[0, 1]);
//! let (mut graph, _matrices) = b.finish();
//!
//! // ... solved under a 2x recreation budget.
//! apply_alpha_budgets(&mut graph, 2.0, RetrievalScheme::Independent).unwrap();
//! let plan = solver::pas_mt(&graph, RetrievalScheme::Independent).unwrap();
//! assert!(plan.satisfies_budgets(&graph, RetrievalScheme::Independent));
//! // Deltas make the plan cheaper than materializing both snapshots.
//! let spt = solver::spt(&graph).unwrap();
//! assert!(plan.storage_cost(&graph) <= spt.storage_cost(&graph));
//! ```

pub mod builder;
pub mod graph;
pub mod plan;
pub mod progressive;
pub mod segstore;
pub mod solver;

pub use builder::{apply_alpha_budgets, CostModel, GraphBuilder};
pub use graph::{Edge, EdgeId, EdgeKind, SnapshotGroup, StorageGraph, VertexId, NULL_VERTEX};
pub use plan::{PlanError, RetrievalScheme, StoragePlan};
pub use progressive::{BatchStats, ModelBinding, ProgressiveEvaluator, ProgressiveResult};
pub use segstore::{Histogram, SegmentStore};

/// Pre-register this crate's metric series in the global mh-obs registry
/// so they appear (at zero) in `/metrics` before any PAS work runs.
pub fn register_metrics() {
    let _ = mh_obs::counter!("pas_repair_rounds_total");
    let _ = mh_obs::histogram!("pas_progressive_planes_used", &[1.0, 2.0, 3.0]);
}

/// Errors from PAS operations.
#[derive(Debug)]
pub enum PasError {
    Plan(PlanError),
    Io(std::io::Error),
    Compress(mh_compress::CompressError),
    Corrupt(&'static str),
    /// A matrix required by the plan was not supplied.
    MissingMatrix(String),
    /// Network evaluation failed during a progressive query.
    Eval(String),
    /// A worker in the parallel archival/retrieval pool failed.
    Parallel(String),
}

impl std::fmt::Display for PasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Plan(e) => write!(f, "plan error: {e}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Compress(e) => write!(f, "compression error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt store: {m}"),
            Self::MissingMatrix(l) => write!(f, "missing matrix for vertex '{l}'"),
            Self::Eval(m) => write!(f, "evaluation error: {m}"),
            Self::Parallel(m) => write!(f, "parallel execution error: {m}"),
        }
    }
}

impl std::error::Error for PasError {}

impl From<mh_par::PoolError> for PasError {
    fn from(e: mh_par::PoolError) -> Self {
        Self::Parallel(e.to_string())
    }
}

impl From<PlanError> for PasError {
    fn from(e: PlanError) -> Self {
        Self::Plan(e)
    }
}
