//! Storage plans (Definition 2) and their cost model (Table III).
//!
//! For the Independent and Parallel retrieval schemes the optimal plan is a
//! spanning tree rooted at ν₀ (Lemma 2), so a plan is represented as a
//! parent-edge assignment per matrix vertex.

use crate::graph::{EdgeId, StorageGraph, VertexId, NULL_VERTEX};
use std::collections::BTreeSet;

/// How a snapshot's matrices are recreated (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalScheme {
    /// Matrices one by one; cost = Σ path costs.
    Independent,
    /// All matrices concurrently; cost = max path cost.
    Parallel,
    /// Shared path prefixes computed once; cost = Σ over the union of path
    /// edges (the Steiner tree induced inside the plan tree).
    Reusable,
}

/// A spanning-tree storage plan: one incoming edge per matrix vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePlan {
    /// `parent_edge[v]` is the edge that recreates v. Index 0 (ν₀) is None.
    parent_edge: Vec<Option<EdgeId>>,
}

impl StoragePlan {
    /// Build from an explicit parent-edge assignment.
    pub fn from_parents(
        graph: &StorageGraph,
        parent_edge: Vec<Option<EdgeId>>,
    ) -> Result<Self, PlanError> {
        let plan = Self { parent_edge };
        plan.validate(graph)?;
        Ok(plan)
    }

    /// An unvalidated plan under construction (all vertices unassigned).
    pub fn empty(graph: &StorageGraph) -> Self {
        Self {
            parent_edge: vec![None; graph.num_vertices()],
        }
    }

    pub fn set_parent(&mut self, v: VertexId, e: EdgeId) {
        self.parent_edge[v] = Some(e);
    }

    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.parent_edge[v]
    }

    /// The parent vertex of `v` in the tree.
    pub fn parent(&self, graph: &StorageGraph, v: VertexId) -> Option<VertexId> {
        self.parent_edge[v].map(|e| graph.edge(e).from)
    }

    /// Children of `v` under this plan.
    pub fn children(&self, graph: &StorageGraph, v: VertexId) -> Vec<VertexId> {
        (1..graph.num_vertices())
            .filter(|&u| self.parent(graph, u) == Some(v))
            .collect()
    }

    /// All vertices in the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, graph: &StorageGraph, v: VertexId) -> BTreeSet<VertexId> {
        let mut out = BTreeSet::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            if out.insert(u) {
                stack.extend(self.children(graph, u));
            }
        }
        out
    }

    /// Check every matrix vertex has a parent edge and the structure is a
    /// tree rooted at ν₀.
    pub fn validate(&self, graph: &StorageGraph) -> Result<(), PlanError> {
        if self.parent_edge.len() != graph.num_vertices() {
            return Err(PlanError::WrongSize);
        }
        if self.parent_edge[NULL_VERTEX].is_some() {
            return Err(PlanError::NullHasParent);
        }
        for v in graph.matrix_vertices() {
            let e = self.parent_edge[v].ok_or(PlanError::Unassigned(v))?;
            // An out-of-range edge id is as mismatched as a wrong target.
            if e >= graph.num_edges() || graph.edge(e).to != v {
                return Err(PlanError::EdgeMismatch(v));
            }
        }
        // Walk each path to the root, detecting cycles.
        for v in graph.matrix_vertices() {
            let mut seen = BTreeSet::new();
            let mut cur = v;
            while cur != NULL_VERTEX {
                if !seen.insert(cur) {
                    return Err(PlanError::Cycle(v));
                }
                cur = self.parent(graph, cur).ok_or(PlanError::Unassigned(cur))?;
            }
        }
        Ok(())
    }

    /// Edges along the recreation path ν₀ → v (root-first order).
    pub fn path_edges(&self, graph: &StorageGraph, v: VertexId) -> Vec<EdgeId> {
        let mut rev = Vec::new();
        let mut cur = v;
        while let Some(e) = self.parent_edge[cur] {
            rev.push(e);
            cur = graph.edge(e).from;
        }
        rev.reverse();
        rev
    }

    /// Total storage cost Cs(P) = Σ storage cost of chosen edges.
    pub fn storage_cost(&self, graph: &StorageGraph) -> f64 {
        graph
            .matrix_vertices()
            .filter_map(|v| self.parent_edge[v])
            .map(|e| graph.edge(e).storage_cost)
            .sum()
    }

    /// Recreation cost of a single matrix: Σ recreation cost along its path.
    pub fn matrix_recreation_cost(&self, graph: &StorageGraph, v: VertexId) -> f64 {
        self.path_edges(graph, v)
            .iter()
            .map(|&e| graph.edge(e).recreation_cost)
            .sum()
    }

    /// Recreation cost of a snapshot group under a retrieval scheme.
    pub fn snapshot_recreation_cost(
        &self,
        graph: &StorageGraph,
        members: &[VertexId],
        scheme: RetrievalScheme,
    ) -> f64 {
        match scheme {
            RetrievalScheme::Independent => members
                .iter()
                .map(|&v| self.matrix_recreation_cost(graph, v))
                .sum(),
            RetrievalScheme::Parallel => members
                .iter()
                .map(|&v| self.matrix_recreation_cost(graph, v))
                .fold(0.0, f64::max),
            RetrievalScheme::Reusable => {
                // Within a tree, the minimal subtree connecting ν₀ and the
                // members is exactly the union of their root paths.
                let union: BTreeSet<EdgeId> = members
                    .iter()
                    .flat_map(|&v| self.path_edges(graph, v))
                    .collect();
                union.iter().map(|&e| graph.edge(e).recreation_cost).sum()
            }
        }
    }

    /// Recreation costs of all registered snapshots.
    pub fn all_snapshot_costs(&self, graph: &StorageGraph, scheme: RetrievalScheme) -> Vec<f64> {
        graph
            .snapshots
            .iter()
            .map(|s| self.snapshot_recreation_cost(graph, &s.members, scheme))
            .collect()
    }

    /// Indices of snapshots whose budget is violated.
    pub fn violated_snapshots(&self, graph: &StorageGraph, scheme: RetrievalScheme) -> Vec<usize> {
        graph
            .snapshots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                self.snapshot_recreation_cost(graph, &s.members, scheme) > s.budget + 1e-9
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether all group budgets hold.
    pub fn satisfies_budgets(&self, graph: &StorageGraph, scheme: RetrievalScheme) -> bool {
        self.violated_snapshots(graph, scheme).is_empty()
    }
}

/// Plan structure errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    WrongSize,
    NullHasParent,
    Unassigned(VertexId),
    EdgeMismatch(VertexId),
    Cycle(VertexId),
    /// No feasible plan (graph lacks edges to span all vertices).
    Infeasible,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongSize => write!(f, "plan size does not match graph"),
            Self::NullHasParent => write!(f, "ν0 must not have a parent"),
            Self::Unassigned(v) => write!(f, "vertex {v} has no storage option"),
            Self::EdgeMismatch(v) => write!(f, "parent edge of {v} targets another vertex"),
            Self::Cycle(v) => write!(f, "cycle through vertex {v}"),
            Self::Infeasible => write!(f, "graph admits no spanning plan"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::fig5_example;

    /// Reconstruct Fig 5(b): the MST-like optimal plan without constraints.
    fn fig5b_plan(graph: &StorageGraph, m: &[VertexId]) -> StoragePlan {
        let mut plan = StoragePlan::empty(graph);
        let find = |from: VertexId, to: VertexId| -> EdgeId {
            graph
                .edges()
                .iter()
                .find(|e| e.from == from && e.to == to)
                .map(|e| e.id)
                .expect("edge exists")
        };
        plan.set_parent(m[0], find(NULL_VERTEX, m[0])); // ν0→m1 (2,1)
        plan.set_parent(m[1], find(NULL_VERTEX, m[1])); // ν0→m2 (8,2)
        plan.set_parent(m[2], find(m[0], m[2])); // m1→m3 (1,0.5)
        plan.set_parent(m[3], find(m[2], m[3])); // m3→m4 (4,1)
        plan.set_parent(m[4], find(m[3], m[4])); // m4→m5 (4,1)
        plan.validate(graph).unwrap();
        plan
    }

    #[test]
    fn fig5b_costs_match_paper() {
        let (g, m) = fig5_example();
        let plan = fig5b_plan(&g, &m);
        // Paper: Cs = 19, Cr_independent(s1) = 3, Cr_independent(s2) = 7.5.
        assert_eq!(plan.storage_cost(&g), 19.0);
        let s1 = plan.snapshot_recreation_cost(
            &g,
            &g.snapshots[0].members,
            RetrievalScheme::Independent,
        );
        let s2 = plan.snapshot_recreation_cost(
            &g,
            &g.snapshots[1].members,
            RetrievalScheme::Independent,
        );
        assert_eq!(s1, 3.0);
        assert_eq!(s2, 7.5);
        assert!(plan.satisfies_budgets(&g, RetrievalScheme::Independent));
    }

    #[test]
    fn fig5c_constrained_plan() {
        // Analogue of the paper's Fig 5(c): under θ1 = 3, θ2 = 6 the
        // optimal plan materializes m5 and keeps the cheap delta chain for
        // m3/m4: Cs = 23, Cr(s1) = 3, Cr(s2) = 6.
        let (mut g, m) = fig5_example();
        g.snapshots[0].budget = 3.0;
        g.snapshots[1].budget = 6.0;
        let find = |g: &StorageGraph, from: VertexId, to: VertexId| -> EdgeId {
            g.edges()
                .iter()
                .find(|e| e.from == from && e.to == to)
                .map(|e| e.id)
                .unwrap()
        };
        let mut plan = StoragePlan::empty(&g);
        plan.set_parent(m[0], find(&g, NULL_VERTEX, m[0]));
        plan.set_parent(m[1], find(&g, NULL_VERTEX, m[1]));
        plan.set_parent(m[2], find(&g, m[0], m[2])); // m1→m3 (1,0.5)
        plan.set_parent(m[3], find(&g, m[2], m[3])); // m3→m4 (4,1)
        plan.set_parent(m[4], find(&g, NULL_VERTEX, m[4])); // materialize m5 (8,2)
        plan.validate(&g).unwrap();
        assert_eq!(plan.storage_cost(&g), 23.0);
        let s2 = plan.snapshot_recreation_cost(
            &g,
            &g.snapshots[1].members,
            RetrievalScheme::Independent,
        );
        assert_eq!(s2, 6.0);
        assert!(plan.satisfies_budgets(&g, RetrievalScheme::Independent));
    }

    #[test]
    fn parallel_and_reusable_schemes() {
        let (g, m) = fig5_example();
        let plan = fig5b_plan(&g, &m);
        // Parallel s2: path costs are m3 = 1.5, m4 = 2.5, m5 = 3.5 → 3.5.
        let p =
            plan.snapshot_recreation_cost(&g, &g.snapshots[1].members, RetrievalScheme::Parallel);
        assert_eq!(p, 3.5);
        // Reusable s2: union edges {ν0→m1, m1→m3, m3→m4, m4→m5}
        // = 1 + 0.5 + 1 + 1 = 3.5.
        let r =
            plan.snapshot_recreation_cost(&g, &g.snapshots[1].members, RetrievalScheme::Reusable);
        assert_eq!(r, 3.5);
    }

    #[test]
    fn validation_catches_cycles_and_gaps() {
        let (g, m) = fig5_example();
        let mut plan = StoragePlan::empty(&g);
        assert_eq!(plan.validate(&g), Err(PlanError::Unassigned(m[0])));
        // Build a cycle m3 -> m4 -> m3.
        let e34 = g
            .edges()
            .iter()
            .find(|e| e.from == m[2] && e.to == m[3])
            .unwrap()
            .id;
        let e43 = g
            .edges()
            .iter()
            .find(|e| e.from == m[3] && e.to == m[2])
            .unwrap()
            .id;
        plan.set_parent(m[3], e34);
        plan.set_parent(m[2], e43);
        for v in [m[0], m[1], m[4]] {
            let e = g.edges().iter().find(|e| e.to == v).unwrap().id;
            plan.set_parent(v, e);
        }
        assert!(matches!(plan.validate(&g), Err(PlanError::Cycle(_))));
    }

    #[test]
    fn violated_snapshots_reported() {
        let (mut g, m) = fig5_example();
        g.snapshots[1].budget = 5.0;
        let plan = fig5b_plan(&g, &m);
        assert_eq!(
            plan.violated_snapshots(&g, RetrievalScheme::Independent),
            vec![1]
        );
        assert!(plan
            .violated_snapshots(&g, RetrievalScheme::Parallel)
            .is_empty());
    }

    #[test]
    fn subtree_and_children() {
        let (g, m) = fig5_example();
        let plan = fig5b_plan(&g, &m);
        let sub = plan.subtree(&g, m[0]);
        assert!(sub.contains(&m[0]) && sub.contains(&m[2]) && sub.contains(&m[3]));
        assert!(!sub.contains(&m[1]));
        assert_eq!(plan.children(&g, m[2]), vec![m[3]]);
    }
}
