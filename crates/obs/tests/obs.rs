//! Integration tests for mh-obs: JSONL sink end-to-end, capture → profile
//! tree, and Prometheus rendering of an isolated registry.

use std::io::BufRead;

use mh_obs::{build_profile, render_profile, Registry};

/// A full enable → span → disable cycle through the JSONL sink produces
/// one valid JSON object per span with nesting intact.
#[test]
fn jsonl_sink_end_to_end() {
    let _g = mh_obs::test_trace_lock();
    let dir = std::env::temp_dir().join(format!("mh-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("trace.jsonl");
    mh_obs::enable_jsonl(&path).expect("enable jsonl");
    {
        let mut outer = mh_obs::span("it.outer");
        outer.field("phase", "test");
        {
            let mut inner = mh_obs::span("it.inner");
            inner.add_bytes_out(42);
        }
    }
    mh_obs::disable();

    let file = std::fs::File::open(&path).expect("trace file exists");
    let lines: Vec<String> = std::io::BufReader::new(file)
        .lines()
        .map(|l| l.expect("line"))
        .filter(|l| l.contains("\"it."))
        .collect();
    assert_eq!(lines.len(), 2);
    // Completion order: inner first.
    assert!(lines[0].contains("\"name\":\"it.inner\""));
    assert!(lines[0].contains("\"bytes_out\":42"));
    assert!(lines[1].contains("\"name\":\"it.outer\""));
    assert!(lines[1].contains("\"fields\":{\"phase\":\"test\"}"));
    // The inner span's parent is the outer span's id.
    let outer_id = lines[1]
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .expect("outer id");
    assert!(lines[0].contains(&format!("\"parent\":{outer_id}")));
    // Every line is a single JSON object.
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Capture a nested workload and check the aggregated profile tree:
/// grouping by path, counts, and deterministic child ordering.
#[test]
fn capture_to_profile_tree() {
    let _g = mh_obs::test_trace_lock();
    mh_obs::enable_capture();
    {
        let _root = mh_obs::span("pt.archive");
        for _ in 0..3 {
            let _enc = mh_obs::span("pt.encode");
            let _c = mh_obs::span("pt.compress");
        }
        let _w = mh_obs::span("pt.write");
    }
    let records: Vec<_> = mh_obs::drain_capture()
        .into_iter()
        .filter(|r| r.name.starts_with("pt."))
        .collect();
    mh_obs::disable();

    let tree = build_profile(&records);
    assert_eq!(tree.len(), 1);
    let root = &tree[0];
    assert_eq!(root.name, "pt.archive");
    assert_eq!(root.count, 1);
    let child_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(child_names, vec!["pt.encode", "pt.write"]);
    assert_eq!(root.children[0].count, 3);
    assert_eq!(root.children[0].children[0].name, "pt.compress");
    assert_eq!(root.children[0].children[0].count, 3);

    let text = render_profile(&tree);
    let expected_order = ["pt.archive", "pt.encode", "pt.compress", "pt.write"];
    let mut pos = 0;
    for name in expected_order {
        let at = text[pos..].find(name).expect("name present in order");
        pos += at;
    }
}

/// Child-process half of `panic_hook_flushes_jsonl_and_dumps_flightrec`:
/// panics inside an open span with the JSONL sink live, so the parent can
/// assert the panic hook flushed the sink and dumped the flight recorder.
/// Inert unless the env var is set.
#[test]
fn panic_hook_child_scenario() {
    let Ok(path) = std::env::var("MH_OBS_PANIC_CHILD") else {
        return;
    };
    mh_obs::install_panic_hook();
    mh_obs::flightrec::enable();
    mh_obs::enable_jsonl(std::path::Path::new(&path)).expect("enable jsonl");
    {
        let mut done = mh_obs::span("ph.completed");
        done.field("phase", "before-panic");
    }
    let _open = mh_obs::span("ph.open_at_panic");
    panic!("deliberate panic inside a span");
}

/// A process that panics mid-span still leaves a usable trace behind: the
/// panic hook flushes the buffered JSONL sink (completed spans reach disk)
/// and dumps the flight recorder to stderr.
#[test]
fn panic_hook_flushes_jsonl_and_dumps_flightrec() {
    let dir = std::env::temp_dir().join(format!("mh-obs-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("panic-trace.jsonl");
    let out = std::process::Command::new(std::env::current_exe().expect("test exe"))
        .args(["--exact", "panic_hook_child_scenario", "--nocapture"])
        .env("MH_OBS_PANIC_CHILD", &path)
        .output()
        .expect("spawn child");
    assert!(
        !out.status.success(),
        "child must die from the deliberate panic"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--- flight recorder dump ---") && stderr.contains("ph.completed"),
        "panic hook must dump the flight recorder to stderr, got:\n{stderr}"
    );

    // The completed span was sitting in the sink's write buffer when the
    // panic hit; the hook's flush is what put it on disk.
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    assert!(
        text.lines()
            .any(|l| l.contains("\"name\":\"ph.completed\"")),
        "flushed trace must contain the completed span, got:\n{text}"
    );
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// An isolated Registry renders valid Prometheus text with histogram
/// bucket/sum/count series.
#[test]
fn isolated_registry_prometheus_text() {
    let r = Registry::new();
    r.counter_labeled("it_requests_total", &[("endpoint", "objects")])
        .add(5);
    r.gauge("it_queue_depth").set(2);
    let h = r.histogram("it_latency_us", &[100.0, 1000.0]);
    h.observe(50.0);
    h.observe(5000.0);

    let text = r.render_prometheus();
    assert!(text.contains("# TYPE it_latency_us histogram"));
    assert!(text.contains("it_latency_us_bucket{le=\"100\"} 1"));
    assert!(text.contains("it_latency_us_bucket{le=\"1000\"} 1"));
    assert!(text.contains("it_latency_us_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("it_latency_us_sum 5050"));
    assert!(text.contains("it_latency_us_count 2"));
    assert!(text.contains("it_requests_total{endpoint=\"objects\"} 5"));
    assert!(text.contains("it_queue_depth 2"));
    // Isolation: the global registry does not see these series.
    assert!(!Registry::global()
        .render_prometheus()
        .contains("it_requests_total"));
}
