//! Always-on flight recorder: a fixed-capacity sharded ring that keeps
//! the most recent span records and warn/error log events, even when span
//! tracing (`--trace`) is off.
//!
//! The recorder exists to answer "what just happened?" after a failure:
//! hubd serves its contents at `GET /debug/flightrec`, the panic hook
//! dumps it to stderr, and `modelhub prof --from-dump` renders a dump as
//! a profile tree. It is disarmed by default at the crate level (so unit
//! tests see the historical inert-span behaviour) and armed by the CLIs
//! and by hubd at startup.
//!
//! Overhead is bounded by construction: a fixed number of shards, each a
//! fixed-length ring guarded by its own mutex, selected by thread id so
//! concurrent recorders rarely contend. The `flightrec_overhead_pct`
//! bench leg (repro pas --quick) holds the armed-vs-disarmed cost of a
//! full archival build under 3%.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::span::SpanRecord;

/// Shard count (power of two, indexed by thread id).
const SHARDS: usize = 8;
/// Events retained per shard; total capacity is `SHARDS * SHARD_CAP`.
const SHARD_CAP: usize = 128;

static ARMED: AtomicBool = AtomicBool::new(false);
/// Global capture sequence; orders events across shards in dumps.
static SEQ: AtomicU64 = AtomicU64::new(1);

#[derive(Debug, Clone)]
enum Event {
    Span(SpanRecord),
    Log { level: &'static str, msg: String },
}

struct Shard {
    /// Ring slots as (sequence, event); overwritten oldest-first.
    slots: Vec<(u64, Event)>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

fn shards() -> &'static [Mutex<Shard>; SHARDS] {
    static RINGS: OnceLock<[Mutex<Shard>; SHARDS]> = OnceLock::new();
    RINGS.get_or_init(|| {
        std::array::from_fn(|_| {
            Mutex::new(Shard {
                slots: Vec::with_capacity(SHARD_CAP),
                next: 0,
            })
        })
    })
}

fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is the recorder currently armed? Checked on the span fast path.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder. Idempotent; called by CLI entry points and hubd.
pub fn enable() {
    crate::span::touch_epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm the recorder and clear its contents (used by the overhead bench
/// to measure a recorder-free baseline, and by tests).
pub fn disable() {
    ARMED.store(false, Ordering::Relaxed);
    for shard in shards() {
        let mut s = lock(shard);
        s.slots.clear();
        s.next = 0;
    }
}

fn push(event: Event) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let shard = &shards()[(crate::span::thread_id() as usize) & (SHARDS - 1)];
    let mut s = lock(shard);
    if s.slots.len() < SHARD_CAP {
        s.slots.push((seq, event));
    } else {
        let next = s.next;
        s.slots[next] = (seq, event);
        s.next = (next + 1) % SHARD_CAP;
    }
}

/// Record a finished span (no-op when disarmed). Called from the span
/// sink fan-out.
pub(crate) fn record_span(record: &SpanRecord) {
    if !armed() {
        return;
    }
    push(Event::Span(record.clone()));
}

/// Record a warn/error log event (no-op when disarmed).
pub(crate) fn record_log(level: &'static str, msg: String) {
    if !armed() {
        return;
    }
    push(Event::Log { level, msg });
}

/// Number of events currently retained (for tests and diagnostics).
pub fn len() -> usize {
    shards().iter().map(|s| lock(s).slots.len()).sum()
}

/// Render the recorder contents as deterministic JSONL: events sorted by
/// capture sequence (oldest first), spans in the `SpanRecord::to_json`
/// line format, log events as `{"level":"...","msg":"..."}` objects.
/// Empty string when nothing has been recorded.
pub fn dump() -> String {
    let mut events: Vec<(u64, Event)> = Vec::new();
    for shard in shards() {
        events.extend(lock(shard).slots.iter().cloned());
    }
    events.sort_by_key(|(seq, _)| *seq);
    let mut out = String::new();
    for (_, event) in events {
        match event {
            Event::Span(r) => out.push_str(&r.to_json()),
            Event::Log { level, msg } => {
                out.push_str(&format!(
                    "{{\"level\":\"{}\",\"msg\":\"{}\"}}",
                    level,
                    crate::span::escape_json(&msg)
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_stays_empty_and_spans_stay_inert() {
        let _g = crate::test_trace_lock();
        crate::disable();
        disable();
        let s = crate::span("fr.off");
        assert!(!s.is_recording());
        drop(s);
        record_log("warn", "dropped".to_string());
        assert_eq!(len(), 0);
        assert!(dump().is_empty());
    }

    #[test]
    fn armed_recorder_captures_spans_and_logs_with_trace_off() {
        let _g = crate::test_trace_lock();
        crate::disable();
        disable();
        enable();
        {
            let mut s = crate::span("fr.span_a");
            assert!(s.is_recording(), "armed recorder keeps spans live");
            s.field("k", 1);
        }
        record_log("error", "boom \"quoted\"".to_string());
        let text = dump();
        disable();
        assert!(text.contains("\"name\":\"fr.span_a\""));
        assert!(text.contains("{\"level\":\"error\",\"msg\":\"boom \\\"quoted\\\"\"}"));
        // Span lines precede the later log line (sequence order).
        let span_at = text.find("fr.span_a").unwrap();
        let log_at = text.find("\"level\":\"error\"").unwrap();
        assert!(span_at < log_at);
        // While trace capture was off, nothing leaked into the capture buf.
        assert!(crate::drain_capture().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_dump_is_sequence_sorted() {
        let _g = crate::test_trace_lock();
        crate::disable();
        disable();
        enable();
        // Overfill well past total capacity from one thread (one shard).
        for i in 0..(SHARD_CAP * 2) {
            record_log("warn", format!("ev{i}"));
        }
        let text = dump();
        disable();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), SHARD_CAP);
        // Oldest retained is the first event after overwrite.
        assert!(lines[0].contains(&format!("\"msg\":\"ev{}\"", SHARD_CAP)));
        assert!(lines[SHARD_CAP - 1].contains(&format!("\"msg\":\"ev{}\"", SHARD_CAP * 2 - 1)));
        // Strictly increasing event numbers (sequence sort).
        let nums: Vec<usize> = lines
            .iter()
            .map(|l| {
                l.split("\"msg\":\"ev")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(nums.windows(2).all(|w| w[0] < w[1]));
    }
}
