//! The metrics half of mh-obs: counters, gauges, and fixed-bucket
//! histograms behind plain atomics, registered by name (plus optional
//! static label pairs) in a [`Registry`], snapshot-able and renderable as
//! Prometheus text exposition format.
//!
//! Recording is always-on and cheap: one `fetch_add` for a counter, a
//! bucket scan plus two atomic adds for a histogram. Registration goes
//! through a mutex, so hot paths should resolve their metric once — the
//! `counter!`/`gauge!`/`histogram!` macros in the crate root cache the
//! lookup in a per-call-site `OnceLock`.
//!
//! Registered metrics are leaked (`Box::leak`) so recording sites can hold
//! `&'static` references; the set of metric names in a process is small
//! and fixed, so this is a bounded, deliberate leak.

use crate::shim::{AtomicI64, AtomicU64, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.value.fetch_sub(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper-bound buckets (Prometheus semantics: a
/// bucket with bound `le` counts observations `<= le`; the implicit last
/// bucket is `+Inf`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut b = bounds.to_vec();
        b.retain(|x| x.is_finite());
        b.sort_by(f64::total_cmp);
        b.dedup();
        let n = b.len();
        Self {
            bounds: b,
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured finite upper bounds (the `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative `(le, count)` pairs in Prometheus order, ending with the
    /// `+Inf` bucket (whose count equals [`Histogram::count`]).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Estimate the `q`-quantile (0.0 ≤ q ≤ 1.0) by linear interpolation
    /// inside the bucket containing rank `q * count`, the standard
    /// Prometheus `histogram_quantile` scheme: the first bucket's lower
    /// edge is 0, and ranks landing in the `+Inf` bucket are clamped to
    /// the largest finite bound. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut prev_le = 0.0f64;
        let mut prev_count = 0u64;
        for (le, cum) in self.cumulative() {
            if (cum as f64) >= rank {
                if le.is_infinite() {
                    return prev_le;
                }
                let in_bucket = cum - prev_count;
                if in_bucket == 0 {
                    return le;
                }
                let frac = (rank - prev_count as f64) / in_bucket as f64;
                return prev_le + frac * (le - prev_le);
            }
            prev_le = le;
            prev_count = cum;
        }
        prev_le
    }
}

/// The kind + storage of one registered metric.
#[derive(Debug, Clone, Copy)]
pub enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn type_name(self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered series: metric name, label pairs, storage.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A point-in-time reading of one series, for tests and the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: SampleValue,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    /// `(cumulative buckets, sum, count)`.
    Histogram(Vec<(f64, u64)>, f64, u64),
}

/// A collection of named metrics. Most code uses the process-global
/// registry via [`Registry::global`] (or the crate-root convenience
/// functions and macros); components that need isolated counters — e.g.
/// one hub server instance among several in a test process — create their
/// own.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

/// Series key: metric name plus rendered labels, so differently-labeled
/// series of the same metric coexist.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut key = String::from(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Register (or fetch) a counter named `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.counter_labeled(name, &[])
    }

    /// Register (or fetch) a counter with label pairs.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> &'static Counter {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(series_key(name, labels))
            .or_insert_with(|| Entry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                metric: Metric::Counter(Box::leak(Box::new(Counter::default()))),
            });
        match entry.metric {
            Metric::Counter(c) => c,
            // A name collision across metric kinds is a programming error;
            // fall back to a detached counter rather than panicking in a
            // recording path.
            _ => Box::leak(Box::new(Counter::default())),
        }
    }

    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.gauge_labeled(name, &[])
    }

    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(series_key(name, labels))
            .or_insert_with(|| Entry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                metric: Metric::Gauge(Box::leak(Box::new(Gauge::default()))),
            });
        match entry.metric {
            Metric::Gauge(g) => g,
            _ => Box::leak(Box::new(Gauge::default())),
        }
    }

    /// Register (or fetch) a histogram. The first registration fixes the
    /// bucket bounds; later calls with different bounds get the original.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> &'static Histogram {
        self.histogram_labeled(name, &[], bounds)
    }

    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> &'static Histogram {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(series_key(name, labels))
            .or_insert_with(|| Entry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                metric: Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))),
            });
        match entry.metric {
            Metric::Histogram(h) => h,
            _ => Box::leak(Box::new(Histogram::new(bounds))),
        }
    }

    /// Point-in-time readings of every registered series, sorted by
    /// (name, labels) — deterministic for tests and reports.
    pub fn snapshot(&self) -> Vec<Sample> {
        let entries = self.entries.lock();
        entries
            .values()
            .map(|e| Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match e.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        SampleValue::Histogram(h.cumulative(), h.sum(), h.count())
                    }
                },
            })
            .collect()
    }

    /// Render every registered series in Prometheus text exposition
    /// format: one `# TYPE` line per metric name, then its series in
    /// deterministic (name, labels) order.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock();
        // Group by metric name, preserving BTreeMap order.
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in entries.values() {
            if last_name != Some(e.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
                last_name = Some(e.name.as_str());
            }
            match e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        render_labels(&e.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        render_labels(&e.labels, None),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    for (le, cum) in h.cumulative() {
                        let le = if le.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format_f64(le)
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            render_labels(&e.labels, Some(&le)),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        render_labels(&e.labels, None),
                        format_f64(h.sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        render_labels(&e.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Render a f64 the way Prometheus expects (shortest round-trip; Rust's
/// `{}` for f64 already is).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("test_requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test_depth");
        g.set(7);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 5);
        // Same name resolves to the same storage.
        r.counter("test_requests_total").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_observe_le_semantics() {
        let r = Registry::new();
        let h = r.histogram("test_h", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1e6] {
            h.observe(v);
        }
        // le=1: 0.5, 1.0 | le=10: +1.5, 10.0 | le=100: +99.9, 100.0 | +Inf: 1e6
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert_eq!(
            h.cumulative(),
            vec![(1.0, 2), (10.0, 4), (100.0, 6), (f64::INFINITY, 7)]
        );
        assert_eq!(h.count(), 7);
        assert!((h.sum() - (0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 100.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("test_q", &[10.0, 100.0, 1000.0]);
        // 8 observations ≤10, 2 in (10,100]: cumulative [8, 10, 10, 10].
        for _ in 0..8 {
            h.observe(5.0);
        }
        h.observe(50.0);
        h.observe(60.0);
        // p50: rank 5 inside the first bucket (edges 0..10) → 10 * 5/8.
        assert_eq!(h.quantile(0.5), 6.25);
        // p80: rank 8 is exactly the first bucket's cumulative → its edge.
        assert_eq!(h.quantile(0.8), 10.0);
        // p90: rank 9, second bucket (10..100), 1 of 2 → 10 + 90/2.
        assert_eq!(h.quantile(0.9), 55.0);
        // p100 lands on the last populated bucket's upper edge.
        assert_eq!(h.quantile(1.0), 100.0);
        // q is clamped.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let r = Registry::new();
        let h = r.histogram("test_q_edge", &[10.0, 100.0]);
        // Empty histogram: 0.
        assert_eq!(h.quantile(0.5), 0.0);
        // All observations beyond the last finite bound clamp to it.
        h.observe(1e9);
        h.observe(1e9);
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(0.99), 100.0);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let r = Registry::new();
        r.counter_labeled("z_total", &[("endpoint", "b")]).add(2);
        r.counter_labeled("z_total", &[("endpoint", "a")]).add(1);
        r.gauge("a_depth").set(-3);
        let text = r.render_prometheus();
        let again = r.render_prometheus();
        assert_eq!(text, again);
        // Sorted: a_depth before z_total; labeled series sorted by label.
        let ia = text.find("a_depth -3").expect("gauge line");
        let iza = text.find("z_total{endpoint=\"a\"} 1").expect("labeled a");
        let izb = text.find("z_total{endpoint=\"b\"} 2").expect("labeled b");
        assert!(ia < iza && iza < izb);
        assert!(text.contains("# TYPE a_depth gauge"));
        assert!(text.contains("# TYPE z_total counter"));
        // Exactly one TYPE line for z_total despite two series.
        assert_eq!(text.matches("# TYPE z_total").count(), 1);
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd" // backslash, quote, newline all escaped
        );
    }

    /// With `--features model` this exercises the instrumented shim's
    /// real-primitive fallback path (no checker run active).
    #[test]
    fn concurrent_histogram_sum_is_exact_for_integers() {
        let r = Registry::new();
        let h = r.histogram("test_conc", &[10.0, 1000.0]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert!((h.sum() - 8000.0).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![8000, 0, 0]);
    }
}

/// Model-checked explorations of the registry's concurrency-sensitive
/// paths (`cargo test -p mh-obs --features model`). These run every
/// interleaving of the instrumented mutex/atomic operations up to the
/// preemption bound, so a lost registration or torn histogram update is
/// found deterministically rather than by stress.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use std::sync::Arc;

    /// Two threads racing to get-or-register the same counter name must
    /// resolve to the *same* storage — a lost registration would drop one
    /// thread's increments on a detached counter.
    #[test]
    fn model_get_or_register_single_storage() {
        let stats = mh_model::Builder::new().preemption_bound(2).check(|| {
            let r = Arc::new(Registry::new());
            let (ra, rb) = (Arc::clone(&r), Arc::clone(&r));
            let ta = mh_model::sync::thread::spawn(move || {
                let c = ra.counter_labeled("model_reg_total", &[("side", "x")]);
                c.inc();
                c as *const Counter as usize
            });
            let tb = mh_model::sync::thread::spawn(move || {
                let c = rb.counter_labeled("model_reg_total", &[("side", "x")]);
                c.inc();
                c as *const Counter as usize
            });
            let pa = ta.join().expect("registering thread a");
            let pb = tb.join().expect("registering thread b");
            assert_eq!(pa, pb, "racing registrations resolved to different storage");
            let snap = r.snapshot();
            assert_eq!(snap.len(), 1, "exactly one series registered");
            assert_eq!(snap[0].value, SampleValue::Counter(2));
        });
        assert!(stats.complete, "exploration should finish within budget");
        assert!(stats.iterations > 1, "expected multiple interleavings");
    }

    /// Concurrent `observe` calls: the bucket/count `fetch_add`s and the
    /// CAS loop over `sum_bits` must not lose updates under any
    /// interleaving.
    #[test]
    fn model_histogram_observe_no_lost_updates() {
        let stats = mh_model::Builder::new().preemption_bound(2).check(|| {
            let h = Arc::new(Histogram::new(&[2.0]));
            let (ha, hb) = (Arc::clone(&h), Arc::clone(&h));
            let ta = mh_model::sync::thread::spawn(move || ha.observe(1.0));
            let tb = mh_model::sync::thread::spawn(move || hb.observe(3.0));
            ta.join().expect("observer a");
            tb.join().expect("observer b");
            assert_eq!(h.count(), 2);
            assert_eq!(h.bucket_counts(), vec![1, 1]);
            assert!(
                (h.sum() - 4.0).abs() < 1e-9,
                "sum lost an update: {}",
                h.sum()
            );
        });
        assert!(stats.complete, "exploration should finish within budget");
        assert!(stats.iterations > 1, "expected multiple interleavings");
    }
}
