//! RAII span tracing with parent/child nesting.
//!
//! A [`Span`] measures one region of work: wall time, bytes in/out, and
//! arbitrary k/v fields. Spans nest through a per-thread "current span"
//! cell; work handed to mh-par pool workers re-parents itself with
//! [`with_parent`] so traces stay connected across threads.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! call site when disabled. When enabled, finished spans are delivered to
//! one or both sinks: an in-memory capture buffer (used by tests and by
//! `modelhub prof`) and a JSONL file (enabled by `--trace <file>` or
//! `MH_TRACE`).

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Id of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Small sequential per-thread id, stable for the thread's lifetime.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn capture_buf() -> &'static Mutex<Vec<SpanRecord>> {
    static BUF: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn jsonl_sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is span tracing currently enabled? Instrumented code uses this to skip
/// expensive measurement (e.g. timing an inner loop) when nobody listens.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable tracing with the in-memory capture sink. Records accumulate
/// until [`drain_capture`] is called.
pub fn enable_capture() {
    epoch();
    CAPTURE.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove and return every captured span record so far.
pub fn drain_capture() -> Vec<SpanRecord> {
    std::mem::take(&mut *lock(capture_buf()))
}

/// Enable tracing with a JSONL file sink: one JSON object per finished
/// span, in completion order.
pub fn enable_jsonl(path: &Path) -> std::io::Result<()> {
    epoch();
    let file = File::create(path)?;
    *lock(jsonl_sink()) = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flush the JSONL sink (if any) to disk.
pub fn flush() {
    if let Some(w) = lock(jsonl_sink()).as_mut() {
        let _ = w.flush();
    }
}

/// Disable tracing and detach both sinks (flushing the JSONL sink).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    CAPTURE.store(false, Ordering::Relaxed);
    if let Some(mut w) = lock(jsonl_sink()).take() {
        let _ = w.flush();
    }
    lock(capture_buf()).clear();
}

/// Id of the innermost open span on the calling thread, if any. Capture
/// this before handing work to another thread, then re-establish it there
/// with [`with_parent`].
pub fn current_span() -> Option<u64> {
    let id = CURRENT.with(Cell::get);
    (id != 0).then_some(id)
}

/// Run `f` with the per-thread current span set to `parent`, restoring the
/// previous value afterwards (even on panic, via an RAII guard). This is
/// how pool workers attach their spans under the span that submitted the
/// work.
pub fn with_parent<T>(parent: Option<u64>, f: impl FnOnce() -> T) -> T {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| {
        let prev = c.get();
        c.set(parent.unwrap_or(0));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// One finished span, as delivered to the sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    pub name: &'static str,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    pub dur_us: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub fields: Vec<(&'static str, String)>,
    /// Small sequential id of the recording thread.
    pub thread: u64,
}

struct SpanInner {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    bytes_in: u64,
    bytes_out: u64,
    fields: Vec<(&'static str, String)>,
    /// CURRENT value to restore when this span closes.
    prev: u64,
}

/// An open span; closes (and reports) when dropped. Obtained from
/// [`span`]. When tracing is disabled this is an inert shell.
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

/// Open a span named `name`, parented under the thread's current span.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| {
        let prev = c.get();
        c.set(id);
        prev
    });
    let start = Instant::now();
    Span {
        inner: Some(Box::new(SpanInner {
            id,
            parent: prev,
            name,
            start,
            start_us: start.duration_since(epoch()).as_micros() as u64,
            bytes_in: 0,
            bytes_out: 0,
            fields: Vec::new(),
            prev,
        })),
    }
}

impl Span {
    /// Is this a live (recording) span?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    pub fn add_bytes_in(&mut self, n: u64) {
        if let Some(s) = self.inner.as_mut() {
            s.bytes_in += n;
        }
    }

    pub fn add_bytes_out(&mut self, n: u64) {
        if let Some(s) = self.inner.as_mut() {
            s.bytes_out += n;
        }
    }

    /// Attach a k/v field. The value is only formatted when recording.
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(s) = self.inner.as_mut() {
            s.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        CURRENT.with(|c| c.set(s.prev));
        let record = SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            start_us: s.start_us,
            dur_us: s.start.elapsed().as_micros() as u64,
            bytes_in: s.bytes_in,
            bytes_out: s.bytes_out,
            fields: s.fields,
            thread: THREAD_ID.with(|t| *t),
        };
        emit(record);
    }
}

fn emit(record: SpanRecord) {
    if let Some(w) = lock(jsonl_sink()).as_mut() {
        let _ = writeln!(w, "{}", record.to_json());
    }
    if CAPTURE.load(Ordering::Relaxed) {
        lock(capture_buf()).push(record);
    }
}

impl SpanRecord {
    /// Render as a single-line JSON object (the JSONL sink format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        out.push_str(&format!(
            "\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"bytes_in\":{},\"bytes_out\":{}",
            self.id,
            self.parent,
            escape_json(self.name),
            self.thread,
            self.start_us,
            self.dur_us,
            self.bytes_in,
            self.bytes_out,
        ));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // Tracing defaults to off; guard only against other tests in this
        // file having enabled it.
        let _g = crate::test_trace_lock();
        disable();
        let mut s = span("test.inert");
        assert!(!s.is_recording());
        s.field("k", 1);
        s.add_bytes_in(10);
        drop(s);
        assert!(drain_capture().is_empty());
    }

    #[test]
    fn nesting_and_fields_are_captured() {
        let _g = crate::test_trace_lock();
        enable_capture();
        {
            let mut outer = span("test.outer");
            outer.field("model", "lenet");
            {
                let mut inner = span("test.inner");
                inner.add_bytes_in(3);
                inner.add_bytes_out(7);
            }
        }
        let records = drain_capture();
        disable();
        let recs: Vec<_> = records
            .iter()
            .filter(|r| r.name.starts_with("test."))
            .collect();
        assert_eq!(recs.len(), 2);
        // Inner closes first.
        assert_eq!(recs[0].name, "test.inner");
        assert_eq!(recs[1].name, "test.outer");
        assert_eq!(recs[0].parent, recs[1].id);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(recs[0].bytes_in, 3);
        assert_eq!(recs[0].bytes_out, 7);
        assert_eq!(recs[1].fields, vec![("model", "lenet".to_string())]);
    }

    #[test]
    fn with_parent_restores_previous_current() {
        let _g = crate::test_trace_lock();
        enable_capture();
        let outer = span("test.wp_outer");
        let outer_id = current_span().expect("outer open");
        let nested = with_parent(None, || {
            assert_eq!(current_span(), None);
            let s = span("test.wp_root");
            let id = current_span();
            drop(s);
            id
        });
        assert!(nested.is_some());
        assert_eq!(current_span(), Some(outer_id));
        drop(outer);
        let records = drain_capture();
        disable();
        let root = records
            .iter()
            .find(|r| r.name == "test.wp_root")
            .expect("root span recorded");
        assert_eq!(root.parent, 0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        let r = SpanRecord {
            id: 1,
            parent: 0,
            name: "x",
            start_us: 2,
            dur_us: 3,
            bytes_in: 4,
            bytes_out: 5,
            fields: vec![("k", "v\"w".to_string())],
            thread: 1,
        };
        assert_eq!(
            r.to_json(),
            "{\"id\":1,\"parent\":0,\"name\":\"x\",\"thread\":1,\"start_us\":2,\"dur_us\":3,\"bytes_in\":4,\"bytes_out\":5,\"fields\":{\"k\":\"v\\\"w\"}}"
        );
    }
}
