//! RAII span tracing with parent/child nesting.
//!
//! A [`Span`] measures one region of work: wall time, bytes in/out, and
//! arbitrary k/v fields. Spans nest through a per-thread "current span"
//! cell; work handed to mh-par pool workers re-parents itself with
//! [`with_parent`] so traces stay connected across threads.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! call site when disabled. When enabled, finished spans are delivered to
//! one or both sinks: an in-memory capture buffer (used by tests and by
//! `modelhub prof`) and a JSONL file (enabled by `--trace <file>` or
//! `MH_TRACE`).

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Id of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// 128-bit trace id stamped on spans opened by this thread (0 = none).
    static TRACE: Cell<u128> = const { Cell::new(0) };
    /// Small sequential per-thread id, stable for the thread's lifetime.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Small sequential id of the calling thread (used by the flight recorder
/// for shard selection).
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pin the trace epoch now (flight-recorder arming does this so span
/// start offsets are measured from process start, not first use).
pub(crate) fn touch_epoch() {
    epoch();
}

fn capture_buf() -> &'static Mutex<Vec<SpanRecord>> {
    static BUF: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn jsonl_sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is span tracing currently enabled? Instrumented code uses this to skip
/// expensive measurement (e.g. timing an inner loop) when nobody listens.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable tracing with the in-memory capture sink. Records accumulate
/// until [`drain_capture`] is called.
pub fn enable_capture() {
    epoch();
    CAPTURE.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove and return every captured span record so far.
pub fn drain_capture() -> Vec<SpanRecord> {
    std::mem::take(&mut *lock(capture_buf()))
}

/// Enable tracing with a JSONL file sink: one JSON object per finished
/// span, in completion order.
pub fn enable_jsonl(path: &Path) -> std::io::Result<()> {
    epoch();
    let file = File::create(path)?;
    *lock(jsonl_sink()) = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flush the JSONL sink (if any) to disk.
pub fn flush() {
    if let Some(w) = lock(jsonl_sink()).as_mut() {
        let _ = w.flush();
    }
}

/// Disable tracing and detach both sinks (flushing the JSONL sink).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    CAPTURE.store(false, Ordering::Relaxed);
    if let Some(mut w) = lock(jsonl_sink()).take() {
        let _ = w.flush();
    }
    lock(capture_buf()).clear();
}

/// Id of the innermost open span on the calling thread, if any. Capture
/// this before handing work to another thread, then re-establish it there
/// with [`with_parent`].
pub fn current_span() -> Option<u64> {
    let id = CURRENT.with(Cell::get);
    (id != 0).then_some(id)
}

/// Trace context as carried across threads (mh-par pool workers) and
/// across processes (the `mh-trace` HTTP header): a 128-bit trace id plus
/// the span id new spans should parent under. Zero means "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    pub trace: u128,
    pub parent: u64,
}

impl SpanContext {
    pub const NONE: SpanContext = SpanContext {
        trace: 0,
        parent: 0,
    };

    /// Render as the `mh-trace` header value: `<trace-hex32> <parent-id>`.
    pub fn to_header(self) -> String {
        format!("{:032x} {}", self.trace, self.parent)
    }

    /// Parse an `mh-trace` header value. Returns `None` on any deviation
    /// from the grammar (malformed input degrades to "no context").
    pub fn from_header(value: &str) -> Option<SpanContext> {
        let (trace_hex, parent_dec) = value.trim().split_once(' ')?;
        if trace_hex.len() != 32 {
            return None;
        }
        let trace = u128::from_str_radix(trace_hex, 16).ok()?;
        let parent = parent_dec.trim().parse::<u64>().ok()?;
        if trace == 0 {
            return None;
        }
        Some(SpanContext { trace, parent })
    }
}

/// The calling thread's trace id and innermost open span id. Capture this
/// before handing work to another thread or process, then re-establish it
/// there with [`with_context`] (or serialize it with
/// [`SpanContext::to_header`]).
pub fn current_context() -> SpanContext {
    SpanContext {
        trace: TRACE.with(Cell::get),
        parent: CURRENT.with(Cell::get),
    }
}

/// Run `f` with the per-thread trace id and current span both taken from
/// `ctx`, restoring the previous values afterwards (even on panic). The
/// cross-thread / cross-process analogue of [`with_parent`].
pub fn with_context<T>(ctx: SpanContext, f: impl FnOnce() -> T) -> T {
    struct Restore {
        trace: u128,
        parent: u64,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            TRACE.with(|c| c.set(self.trace));
            CURRENT.with(|c| c.set(self.parent));
        }
    }
    let prev = Restore {
        trace: TRACE.with(|c| {
            let prev = c.get();
            c.set(ctx.trace);
            prev
        }),
        parent: CURRENT.with(|c| {
            let prev = c.get();
            c.set(ctx.parent);
            prev
        }),
    };
    let _restore = prev;
    f()
}

/// splitmix64: a fixed bijective mixer with good avalanche behaviour.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh non-zero 128-bit trace id. Derived from the process id
/// and the deterministic span-id counter (never the wall clock), so ids
/// are unique across the processes of one run and stable under replay.
pub fn mint_trace_id() -> u128 {
    let seq = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let seed = ((std::process::id() as u64) << 32) ^ seq;
    let hi = mix64(seed);
    let lo = mix64(hi ^ seq.rotate_left(17));
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

/// Ensure the calling thread has a trace id, minting one if needed, and
/// return it. CLI entry points call this once so every root span of the
/// invocation shares one trace id.
pub fn begin_trace() -> u128 {
    TRACE.with(|c| {
        if c.get() == 0 {
            c.set(mint_trace_id());
        }
        c.get()
    })
}

/// Run `f` with the per-thread current span set to `parent`, restoring the
/// previous value afterwards (even on panic, via an RAII guard). This is
/// how pool workers attach their spans under the span that submitted the
/// work.
pub fn with_parent<T>(parent: Option<u64>, f: impl FnOnce() -> T) -> T {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| {
        let prev = c.get();
        c.set(parent.unwrap_or(0));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// One finished span, as delivered to the sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// 128-bit trace id shared across processes, 0 when untraced.
    pub trace: u128,
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    pub name: &'static str,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    pub dur_us: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub fields: Vec<(&'static str, String)>,
    /// Small sequential id of the recording thread.
    pub thread: u64,
}

struct SpanInner {
    trace: u128,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    bytes_in: u64,
    bytes_out: u64,
    fields: Vec<(&'static str, String)>,
    /// CURRENT value to restore when this span closes.
    prev: u64,
}

/// An open span; closes (and reports) when dropped. Obtained from
/// [`span`]. When tracing is disabled this is an inert shell.
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

/// Open a span named `name`, parented under the thread's current span.
/// Records when span tracing is enabled **or** the always-on flight
/// recorder is armed; fully off, the cost is two relaxed atomic loads.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() && !crate::flightrec::armed() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| {
        let prev = c.get();
        c.set(id);
        prev
    });
    let start = Instant::now();
    Span {
        inner: Some(Box::new(SpanInner {
            trace: TRACE.with(Cell::get),
            id,
            parent: prev,
            name,
            start,
            start_us: start.duration_since(epoch()).as_micros() as u64,
            bytes_in: 0,
            bytes_out: 0,
            fields: Vec::new(),
            prev,
        })),
    }
}

impl Span {
    /// Is this a live (recording) span?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's id while recording (e.g. to cite as a remote parent).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    pub fn add_bytes_in(&mut self, n: u64) {
        if let Some(s) = self.inner.as_mut() {
            s.bytes_in += n;
        }
    }

    pub fn add_bytes_out(&mut self, n: u64) {
        if let Some(s) = self.inner.as_mut() {
            s.bytes_out += n;
        }
    }

    /// Attach a k/v field. The value is only formatted when recording.
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(s) = self.inner.as_mut() {
            s.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        CURRENT.with(|c| c.set(s.prev));
        let record = SpanRecord {
            trace: s.trace,
            id: s.id,
            parent: s.parent,
            name: s.name,
            start_us: s.start_us,
            dur_us: s.start.elapsed().as_micros() as u64,
            bytes_in: s.bytes_in,
            bytes_out: s.bytes_out,
            fields: s.fields,
            thread: THREAD_ID.with(|t| *t),
        };
        emit(record);
    }
}

fn emit(record: SpanRecord) {
    crate::flightrec::record_span(&record);
    if !enabled() {
        return;
    }
    if let Some(w) = lock(jsonl_sink()).as_mut() {
        let _ = writeln!(w, "{}", record.to_json());
    }
    if CAPTURE.load(Ordering::Relaxed) {
        lock(capture_buf()).push(record);
    }
}

/// Install (once) a panic hook that flushes the JSONL sink and dumps the
/// flight recorder to stderr, so traces of crashing runs are neither
/// truncated mid-line nor lost. Chains to the previously installed hook.
pub fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            flush();
            let dump = crate::flightrec::dump();
            if !dump.is_empty() {
                eprintln!("--- flight recorder dump ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder ---");
            }
        }));
    });
}

impl SpanRecord {
    /// Render as a single-line JSON object (the JSONL sink format). The
    /// `trace` field is present only on traced spans, keeping untraced
    /// output byte-identical with earlier releases.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        if self.trace != 0 {
            out.push_str(&format!("\"trace\":\"{:032x}\",", self.trace));
        }
        out.push_str(&format!(
            "\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"bytes_in\":{},\"bytes_out\":{}",
            self.id,
            self.parent,
            escape_json(self.name),
            self.thread,
            self.start_us,
            self.dur_us,
            self.bytes_in,
            self.bytes_out,
        ));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // Tracing defaults to off; guard only against other tests in this
        // file having enabled it.
        let _g = crate::test_trace_lock();
        disable();
        let mut s = span("test.inert");
        assert!(!s.is_recording());
        s.field("k", 1);
        s.add_bytes_in(10);
        drop(s);
        assert!(drain_capture().is_empty());
    }

    #[test]
    fn nesting_and_fields_are_captured() {
        let _g = crate::test_trace_lock();
        enable_capture();
        {
            let mut outer = span("test.outer");
            outer.field("model", "lenet");
            {
                let mut inner = span("test.inner");
                inner.add_bytes_in(3);
                inner.add_bytes_out(7);
            }
        }
        let records = drain_capture();
        disable();
        let recs: Vec<_> = records
            .iter()
            .filter(|r| r.name.starts_with("test."))
            .collect();
        assert_eq!(recs.len(), 2);
        // Inner closes first.
        assert_eq!(recs[0].name, "test.inner");
        assert_eq!(recs[1].name, "test.outer");
        assert_eq!(recs[0].parent, recs[1].id);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(recs[0].bytes_in, 3);
        assert_eq!(recs[0].bytes_out, 7);
        assert_eq!(recs[1].fields, vec![("model", "lenet".to_string())]);
    }

    #[test]
    fn with_parent_restores_previous_current() {
        let _g = crate::test_trace_lock();
        enable_capture();
        let outer = span("test.wp_outer");
        let outer_id = current_span().expect("outer open");
        let nested = with_parent(None, || {
            assert_eq!(current_span(), None);
            let s = span("test.wp_root");
            let id = current_span();
            drop(s);
            id
        });
        assert!(nested.is_some());
        assert_eq!(current_span(), Some(outer_id));
        drop(outer);
        let records = drain_capture();
        disable();
        let root = records
            .iter()
            .find(|r| r.name == "test.wp_root")
            .expect("root span recorded");
        assert_eq!(root.parent, 0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        let mut r = SpanRecord {
            trace: 0,
            id: 1,
            parent: 0,
            name: "x",
            start_us: 2,
            dur_us: 3,
            bytes_in: 4,
            bytes_out: 5,
            fields: vec![("k", "v\"w".to_string())],
            thread: 1,
        };
        assert_eq!(
            r.to_json(),
            "{\"id\":1,\"parent\":0,\"name\":\"x\",\"thread\":1,\"start_us\":2,\"dur_us\":3,\"bytes_in\":4,\"bytes_out\":5,\"fields\":{\"k\":\"v\\\"w\"}}"
        );
        r.trace = 0xabc;
        assert_eq!(
            r.to_json(),
            "{\"trace\":\"00000000000000000000000000000abc\",\"id\":1,\"parent\":0,\"name\":\"x\",\"thread\":1,\"start_us\":2,\"dur_us\":3,\"bytes_in\":4,\"bytes_out\":5,\"fields\":{\"k\":\"v\\\"w\"}}"
        );
    }

    #[test]
    fn trace_context_header_roundtrip() {
        let ctx = SpanContext {
            trace: 0xdead_beef_0123_4567_89ab_cdef_0011_2233,
            parent: 42,
        };
        let header = ctx.to_header();
        assert_eq!(header, "deadbeef0123456789abcdef00112233 42");
        assert_eq!(SpanContext::from_header(&header), Some(ctx));
        // Malformed values degrade to None, never panic.
        assert_eq!(SpanContext::from_header(""), None);
        assert_eq!(SpanContext::from_header("xyz 1"), None);
        assert_eq!(SpanContext::from_header("deadbeef 1"), None);
        assert_eq!(
            SpanContext::from_header("deadbeef0123456789abcdef00112233"),
            None
        );
        assert_eq!(
            SpanContext::from_header("deadbeef0123456789abcdef00112233 -1"),
            None
        );
        assert_eq!(
            SpanContext::from_header("00000000000000000000000000000000 1"),
            None
        );
    }

    #[test]
    fn mint_trace_id_is_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn with_context_stamps_trace_and_restores() {
        let _g = crate::test_trace_lock();
        enable_capture();
        let ctx = SpanContext {
            trace: 0x77,
            parent: 9000,
        };
        with_context(ctx, || {
            assert_eq!(current_context(), ctx);
            let _s = span("test.ctx_child");
        });
        assert_eq!(current_context(), SpanContext::NONE);
        let records = drain_capture();
        disable();
        let child = records
            .iter()
            .find(|r| r.name == "test.ctx_child")
            .expect("child recorded");
        assert_eq!(child.trace, 0x77);
        assert_eq!(child.parent, 9000);
    }
}
