//! Minimal leveled logging to stderr.
//!
//! The CLIs route progress/diagnostic output through this instead of bare
//! `eprintln!`, so `-q` silences chatter and `--verbose` adds detail while
//! **stdout stays stable** for scripts and tests. Levels: `Error` < `Warn`
//! < `Info` < `Debug`; the default threshold is `Info`.
//!
//! Use via the crate-root macros: `mh_obs::info!("...")` etc.

use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the logging threshold: messages above it are dropped.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current threshold.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Would a message at `level` currently be emitted?
#[inline]
pub fn level_enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Map the conventional CLI flags onto a threshold: `-q` → `Error`,
/// `--verbose` → `Debug`, neither → `Info` (quiet wins if both are set).
pub fn apply_verbosity(verbose: bool, quiet: bool) {
    set_level(if quiet {
        Level::Error
    } else if verbose {
        Level::Debug
    } else {
        Level::Info
    });
}

/// Emit a message at `level` (to stderr, never stdout). Prefer the
/// crate-root macros, which skip argument formatting when disabled.
/// Warn/error messages are additionally captured by the flight recorder
/// (when armed) even if the stderr threshold filters them out.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if level <= Level::Warn && crate::flightrec::armed() {
        crate::flightrec::record_log(level.tag(), args.to_string());
    }
    if level_enabled(level) {
        eprintln!("{}: {}", level.tag(), args);
    }
}

/// Log at error level: `mh_obs::error!("...: {e}")`.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        // Always routed through `log` so the flight recorder sees it.
        $crate::log::log($crate::log::Level::Error, format_args!($($arg)*));
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        // Always routed through `log` so the flight recorder sees it.
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*));
    };
}

/// Log at info level (the default threshold).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Log at debug level (shown under `--verbose`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_mapping() {
        apply_verbosity(false, false);
        assert_eq!(max_level(), Level::Info);
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Debug));

        apply_verbosity(true, false);
        assert_eq!(max_level(), Level::Debug);
        assert!(level_enabled(Level::Debug));

        apply_verbosity(false, true);
        assert_eq!(max_level(), Level::Error);
        assert!(!level_enabled(Level::Warn));

        // Quiet wins over verbose.
        apply_verbosity(true, true);
        assert_eq!(max_level(), Level::Error);

        apply_verbosity(false, false);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
