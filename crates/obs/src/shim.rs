//! Internal sync shim for the metrics registry.
//!
//! mh-obs sits *below* `mh-par` in the dependency graph, so it cannot use
//! the workspace sync facade (`mh_par::sync`) — instead it is part of the
//! facade lint's allowlist and carries this tiny shim: by default the
//! registry runs on raw std primitives (keeping the crate
//! dependency-free); under the `model` feature the registry mutex and the
//! metric atomics resolve to mh-model's instrumented versions, so the
//! get-or-register and histogram-increment paths can be explored by the
//! deterministic model checker (`cargo test -p mh-obs --features model`).

#[cfg(feature = "model")]
pub(crate) use mh_model::sync::atomic::{AtomicI64, AtomicU64};
#[cfg(feature = "model")]
pub(crate) use mh_model::sync::Mutex;

#[cfg(not(feature = "model"))]
mod std_shim {
    use std::ops::{Deref, DerefMut};

    pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64};

    /// `std::sync::Mutex` with poisoning swallowed (lock state is
    /// re-validated by every caller anyway) and a guard-returning `lock`
    /// matching the model backend's API.
    #[derive(Debug, Default)]
    pub(crate) struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T: ?Sized> Mutex<T> {
        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    pub(crate) struct MutexGuard<'a, T: ?Sized> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(not(feature = "model"))]
pub(crate) use std_shim::*;
