//! # mh-obs — unified observability for the ModelHub workspace
//!
//! A dependency-free (std-only) layer at the bottom of the workspace
//! dependency graph, with three facilities:
//!
//! * **Metrics** ([`metrics`]): counters, gauges, and fixed-bucket
//!   histograms behind atomics, registered by name in a [`Registry`]
//!   (instantiable, plus a process-global one), snapshot-able and
//!   renderable as Prometheus text format — served by hubd at
//!   `GET /metrics`.
//! * **Spans** ([`span`]): RAII regions recording wall time, bytes
//!   in/out, and k/v fields, nesting through a per-thread current-span
//!   cell and re-parented across mh-par pool threads with
//!   [`with_parent`]. Off by default (one relaxed atomic load per site);
//!   sinks are an in-memory capture buffer and a JSONL file
//!   (`--trace <file>` / `MH_TRACE`).
//! * **Logging** ([`log`]): leveled stderr logging for the CLIs
//!   (`--verbose` / `-q`), keeping stdout stable for scripts.
//! * **Flight recorder** ([`flightrec`]): an always-on sharded ring
//!   keeping the most recent span records and warn/error log events at
//!   bounded overhead, dumped on panic and served by hubd at
//!   `GET /debug/flightrec`.
//!
//! Spans carry a 128-bit trace id ([`SpanContext`]) propagated across
//! pool threads with [`with_context`] and across the hub wire in the
//! `mh-trace` request header; [`traceview`] stitches client and server
//! JSONL files into one cross-process tree (`modelhub trace view`).
//!
//! [`prof`] turns captured spans into the deterministic self/total-time
//! tree printed by `modelhub prof`.
//!
//! ## Hot-path usage
//!
//! The `counter!` / `gauge!` / `histogram!` macros cache the registry
//! lookup in a per-call-site `OnceLock`, so steady-state recording is a
//! single atomic op with no lock:
//!
//! ```
//! mh_obs::counter!("compress_calls_total").inc();
//! mh_obs::histogram!("task_run_us", mh_obs::DURATION_US_BUCKETS).observe(12.5);
//! let mut sp = mh_obs::span("pas.delta_encode");
//! sp.add_bytes_in(4096);
//! ```

pub mod flightrec;
pub mod log;
pub mod metrics;
pub mod prof;
mod shim;
pub mod span;
pub mod traceview;

pub use metrics::{
    escape_label_value, Counter, Gauge, Histogram, Metric, Registry, Sample, SampleValue,
};
pub use prof::{build_profile, format_us, render_profile, ProfileNode};
pub use span::{
    begin_trace, current_context, current_span, disable, drain_capture, enable_capture,
    enable_jsonl, enabled, flush, install_panic_hook, mint_trace_id, span, with_context,
    with_parent, Span, SpanContext, SpanRecord,
};

/// Standard duration buckets (microseconds): 100us … 10s.
pub const DURATION_US_BUCKETS: &[f64] = &[
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
];

/// Standard size buckets (bytes): 1KiB … 64MiB.
pub const SIZE_BYTES_BUCKETS: &[f64] = &[1024.0, 16_384.0, 262_144.0, 4_194_304.0, 67_108_864.0];

/// Resolve (registering on first use) a counter in the global registry,
/// caching the lookup per call site. Labels, if given, must be static —
/// the cached resolution is per call site, not per label value.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::Registry::global().counter($name))
    }};
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| {
            $crate::Registry::global().counter_labeled($name, &[$(($k, $v)),+])
        })
    }};
}

/// Resolve (registering on first use) a gauge in the global registry,
/// caching the lookup per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::Registry::global().gauge($name))
    }};
}

/// Resolve (registering on first use) a histogram in the global registry,
/// caching the lookup per call site. The first registration anywhere in
/// the process fixes the bucket bounds.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::Registry::global().histogram($name, $bounds))
    }};
}

/// Serializes tests that mutate the process-global trace state (enable /
/// drain / disable). Tests in this crate and downstream crates hold this
/// guard around any capture-sink usage so parallel tests don't steal each
/// other's records.
#[doc(hidden)]
pub fn test_trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_and_record() {
        let c = counter!("obs_selftest_total");
        c.add(2);
        assert_eq!(counter!("obs_selftest_total").get(), 2);
        gauge!("obs_selftest_depth").set(3);
        assert_eq!(gauge!("obs_selftest_depth").get(), 3);
        let h = histogram!("obs_selftest_us", crate::DURATION_US_BUCKETS);
        h.observe(50.0);
        assert_eq!(h.count(), 1);
        // Labeled variant.
        counter!("obs_selftest_labeled_total", "kind" => "a").inc();
        let text = crate::Registry::global().render_prometheus();
        assert!(text.contains("obs_selftest_labeled_total{kind=\"a\"} 1"));
    }
}
