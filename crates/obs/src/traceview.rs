//! Cross-process trace stitching (`modelhub trace view`).
//!
//! Each process writes its own JSONL span file (`--trace` / `MH_TRACE`);
//! the 128-bit trace id minted by the client CLI crosses the hub wire in
//! the `mh-trace` header, so one lifecycle operation leaves correlated
//! records in several files. This module parses those files back, groups
//! spans by trace id, and stitches them into a single tree per trace.
//!
//! Span ids are only unique **within** a process, so nodes are keyed by
//! `(source file, id)`. A span whose parent id is not found in its own
//! file is a *remote* child: its parent is resolved against the other
//! files (the client span cited in the `mh-trace` header). Clocks are
//! not comparable across processes, so the client/server network gap is
//! attributed by duration: `parent.dur_us - child.dur_us` is the
//! client-observed time the request spent outside the server span
//! (network transfer + reactor queueing), rendered as `network+queue=`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

use crate::span::SpanRecord;

/// One span parsed back from a JSONL trace file or flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedSpan {
    pub trace: u128,
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub thread: u64,
    pub start_us: u64,
    pub dur_us: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Index of the source file this span came from (caller-assigned).
    pub source: usize,
}

/// Minimal scanner over the single-line JSON objects our sinks emit.
struct Scanner<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.i += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let start = self.i - 1;
                    let width = utf8_width(b);
                    let chunk = self.s.get(start..start + width)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.i = start + width;
                }
            }
        }
    }

    fn parse_uint(&mut self) -> Option<u128> {
        self.skip_ws();
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    /// Skip any JSON value (string, number, object, array, literal).
    fn skip_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            b'"' => {
                self.parse_string()?;
            }
            b'{' | b'[' => {
                let (open, close) = if self.peek() == Some(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.i += 1;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.peek()? {
                        b'"' => {
                            self.parse_string()?;
                        }
                        b if b == open => {
                            depth += 1;
                            self.i += 1;
                        }
                        b if b == close => {
                            depth -= 1;
                            self.i += 1;
                        }
                        _ => self.i += 1,
                    }
                }
            }
            _ => {
                while !matches!(self.peek(), None | Some(b',' | b'}' | b']')) {
                    self.i += 1;
                }
            }
        }
        Some(())
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse one JSONL line into a span. Returns `None` for anything that is
/// not a span object (flight-recorder log events, malformed lines).
pub fn parse_line(line: &str) -> Option<ParsedSpan> {
    let mut sc = Scanner::new(line.trim());
    if !sc.eat(b'{') {
        return None;
    }
    let mut span = ParsedSpan::default();
    let mut saw_name = false;
    let mut saw_id = false;
    loop {
        if sc.eat(b'}') {
            break;
        }
        let key = sc.parse_string()?;
        if !sc.eat(b':') {
            return None;
        }
        match key.as_str() {
            "trace" => span.trace = u128::from_str_radix(&sc.parse_string()?, 16).ok()?,
            "id" => {
                span.id = sc.parse_uint()? as u64;
                saw_id = true;
            }
            "parent" => span.parent = sc.parse_uint()? as u64,
            "name" => {
                span.name = sc.parse_string()?;
                saw_name = true;
            }
            "thread" => span.thread = sc.parse_uint()? as u64,
            "start_us" => span.start_us = sc.parse_uint()? as u64,
            "dur_us" => span.dur_us = sc.parse_uint()? as u64,
            "bytes_in" => span.bytes_in = sc.parse_uint()? as u64,
            "bytes_out" => span.bytes_out = sc.parse_uint()? as u64,
            _ => sc.skip_value()?,
        }
        if !sc.eat(b',') && sc.peek() != Some(b'}') {
            return None;
        }
    }
    (saw_name && saw_id).then_some(span)
}

/// Parse a whole JSONL document, tagging each span with `source`.
/// Non-span lines (log events, blanks) are skipped.
pub fn parse_jsonl(text: &str, source: usize) -> Vec<ParsedSpan> {
    text.lines()
        .filter_map(parse_line)
        .map(|mut s| {
            s.source = source;
            s
        })
        .collect()
}

fn intern(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = NAMES
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match set.get(name) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// Convert parsed spans back into [`SpanRecord`]s so dump files can be fed
/// to [`crate::build_profile`] (`modelhub prof --from-dump`). Span names
/// are interned (leaked once per unique name — bounded, CLI-only).
///
/// Server spans stamp the *client's* rpc span id as their parent, and ids
/// collide across processes, so a dump can contain parent pointers that
/// resolve to unrelated local spans (even cyclically). As in
/// [`stitch`], a parent id is only trusted when that span temporally
/// encloses the child; otherwise the child becomes a root.
pub fn to_records(spans: &[ParsedSpan]) -> Vec<SpanRecord> {
    let encloses = |parent: u64, s: &ParsedSpan| {
        spans.iter().any(|p| {
            p.id == parent
                && !(p.id == s.id && p.start_us == s.start_us)
                && p.start_us <= s.start_us
                && p.start_us + p.dur_us >= s.start_us + s.dur_us
        })
    };
    spans
        .iter()
        .map(|p| SpanRecord {
            trace: p.trace,
            id: p.id,
            parent: if p.parent != 0 && encloses(p.parent, p) {
                p.parent
            } else {
                0
            },
            name: intern(&p.name),
            start_us: p.start_us,
            dur_us: p.dur_us,
            bytes_in: p.bytes_in,
            bytes_out: p.bytes_out,
            fields: Vec::new(),
            thread: p.thread,
        })
        .collect()
}

/// A node of a stitched cross-process trace tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    pub span: ParsedSpan,
    pub children: Vec<TraceNode>,
    /// Set on remote (cross-source) children: the parent-observed time not
    /// spent inside this span — network transfer plus server queueing.
    pub remote_gap_us: Option<u64>,
}

/// All spans of one trace id, stitched into root trees.
#[derive(Debug, Clone)]
pub struct TraceTree {
    pub trace: u128,
    pub roots: Vec<TraceNode>,
}

/// Group spans by trace id and stitch each group into trees. Spans with
/// no trace id are ignored (they cannot be correlated across files).
/// Trees are ordered by trace id; roots and children deterministically by
/// `(source, start_us, id)`.
pub fn stitch(spans: &[ParsedSpan]) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u128, Vec<&ParsedSpan>> = BTreeMap::new();
    for s in spans {
        if s.trace != 0 {
            by_trace.entry(s.trace).or_default().push(s);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, group)| TraceTree {
            trace,
            roots: stitch_group(&group),
        })
        .collect()
}

fn stitch_group(group: &[&ParsedSpan]) -> Vec<TraceNode> {
    // Spans in deterministic order; nodes are addressed by index.
    let mut order: Vec<usize> = (0..group.len()).collect();
    order.sort_by_key(|&i| (group[i].source, group[i].start_us, group[i].id));

    let mut by_key: HashMap<(usize, u64), usize> = HashMap::new();
    let mut by_id: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in &order {
        by_key.entry((group[i].source, group[i].id)).or_insert(i);
        by_id.entry(group[i].id).or_default().push(i);
    }

    // parent_of[i] = (parent index, is_remote) or None for roots.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); group.len()];
    let mut remote: Vec<bool> = vec![false; group.len()];
    let mut is_child: Vec<bool> = vec![false; group.len()];
    for &i in &order {
        let s = group[i];
        if s.parent == 0 {
            continue;
        }
        // Local parent first (a span in the same file, not itself). Span
        // ids collide across processes — both sides count from 1 — so a
        // same-file id match alone is not proof of parenthood. Within one
        // file the clock IS comparable, and a real parent's interval
        // encloses its child's, so demand enclosure before trusting the
        // local match; a fake match (the id happens to exist locally but
        // belongs to the other process's numbering) fails it and falls
        // through to remote resolution.
        let local = by_key
            .get(&(s.source, s.parent))
            .copied()
            .filter(|&p| p != i)
            .filter(|&p| {
                group[p].start_us <= s.start_us
                    && group[p].start_us + group[p].dur_us >= s.start_us + s.dur_us
            });
        // … then a remote parent in any other file.
        let found = local.or_else(|| {
            by_id
                .get(&s.parent)
                .and_then(|c| c.iter().copied().find(|&p| group[p].source != s.source))
        });
        if let Some(p) = found {
            children[p].push(i);
            remote[i] = group[p].source != s.source;
            is_child[i] = true;
        }
    }

    let mut visited = vec![false; group.len()];
    let mut roots = Vec::new();
    for &i in &order {
        if !is_child[i] && !visited[i] {
            roots.push(build_node(i, group, &children, &remote, &mut visited));
        }
    }
    // Anything left unvisited sits on a parent cycle (corrupt input);
    // surface it flat rather than dropping it.
    for &i in &order {
        if !visited[i] {
            roots.push(build_node(i, group, &children, &remote, &mut visited));
        }
    }
    roots
}

fn build_node(
    i: usize,
    group: &[&ParsedSpan],
    children: &[Vec<usize>],
    remote: &[bool],
    visited: &mut [bool],
) -> TraceNode {
    visited[i] = true;
    let kids = children[i]
        .iter()
        .filter(|&&c| !visited[c])
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|c| {
            let mut node = build_node(c, group, children, remote, visited);
            if remote[c] {
                node.remote_gap_us = Some(group[i].dur_us.saturating_sub(group[c].dur_us));
            }
            node
        })
        .collect();
    TraceNode {
        span: group[i].clone(),
        children: kids,
        remote_gap_us: None,
    }
}

/// Render a stitched tree. `sources` maps source indices to display names
/// (typically the input file names); indices out of range print as `#N`.
pub fn render_trace(tree: &TraceTree, sources: &[String]) -> String {
    let mut out = format!("trace {:032x}\n", tree.trace);
    for root in &tree.roots {
        render_node(root, 1, sources, &mut out);
    }
    out
}

fn render_node(node: &TraceNode, depth: usize, sources: &[String], out: &mut String) {
    let span = &node.span;
    out.push_str(&"  ".repeat(depth));
    out.push_str(&span.name);
    out.push_str(&format!("  {}", crate::format_us(span.dur_us)));
    if span.bytes_in > 0 {
        out.push_str(&format!("  in={}", span.bytes_in));
    }
    if span.bytes_out > 0 {
        out.push_str(&format!("  out={}", span.bytes_out));
    }
    let source = sources
        .get(span.source)
        .cloned()
        .unwrap_or_else(|| format!("#{}", span.source));
    out.push_str(&format!("  [{source}]"));
    if let Some(gap) = node.remote_gap_us {
        out.push_str(&format!("  network+queue={}", crate::format_us(gap)));
    }
    out.push('\n');
    for child in &node.children {
        render_node(child, depth + 1, sources, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(source: usize, trace: u128, id: u64, parent: u64, name: &str, dur_us: u64) -> ParsedSpan {
        ParsedSpan {
            trace,
            id,
            parent,
            name: name.to_string(),
            dur_us,
            source,
            ..ParsedSpan::default()
        }
    }

    #[test]
    fn parse_roundtrips_span_record_json() {
        let r = SpanRecord {
            trace: 0xfeed,
            id: 7,
            parent: 3,
            name: "hub.request",
            start_us: 10,
            dur_us: 20,
            bytes_in: 30,
            bytes_out: 40,
            fields: vec![("endpoint", "objects \"quoted\"".to_string())],
            thread: 2,
        };
        let p = parse_line(&r.to_json()).expect("parses");
        assert_eq!(p.trace, 0xfeed);
        assert_eq!(p.id, 7);
        assert_eq!(p.parent, 3);
        assert_eq!(p.name, "hub.request");
        assert_eq!(p.start_us, 10);
        assert_eq!(p.dur_us, 20);
        assert_eq!(p.bytes_in, 30);
        assert_eq!(p.bytes_out, 40);
        assert_eq!(p.thread, 2);
    }

    #[test]
    fn non_span_lines_are_skipped() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not json"), None);
        // Flight-recorder log events have no name/id.
        assert_eq!(parse_line("{\"level\":\"warn\",\"msg\":\"x\"}"), None);
        let text = "{\"level\":\"warn\",\"msg\":\"x\"}\n{\"id\":1,\"parent\":0,\"name\":\"a\",\"thread\":1,\"start_us\":0,\"dur_us\":1,\"bytes_in\":0,\"bytes_out\":0}\n";
        assert_eq!(parse_jsonl(text, 4).len(), 1);
        assert_eq!(parse_jsonl(text, 4)[0].source, 4);
    }

    /// A flight-recorder dump where server spans carry *client* span ids
    /// as parents: ids collide with local ones and even form a 2-cycle
    /// (3→4, 4→3). `to_records` must drop the bogus parents (no local
    /// span encloses them) and `build_profile` must terminate with every
    /// request as a root.
    #[test]
    fn to_records_cuts_colliding_parent_cycles() {
        let mk = |id: u64, parent: u64, start_us: u64| ParsedSpan {
            id,
            parent,
            name: "hub.request".to_string(),
            start_us,
            dur_us: 100,
            ..ParsedSpan::default()
        };
        let spans = vec![mk(3, 4, 0), mk(4, 3, 200), mk(5, 4, 400)];
        let records = to_records(&spans);
        assert!(records.iter().all(|r| r.parent == 0), "{records:?}");
        let profile = crate::build_profile(&records);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].name, "hub.request");
        assert_eq!(profile[0].count, 3);
        assert!(profile[0].children.is_empty());

        // A genuine local parent — one that temporally encloses its
        // child — survives the filter.
        let nested = vec![mk(1, 0, 0), {
            let mut c = mk(2, 1, 10);
            c.dur_us = 50;
            c.name = "hub.route".to_string();
            c
        }];
        let records = to_records(&nested);
        assert_eq!(records[1].parent, 1);
    }

    #[test]
    fn stitch_merges_remote_child_and_attributes_gap() {
        // Client (source 0): dlv.pull → hub.rpc; server (source 1):
        // hub.request (remote parent = client's hub.rpc, id collides with
        // a client id on purpose) → hub.route (local child).
        const T: u128 = 0xabc;
        let spans = vec![
            ps(0, T, 1, 0, "dlv.pull", 5_000),
            ps(0, T, 2, 1, "hub.rpc", 4_000),
            ps(1, T, 2, 2, "hub.request", 3_000),
            ps(1, T, 3, 2, "hub.route", 1_000),
        ];
        let trees = stitch(&spans);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.span.name, "dlv.pull");
        let rpc = &root.children[0];
        assert_eq!(rpc.span.name, "hub.rpc");
        let req = &rpc.children[0];
        assert_eq!(req.span.name, "hub.request");
        assert_eq!(req.span.source, 1);
        // Gap = client rpc time minus server request time.
        assert_eq!(req.remote_gap_us, Some(1_000));
        // The server's local child resolved locally despite the id reuse.
        assert_eq!(req.children[0].span.name, "hub.route");
        assert_eq!(req.children[0].remote_gap_us, None);

        let text = render_trace(tree, &["client.jsonl".into(), "server.jsonl".into()]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("trace "));
        assert!(lines[1].contains("dlv.pull") && lines[1].contains("[client.jsonl]"));
        assert!(lines[3].contains("hub.request") && lines[3].contains("[server.jsonl]"));
        assert!(lines[3].contains("network+queue=1.0ms"));
        // Indentation deepens along the path.
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(lines[2]) > indent(lines[1]));
        assert!(indent(lines[3]) > indent(lines[2]));
    }

    #[test]
    fn untraced_spans_are_ignored_and_traces_are_separated() {
        let spans = vec![
            ps(0, 0, 1, 0, "untraced", 10),
            ps(0, 5, 2, 0, "a", 10),
            ps(0, 6, 3, 0, "b", 10),
        ];
        let trees = stitch(&spans);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 5);
        assert_eq!(trees[1].trace, 6);
    }
}
