//! Aggregation of captured span records into a self/total-time profile
//! tree — the backend of `modelhub prof`.
//!
//! Spans are grouped by their *path* (the chain of span names from the
//! root), so a thousand `compress.compress` spans under
//! `pas.archive_build` collapse into one line with `count=1000`. Children
//! are sorted by name, making the tree structure and ordering
//! deterministic run-to-run (the measured times of course vary).

use std::collections::{BTreeMap, HashMap};

use crate::span::SpanRecord;

/// One aggregated node of the profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    /// Number of spans aggregated into this node.
    pub count: u64,
    /// Sum of wall time across those spans, microseconds.
    pub total_us: u64,
    /// `total_us` minus the total of direct children (saturating: parallel
    /// children can overlap and sum past the parent's wall time).
    pub self_us: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub children: Vec<ProfileNode>,
}

#[derive(Default)]
struct Agg {
    count: u64,
    total_us: u64,
    bytes_in: u64,
    bytes_out: u64,
    children: BTreeMap<&'static str, Agg>,
}

impl Agg {
    fn into_node(self, name: &str) -> ProfileNode {
        let child_total: u64 = self.children.values().map(|c| c.total_us).sum();
        ProfileNode {
            name: name.to_string(),
            count: self.count,
            total_us: self.total_us,
            self_us: self.total_us.saturating_sub(child_total),
            bytes_in: self.bytes_in,
            bytes_out: self.bytes_out,
            children: self
                .children
                .into_iter()
                .map(|(n, a)| a.into_node(n))
                .collect(),
        }
    }
}

/// Build the aggregated profile tree from a batch of span records.
/// Records whose parent is missing from the batch (still open when the
/// capture was drained, or drained earlier) are treated as roots. Parent
/// chains that loop — possible in offline dumps where server spans carry
/// *client* span ids that collide with local ones — are cut at the first
/// revisited id instead of walked forever.
pub fn build_profile(records: &[SpanRecord]) -> Vec<ProfileNode> {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut root = Agg::default();
    for r in records {
        // Path from root to this span, via the parent chain.
        let mut path = vec![r.name];
        let mut seen = vec![r.id];
        let mut cur = r.parent;
        while cur != 0 && !seen.contains(&cur) {
            match by_id.get(&cur) {
                Some(p) => {
                    path.push(p.name);
                    seen.push(cur);
                    cur = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        let mut node = &mut root;
        for name in path {
            node = node.children.entry(name).or_default();
        }
        node.count += 1;
        node.total_us += r.dur_us;
        node.bytes_in += r.bytes_in;
        node.bytes_out += r.bytes_out;
    }
    root.children
        .into_iter()
        .map(|(n, a)| a.into_node(n))
        .collect()
}

/// Format microseconds with an adaptive unit.
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

fn format_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Render the profile tree as an aligned text report. Structure and
/// ordering are deterministic; the time columns reflect the measured run.
pub fn render_profile(roots: &[ProfileNode]) -> String {
    let mut rows: Vec<(String, u64, u64, u64, String)> = Vec::new();
    fn walk(node: &ProfileNode, depth: usize, rows: &mut Vec<(String, u64, u64, u64, String)>) {
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        let mut extra = String::new();
        if node.bytes_in > 0 {
            extra.push_str(&format!(" in={}", format_bytes(node.bytes_in)));
        }
        if node.bytes_out > 0 {
            extra.push_str(&format!(" out={}", format_bytes(node.bytes_out)));
        }
        rows.push((label, node.count, node.total_us, node.self_us, extra));
        for child in &node.children {
            walk(child, depth + 1, rows);
        }
    }
    for root in roots {
        walk(root, 0, &mut rows);
    }
    if rows.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>7}  {:>10}  {:>10}\n",
        "span", "count", "total", "self"
    ));
    for (label, count, total, self_us, extra) in rows {
        out.push_str(&format!(
            "{label:<name_w$}  {count:>7}  {:>10}  {:>10}{extra}\n",
            format_us(total),
            format_us(self_us),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, dur_us: u64) -> SpanRecord {
        SpanRecord {
            trace: 0,
            id,
            parent,
            name,
            start_us: 0,
            dur_us,
            bytes_in: 0,
            bytes_out: 0,
            fields: Vec::new(),
            thread: 1,
        }
    }

    #[test]
    fn aggregates_by_path_with_self_time() {
        // root(100) -> a(30), a(20); a -> b(10)
        let records = vec![
            rec(1, 0, "root", 100),
            rec(2, 1, "a", 30),
            rec(3, 1, "a", 20),
            rec(4, 2, "b", 10),
        ];
        let tree = build_profile(&records);
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(
            (root.name.as_str(), root.count, root.total_us),
            ("root", 1, 100)
        );
        assert_eq!(root.self_us, 50); // 100 - (30+20)
        let a = &root.children[0];
        assert_eq!(
            (a.name.as_str(), a.count, a.total_us, a.self_us),
            ("a", 2, 50, 40)
        );
        let b = &a.children[0];
        assert_eq!(
            (b.name.as_str(), b.count, b.total_us, b.self_us),
            ("b", 1, 10, 10)
        );
    }

    #[test]
    fn children_sorted_by_name_and_orphans_are_roots() {
        let records = vec![
            rec(1, 0, "root", 10),
            rec(2, 1, "zeta", 1),
            rec(3, 1, "alpha", 1),
            // Parent 99 was never recorded: treated as a root.
            rec(4, 99, "orphan", 5),
        ];
        let tree = build_profile(&records);
        let names: Vec<&str> = tree.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["orphan", "root"]);
        let child_names: Vec<&str> = tree[1].children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(child_names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn self_time_saturates_with_overlapping_children() {
        // Parallel children sum past the parent's wall clock.
        let records = vec![rec(1, 0, "par", 10), rec(2, 1, "w", 8), rec(3, 1, "w", 8)];
        let tree = build_profile(&records);
        assert_eq!(tree[0].self_us, 0);
        assert_eq!(tree[0].children[0].total_us, 16);
    }

    #[test]
    fn render_is_aligned_and_stable() {
        let records = vec![rec(1, 0, "root", 2_500_000), rec(2, 1, "leaf", 1500)];
        let tree = build_profile(&records);
        let text = render_profile(&tree);
        assert_eq!(text, render_profile(&tree));
        assert!(text.contains("root"));
        assert!(text.contains("  leaf"));
        assert!(text.contains("2.50s"));
        assert!(text.contains("1.5ms"));
        assert!(text.starts_with("span"));
        assert_eq!(render_profile(&[]), "no spans recorded\n");
    }

    #[test]
    fn format_us_units() {
        assert_eq!(format_us(999), "999us");
        assert_eq!(format_us(1000), "1.0ms");
        assert_eq!(format_us(1_500_000), "1.50s");
    }
}
