//! # modelhub
//!
//! Umbrella crate for the ModelHub reproduction ("Towards Unified Data and
//! Lifecycle Management for Deep Learning", ICDE 2017). Re-exports every
//! subsystem so examples and integration tests can use one dependency.
//!
//! - [`dlv`] — the model versioning system (repositories, snapshots, lineage)
//! - [`dql`] — the SQL-inspired model exploration/enumeration language
//! - [`pas`] — the parameter archival store (segmentation, deltas, plans,
//!   progressive evaluation)
//! - [`dnn`] — the deep-network substrate (layers, training, interval eval)
//! - [`hub`] — the hosted hub service (`hubd` server + remote client)
//! - [`check`] — static integrity verification (`modelhub fsck`)
//! - [`audit`] — syntax-aware panic/alloc auditor (`modelhub audit`)
//! - [`par`] — the shared worker-pool scheduling layer (`MH_THREADS`, `--jobs`)
//! - [`obs`] — metrics, span tracing, and leveled logging (`--trace`, `prof`)
//! - [`bench`] — the experiment harness behind `repro` / `modelhub repro`
//! - [`tensor`], [`delta`], [`compress`], [`store`] — supporting substrates

pub mod cli;

pub use mh_audit as audit;
pub use mh_bench as bench;
pub use mh_check as check;
pub use mh_compress as compress;
pub use mh_delta as delta;
pub use mh_dlv as dlv;
pub use mh_dnn as dnn;
pub use mh_dql as dql;
pub use mh_hub as hub;
pub use mh_obs as obs;
pub use mh_par as par;
pub use mh_pas as pas;
pub use mh_store as store;
pub use mh_tensor as tensor;
pub use modelhub_core as core;

pub use modelhub_core::ModelHub;
