//! Shared global CLI flags for the `dlv` and `modelhub` binaries.
//!
//! - `--verbose` / `-v` and `--quiet` / `-q` drive the mh-obs log level
//!   (diagnostics go to stderr only; stdout stays reserved for command
//!   output, so scripted callers keep parsing it);
//! - `--trace <file>` — or the `MH_TRACE` environment variable — streams
//!   every completed span as one JSON object per line.
//!
//! Every invocation also arms the always-on flight recorder, installs a
//! panic hook that flushes the trace sink and dumps the recorder to
//! stderr, and mints a fresh 128-bit trace id so every span the process
//! opens — including spans on the far side of a hub connection — shares
//! one trace.

use std::path::PathBuf;

/// Strip the global flags out of `args` and apply them. Call before
/// subcommand dispatch so per-command parsers never see these flags.
pub fn apply_global_flags(args: &mut Vec<String>) -> Result<(), String> {
    mh_obs::install_panic_hook();
    mh_obs::flightrec::enable();
    mh_obs::begin_trace();
    let mut verbose = false;
    let mut quiet = false;
    let mut trace: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--verbose" | "-v" => {
                verbose = true;
                args.remove(i);
            }
            "--quiet" | "-q" => {
                quiet = true;
                args.remove(i);
            }
            "--trace" => {
                args.remove(i);
                if i >= args.len() {
                    return Err("--trace needs a file path".into());
                }
                trace = Some(PathBuf::from(args.remove(i)));
            }
            _ => i += 1,
        }
    }
    mh_obs::log::apply_verbosity(verbose, quiet);
    if trace.is_none() {
        if let Ok(path) = std::env::var("MH_TRACE") {
            if !path.is_empty() {
                trace = Some(PathBuf::from(path));
            }
        }
    }
    if let Some(path) = &trace {
        mh_obs::enable_jsonl(path)
            .map_err(|e| format!("cannot open trace file {}: {e}", path.display()))?;
        mh_obs::debug!("tracing spans to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_global_flags_and_keeps_the_rest() {
        let mut args: Vec<String> = ["archive", "--verbose", "repo", "-q", "--alpha", "2.0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        apply_global_flags(&mut args).unwrap();
        assert_eq!(args, ["archive", "repo", "--alpha", "2.0"]);
    }

    #[test]
    fn trace_without_value_is_an_error() {
        let mut args: Vec<String> = vec!["fsck".into(), "--trace".into()];
        assert!(apply_global_flags(&mut args).is_err());
    }
}
