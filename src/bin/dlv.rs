//! `dlv` — the ModelHub command-line tool (Table II of the paper).
//!
//! ```text
//! dlv init <dir>
//! dlv demo <dir>                      # populate with a trained demo model
//! dlv list <dir>
//! dlv desc <dir> <model[:id]> [--html <file>]
//! dlv diff <dir> <left> <right>
//! dlv eval <dir> <model[:id]> [--classes N] [--seed S]
//! dlv copy <dir> <src> <new-name>
//! dlv archive <dir> [--alpha A] [--scheme independent|parallel]
//! dlv query <dir> "<DQL>" [--dataset classes=N,seed=S]
//! dlv publish <dir> <hub> <name>
//! dlv search <hub> <pattern>
//! dlv pull <hub> <name> <dest-dir> [--cache <dir>]
//! ```
//!
//! `<hub>` is either a local hub directory or a remote `hubd` URL of the
//! form `http://host:port` (see `modelhub hubd`). Remote pulls may pass
//! `--cache <dir>` to keep a persistent object cache, making repeat pulls
//! of unchanged content transfer near-zero object bytes.
//!
//! The `demo` and `--dataset` conveniences stand in for the external
//! training systems (caffe etc.) the paper wraps: they generate synthetic
//! data and train locally so every command is exercisable end to end.

use modelhub::dlv::{diff, ArchiveConfig, CommitRequest, Hub, HubBackend, Repository};
use modelhub::dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::dql::{Executor, QueryResult};
use modelhub::hub::{is_remote_spec, RemoteHub};
use modelhub::pas::RetrievalScheme;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    mh_obs::error!(
        "usage: dlv <init|demo|list|desc|weights|diff|eval|copy|archive|query|publish|search|pull> ...\n       \
         global flags: [--verbose|-v] [--quiet|-q] [--trace <file>]\n       \
         (see `dlv help` or the module docs for argument details)"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Open a hub backend from a spec: `http://host:port` for a remote
/// `hubd`, anything else as a local hub directory.
fn open_hub(
    spec: &str,
    cache: Option<&PathBuf>,
) -> Result<Box<dyn HubBackend>, Box<dyn std::error::Error>> {
    if is_remote_spec(spec) {
        let mut remote = RemoteHub::open(spec)?;
        if let Some(dir) = cache {
            remote = remote.with_cache(dir);
        }
        Ok(Box::new(remote))
    } else {
        Ok(Box::new(Hub::open(&PathBuf::from(spec))?))
    }
}

fn parse_dataset_spec(spec: Option<String>) -> SynthConfig {
    let mut cfg = SynthConfig::default();
    if let Some(s) = spec {
        for part in s.split(',') {
            if let Some((k, v)) = part.split_once('=') {
                match k {
                    "classes" => cfg.num_classes = v.parse().unwrap_or(cfg.num_classes),
                    "seed" => cfg.seed = v.parse().unwrap_or(cfg.seed),
                    "noise" => cfg.noise = v.parse().unwrap_or(cfg.noise),
                    _ => {}
                }
            }
        }
    }
    cfg
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    modelhub::cli::apply_global_flags(&mut args)?;
    let Some(cmd) = args.first().map(String::as_str) else {
        return Ok(usage());
    };
    let path = |i: usize| -> Option<PathBuf> { args.get(i).map(PathBuf::from) };

    match cmd {
        "help" | "--help" | "-h" => Ok(usage()),
        "init" => {
            let dir = path(1).ok_or("init needs a directory")?;
            Repository::init(&dir)?;
            println!("initialized empty dlv repository in {}", dir.display());
            Ok(ExitCode::SUCCESS)
        }
        "demo" => {
            let dir = path(1).ok_or("demo needs a directory")?;
            let repo = if dir.join("catalog.mhs").exists() {
                Repository::open(&dir)?
            } else {
                Repository::init(&dir)?
            };
            let cfg = parse_dataset_spec(flag_value(&args, "--dataset"));
            let data = synth_dataset(&cfg);
            let net = zoo::lenet_s(cfg.num_classes);
            let trainer = Trainer {
                hp: Hyperparams {
                    base_lr: 0.08,
                    ..Default::default()
                },
                snapshot_every: 10,
            };
            let r = trainer.train(&net, Weights::init(&net, cfg.seed)?, &data, 30)?;
            let mut req = CommitRequest::new("demo-lenet", net);
            req.snapshots = r.snapshots.clone();
            req.log = r.log.clone();
            req.accuracy = Some(r.final_accuracy);
            req.comment = "dlv demo model".into();
            let key = repo.commit(&req)?;
            println!(
                "trained and committed {key} (accuracy {:.1}%)",
                r.final_accuracy * 100.0
            );
            Ok(ExitCode::SUCCESS)
        }
        "list" => {
            let dir = path(1).ok_or("list needs a repository")?;
            let repo = Repository::open(&dir)?;
            println!(
                "{:<24} {:>6} {:>9} {:>9}  comment",
                "version", "snaps", "params", "accuracy"
            );
            for v in repo.list() {
                println!(
                    "{:<24} {:>6} {:>9} {:>9}  {}{}",
                    v.key.to_string(),
                    v.num_snapshots,
                    v.param_count,
                    v.accuracy
                        .map(|a| format!("{a:.3}"))
                        .unwrap_or_else(|| "-".into()),
                    v.comment,
                    if v.archived { " [archived]" } else { "" }
                );
            }
            for (base, derived) in repo.lineage() {
                println!("lineage: {base} -> {derived}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "desc" => {
            let dir = path(1).ok_or("desc needs a repository")?;
            let spec = args.get(2).ok_or("desc needs a model spec")?;
            let repo = Repository::open(&dir)?;
            let d = repo.desc(spec)?;
            if let Some(html_path) = flag_value(&args, "--html") {
                std::fs::write(&html_path, d.render_html())?;
                println!("wrote {html_path}");
                return Ok(ExitCode::SUCCESS);
            }
            println!("model {}", d.summary.key);
            println!("  architecture: {}", d.summary.architecture);
            println!("  parameters:   {}", d.summary.param_count);
            println!("  accuracy:     {:?}", d.summary.accuracy);
            println!("  layers:");
            for (name, def) in &d.layers {
                println!("    {name:<16} {def}");
            }
            println!("  hyperparameters: {:?}", d.hyperparams);
            println!("  snapshots:");
            for s in &d.snapshots {
                println!("    s{} @iter {} [{}]", s.index, s.iteration, s.location);
            }
            if let (Some(first), Some(last)) = (d.loss_curve.first(), d.loss_curve.last()) {
                println!(
                    "  loss: {:.4} (iter {}) -> {:.4} (iter {})",
                    first.1, first.0, last.1, last.0
                );
            }
            for (p, hash, bytes) in &d.files {
                println!("  file {p} ({bytes} bytes, sha256 {})", &hash[..12]);
            }
            Ok(ExitCode::SUCCESS)
        }
        "weights" => {
            // Approximate weight histogram of an archived model from its
            // high-order byte planes only (no low-order reads).
            let dir = path(1).ok_or("weights needs a repository")?;
            let spec = args.get(2).ok_or("weights needs a model spec")?;
            let layer = args.get(3).ok_or("weights needs a layer name")?;
            let planes: usize = flag_value(&args, "--planes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2);
            let repo = Repository::open(&dir)?;
            let (store_dir, mapping) = repo.pas_binding(spec, None)?;
            let store = modelhub::pas::SegmentStore::open(&store_dir)?;
            let v = *mapping
                .get(layer.as_str())
                .ok_or("layer not found in archived snapshot")?;
            let hist = store.weight_histogram(v, planes, 24, None)?;
            println!("weights of {spec}/{layer} from {planes} high-order byte plane(s):");
            print!("{}", hist.render_ascii(48));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let dir = path(1).ok_or("diff needs a repository")?;
            let (l, r) = (
                args.get(2).ok_or("diff needs two model specs")?,
                args.get(3).ok_or("diff needs two model specs")?,
            );
            let repo = Repository::open(&dir)?;
            print!("{}", diff(&repo, l, r)?.render());
            Ok(ExitCode::SUCCESS)
        }
        "eval" => {
            let dir = path(1).ok_or("eval needs a repository")?;
            let spec = args.get(2).ok_or("eval needs a model spec")?;
            let repo = Repository::open(&dir)?;
            let cfg = parse_dataset_spec(flag_value(&args, "--dataset"));
            let data = synth_dataset(&cfg);
            let acc = repo.eval(spec, &data.test)?;
            println!(
                "accuracy of {spec} on synthetic test set: {:.2}%",
                acc * 100.0
            );
            Ok(ExitCode::SUCCESS)
        }
        "copy" => {
            let dir = path(1).ok_or("copy needs a repository")?;
            let (src, new) = (
                args.get(2).ok_or("copy needs <src> <new-name>")?,
                args.get(3).ok_or("copy needs <src> <new-name>")?,
            );
            let repo = Repository::open(&dir)?;
            let key = repo.copy(src, new, "dlv copy")?;
            println!("scaffolded {key} from {src}");
            Ok(ExitCode::SUCCESS)
        }
        "archive" => {
            let dir = path(1).ok_or("archive needs a repository")?;
            let repo = Repository::open(&dir)?;
            let alpha: f64 = flag_value(&args, "--alpha")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2.0);
            let scheme = match flag_value(&args, "--scheme").as_deref() {
                Some("parallel") => RetrievalScheme::Parallel,
                _ => RetrievalScheme::Independent,
            };
            let checkpoint_scheme = match flag_value(&args, "--checkpoint-scheme").as_deref() {
                Some("fixed8") => Some(modelhub::tensor::Scheme::Fixed { bits: 8 }),
                Some("fixed16") => Some(modelhub::tensor::Scheme::Fixed { bits: 16 }),
                Some("f16") => Some(modelhub::tensor::Scheme::F16),
                Some("quant8") => Some(modelhub::tensor::Scheme::QuantUniform { bits: 8 }),
                _ => None,
            };
            let report = repo.archive(&ArchiveConfig {
                alpha,
                scheme,
                checkpoint_scheme,
                ..Default::default()
            })?;
            println!(
                "archived {} matrices / {} snapshots into {:?}: {} bytes (budgets satisfied: {})",
                report.num_matrices,
                report.num_snapshots,
                report.store,
                report.bytes_on_disk,
                report.satisfied
            );
            Ok(ExitCode::SUCCESS)
        }
        "query" => {
            let dir = path(1).ok_or("query needs a repository")?;
            let q = args.get(2).ok_or("query needs a DQL string")?;
            let repo = Repository::open(&dir)?;
            let mut exec = Executor::new(&repo);
            let cfg = parse_dataset_spec(flag_value(&args, "--dataset"));
            exec.register_dataset("default", synth_dataset(&cfg));
            match exec.run(q)? {
                QueryResult::Versions(v) => {
                    for s in v {
                        println!("{}  {}  acc={:?}", s.key, s.architecture, s.accuracy);
                    }
                }
                QueryResult::Derived(d) => {
                    for m in d {
                        println!(
                            "derived from {}: {} ({} nodes)",
                            m.source,
                            m.derivation,
                            m.network.num_nodes()
                        );
                    }
                }
                QueryResult::Evaluated(rows) => {
                    for r in rows {
                        println!(
                            "{} [{}] loss={:.4} acc={:.3} kept={} committed={:?}",
                            r.source,
                            r.config,
                            r.loss,
                            r.accuracy,
                            r.kept,
                            r.committed.map(|k| k.to_string())
                        );
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "publish" => {
            let dir = path(1).ok_or("publish needs <repo> <hub> <name>")?;
            let hub_spec = args.get(2).ok_or("publish needs <repo> <hub> <name>")?;
            let name = args.get(3).ok_or("publish needs <repo> <hub> <name>")?;
            let repo = Repository::open(&dir)?;
            mh_obs::debug!("publishing {} to {hub_spec} as {name}", dir.display());
            {
                // Root span: every hub.rpc the publish makes parents here,
                // and the minted trace id crosses the wire to the server.
                let mut sp = mh_obs::span("dlv.publish");
                sp.field("name", name.as_str());
                open_hub(hub_spec, None)?.publish(&repo, name)?;
            }
            println!("published {} as {name} to {hub_spec}", dir.display());
            Ok(ExitCode::SUCCESS)
        }
        "search" => {
            let hub_spec = args.get(1).ok_or("search needs <hub> <pattern>")?;
            let pattern = args.get(2).ok_or("search needs <hub> <pattern>")?;
            let mut sp = mh_obs::span("dlv.search");
            sp.field("pattern", pattern.as_str());
            for hit in open_hub(hub_spec, None)?.search(pattern)? {
                println!(
                    "{}/{}  {}  {}",
                    hit.repo, hit.version, hit.architecture, hit.comment
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "pull" => {
            let hub_spec = args.get(1).ok_or("pull needs <hub> <name> <dest>")?;
            let name = args.get(2).ok_or("pull needs <hub> <name> <dest>")?;
            let dest = path(3).ok_or("pull needs <hub> <name> <dest>")?;
            let cache = flag_value(&args, "--cache").map(PathBuf::from);
            mh_obs::debug!("pulling {name} from {hub_spec} into {}", dest.display());
            {
                let mut sp = mh_obs::span("dlv.pull");
                sp.field("name", name.as_str());
                open_hub(hub_spec, cache.as_ref())?.pull(name, &dest)?;
            }
            println!("pulled {name} into {} (verified)", dest.display());
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            mh_obs::error!("dlv: {e}");
            ExitCode::FAILURE
        }
    };
    mh_obs::flush();
    code
}
