//! `modelhub` — repository maintenance commands.
//!
//! ```text
//! modelhub fsck <dir> [--deep]       # static integrity verification
//! modelhub check <query> [--repo <dir>]   # DQL semantic analysis (no execution)
//! ```
//!
//! `fsck` runs the mh-check layers (catalog referential integrity, blob
//! hashes, PAS plan invariants, α-budget accounting; `--deep` additionally
//! derives per-snapshot error bounds from byte-plane prefixes) and exits
//! nonzero when any Error-severity finding is present.
//!
//! `check` type-checks a DQL query against the catalog schema — and, with
//! `--repo`, against the repository's network layer names — printing
//! caret-rendered span diagnostics without executing the query.

use modelhub::check::{fsck, FsckConfig};
use modelhub::dql::analyze::{self, AnalyzeContext};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: modelhub fsck <dir> [--deep]");
    eprintln!("       modelhub check \"<DQL>\" [--repo <dir>]");
    ExitCode::from(2)
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fsck") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from);
            let dir = dir.ok_or("fsck needs a repository directory")?;
            let cfg = FsckConfig {
                deep: args.iter().any(|a| a == "--deep"),
            };
            let report = fsck(&dir, &cfg)?;
            for f in &report.findings {
                println!("{f}");
            }
            if !report.bounds.is_empty() {
                println!(
                    "per-snapshot worst-case bounds ({}-plane prefix):",
                    report.bounds[0].planes
                );
                for b in &report.bounds {
                    println!(
                        "  {}/{}: {} layers, worst interval width {:.6}",
                        b.store, b.snapshot, b.layers, b.worst_width
                    );
                }
            }
            println!(
                "checked {} versions, {} stores, {} blobs: {} errors, {} warnings",
                report.versions_checked,
                report.stores_checked,
                report.blobs_checked,
                report.errors(),
                report.warnings()
            );
            Ok(if report.errors() > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("check") => {
            let query = args.get(1).ok_or("check needs a DQL query string")?;
            let ctx = match args.iter().position(|a| a == "--repo") {
                Some(i) => {
                    let dir = args.get(i + 1).ok_or("--repo needs a directory")?;
                    let repo = modelhub::dlv::Repository::open(&PathBuf::from(dir))?;
                    AnalyzeContext::from_repository(&repo)
                }
                None => AnalyzeContext::default(),
            };
            let diags = match analyze::check(query, &ctx) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let mut errors = 0usize;
            for d in &diags {
                render(query, d);
                if d.severity == analyze::Severity::Error {
                    errors += 1;
                }
            }
            if diags.is_empty() {
                println!("ok: no diagnostics");
            }
            Ok(if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        _ => Ok(usage()),
    }
}

/// Print a diagnostic with a caret line under its span.
fn render(src: &str, d: &modelhub::dql::Diagnostic) {
    println!("{}: [{}] {}", d.severity, d.code, d.message);
    println!("  | {src}");
    let width = d.span.end.saturating_sub(d.span.start).max(1);
    println!("  | {}{}", " ".repeat(d.span.start), "^".repeat(width));
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("modelhub: {e}");
            ExitCode::FAILURE
        }
    }
}
