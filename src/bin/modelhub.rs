//! `modelhub` — repository maintenance commands.
//!
//! ```text
//! modelhub fsck <dir> [--deep] [--jobs N]  # static integrity verification
//! modelhub check <query> [--repo <dir>]    # DQL semantic analysis (no execution)
//! modelhub gen-sample <dir>                # create a small trained sample repo
//! modelhub archive <dir> [--alpha F] [--jobs N]  # archive staged snapshots into PAS
//! modelhub hubd <root> [--addr H:P] [--jobs N] [--max-conns N] [--cache-bytes N] [--body-budget N]  # serve a hosted hub over TCP
//! modelhub audit [root] [--report FILE] [--max-waivers N]  # panic/alloc static audit
//! modelhub repro <experiment> [--quick] [--jobs N]  # run an mh-bench experiment
//! modelhub prof <subcommand...>            # run a subcommand, print a span profile
//! modelhub prof --from-dump <spans.jsonl>  # render a span dump as a profile tree
//! modelhub trace view <spans.jsonl>...     # stitch client+server spans into one trace tree
//! ```
//!
//! Global flags (any command): `--verbose`/`-v` and `--quiet`/`-q` set the
//! stderr log level; `--trace <file>` (or `MH_TRACE=<file>`) streams every
//! completed span as JSON Lines. Command output on stdout is unaffected.
//!
//! `fsck` runs the mh-check layers (catalog referential integrity, blob
//! hashes, PAS plan invariants, α-budget accounting; `--deep` additionally
//! derives per-snapshot error bounds from byte-plane prefixes) and exits
//! nonzero when any Error-severity finding is present.
//!
//! `check` type-checks a DQL query against the catalog schema — and, with
//! `--repo`, against the repository's network layer names — printing
//! caret-rendered span diagnostics without executing the query.
//!
//! `gen-sample` and `archive` exist for smoke testing and demos: the first
//! trains two tiny lineage-related models and commits their checkpoints,
//! the second runs the PAS archival pipeline over everything staged.
//!
//! `audit` runs the mh-audit static analyzer over the workspace rooted at
//! `[root]` (default `.`): panic-reachability from every
//! `mh-audit: no_panic_zone` entry point, untrusted-length taint, and the
//! sync-facade token rules. Exits nonzero on any unwaived finding, or when
//! `--max-waivers N` is exceeded; `--report FILE` writes the deterministic
//! findings report.
//!
//! `hubd` serves the hub rooted at `<root>` (created if absent) over a
//! small HTTP/1.1-subset wire protocol with git-style incremental object
//! transfer; `dlv publish/search/pull` accept its `http://host:port` URL
//! anywhere a hub directory is accepted. Default address: 127.0.0.1:7797.
//! The nonblocking reactor holds `--max-conns` simultaneous connections
//! (default 1024; over-cap connects get 503 + Retry-After) over a worker
//! pool of `--jobs` threads, and serves hot objects and manifests from an
//! in-memory LRU capped at `--cache-bytes` (default 64 MiB; 0 disables).
//! `--body-budget` (bytes, default 256 MiB) caps the aggregate declared
//! request-body bytes buffered across all connections; requests past it
//! are answered 503 + Retry-After (one body is always admitted when
//! nothing else is in flight). `--slow-ms N` (default 1000; 0 disables)
//! logs a warn line naming the request's trace id whenever routing takes
//! at least N milliseconds. `GET /debug/flightrec` returns the server's
//! always-on flight-recorder dump: the most recent span records and
//! warn/error events, captured even with tracing off.
//!
//! `trace view` merges one or more `--trace` JSONL files (client- and
//! server-side) by 128-bit trace id and prints each trace as a single
//! cross-process tree; the gap between a client rpc span and the nested
//! server request span is attributed as `network+queue=` explicitly.
//!
//! `--jobs N` bounds the worker pool for the invocation (overrides the
//! `MH_THREADS` environment variable; default: all available cores).

use modelhub::check::{fsck, FsckConfig};
use modelhub::dlv::{ArchiveConfig, CommitRequest, Repository};
use modelhub::dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::dql::analyze::{self, AnalyzeContext};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    mh_obs::error!(
        "usage: modelhub fsck <dir> [--deep] [--jobs N] | fsck --version\n       \
         modelhub check \"<DQL>\" [--repo <dir>]\n       \
         modelhub gen-sample <dir>\n       \
         modelhub archive <dir> [--alpha F] [--jobs N]\n       \
         modelhub hubd <root> [--addr HOST:PORT] [--jobs N] [--max-conns N] [--cache-bytes N] [--body-budget N] [--slow-ms N]\n       \
         modelhub audit [root] [--report FILE] [--max-waivers N]\n       \
         modelhub repro <experiment|all> [--quick] [--jobs N]\n       \
         modelhub prof <subcommand...> | prof --from-dump <spans.jsonl>\n       \
         modelhub trace view <spans.jsonl>...\n       \
         global flags: [--verbose|-v] [--quiet|-q] [--trace <file>]"
    );
    ExitCode::from(2)
}

/// Parse `--flag <value>` anywhere in the argument list.
fn flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, Box<dyn std::error::Error>> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            raw.parse()
                .map(Some)
                .map_err(|_| format!("invalid value for {flag}: {raw}").into())
        }
    }
}

/// Apply `--jobs N` to the process-wide worker pool.
fn apply_jobs(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(n) = flag_value::<usize>(args, "--jobs")? {
        if n == 0 {
            return Err("--jobs must be at least 1".into());
        }
        modelhub::par::set_threads(Some(n));
    }
    Ok(())
}

/// Train one tiny model and assemble its commit.
fn trained_commit(name: &str, seed: u64, parent: Option<&str>) -> CommitRequest {
    let net = zoo::lenet_s(3);
    let data = synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 8,
        test_per_class: 4,
        noise: 0.05,
        seed: 11,
        height: 16,
        width: 16,
    });
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: 3,
    };
    let init = Weights::init(&net, seed).expect("zoo network shapes are valid");
    let result = trainer
        .train(&net, init, &data, 9)
        .expect("training the sample model");
    let mut req = CommitRequest::new(name, net);
    req.snapshots = result
        .snapshots
        .iter()
        .map(|(i, w)| (*i, w.clone()))
        .collect();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.hyperparams.insert("base_lr".into(), "0.08".into());
    req.parent = parent.map(String::from);
    req.comment = format!("sample model {name}");
    req
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    modelhub::cli::apply_global_flags(&mut args)?;
    dispatch(&args)
}

fn dispatch(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("prof") => {
            let rest = &args[1..];
            if rest.first().map(String::as_str) == Some("--from-dump") {
                // Offline mode: render a previously captured span dump (a
                // `--trace` JSONL file or a flight-recorder dump) as the
                // same aggregated profile tree `prof` prints live.
                let path = rest.get(1).ok_or("--from-dump needs a JSONL file")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let spans = mh_obs::traceview::parse_jsonl(&text, 0);
                if spans.is_empty() {
                    return Err(format!("no span records found in {path}").into());
                }
                let records = mh_obs::traceview::to_records(&spans);
                let profile = mh_obs::build_profile(&records);
                println!("--- profile ({path}) ---");
                print!("{}", mh_obs::render_profile(&profile));
                return Ok(ExitCode::SUCCESS);
            }
            if rest.first().is_none_or(|a| a.starts_with("--")) {
                return Err(
                    "prof needs a subcommand to profile (e.g. `modelhub prof repro pas --quick`)"
                        .into(),
                );
            }
            mh_obs::enable_capture();
            let code = dispatch(rest)?;
            let profile = mh_obs::build_profile(&mh_obs::drain_capture());
            println!("--- profile ---");
            print!("{}", mh_obs::render_profile(&profile));
            return Ok(code);
        }
        Some("trace") => {
            if args.get(1).map(String::as_str) != Some("view") {
                return Err("trace needs a subcommand: trace view <spans.jsonl>...".into());
            }
            let files = &args[2..];
            if files.is_empty() || files.iter().any(|a| a.starts_with("--")) {
                return Err("trace view needs one or more JSONL span files".into());
            }
            let mut spans = Vec::new();
            let mut sources = Vec::new();
            for (i, path) in files.iter().enumerate() {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                spans.extend(mh_obs::traceview::parse_jsonl(&text, i));
                sources.push(path.clone());
            }
            let untraced = spans.iter().filter(|s| s.trace == 0).count();
            let trees = mh_obs::traceview::stitch(&spans);
            if trees.is_empty() {
                println!(
                    "no traced spans in {} record(s) ({untraced} without a trace id); \
                     capture with `--trace <file>` on both client and server",
                    spans.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            for tree in &trees {
                print!("{}", mh_obs::traceview::render_trace(tree, &sources));
            }
            if untraced > 0 {
                mh_obs::debug!("trace view: ignored {untraced} spans without a trace id");
            }
            return Ok(ExitCode::SUCCESS);
        }
        Some("repro") => {
            apply_jobs(args)?;
            let quick = args.iter().any(|a| a == "--quick");
            let what = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("all");
            mh_obs::debug!("running experiment(s) '{what}' (quick={quick})");
            if what == "all" {
                for name in modelhub::bench::EXPERIMENTS {
                    println!("\n### {name} ###");
                    modelhub::bench::run_experiment(name, quick)?;
                }
            } else {
                modelhub::bench::run_experiment(what, quick)?;
            }
            return Ok(ExitCode::SUCCESS);
        }
        _ => {}
    }
    match args.first().map(String::as_str) {
        Some("fsck") => {
            if args.iter().any(|a| a == "--version") {
                println!(
                    "modelhub fsck {} (sync backend: {})",
                    env!("CARGO_PKG_VERSION"),
                    mh_par::backend()
                );
                println!("audit rule inventory:");
                for (code, what) in modelhub::audit::report::rules_inventory() {
                    println!("  {code}  {what}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from);
            let dir = dir.ok_or("fsck needs a repository directory")?;
            apply_jobs(args)?;
            let cfg = FsckConfig {
                deep: args.iter().any(|a| a == "--deep"),
            };
            mh_obs::debug!("fsck {} (deep={})", dir.display(), cfg.deep);
            let report = fsck(&dir, &cfg)?;
            for f in &report.findings {
                println!("{f}");
            }
            if !report.bounds.is_empty() {
                println!(
                    "per-snapshot worst-case bounds ({}-plane prefix):",
                    report.bounds[0].planes
                );
                for b in &report.bounds {
                    println!(
                        "  {}/{}: {} layers, worst interval width {:.6}",
                        b.store, b.snapshot, b.layers, b.worst_width
                    );
                }
            }
            println!(
                "checked {} versions, {} stores, {} blobs: {} errors, {} warnings",
                report.versions_checked,
                report.stores_checked,
                report.blobs_checked,
                report.errors(),
                report.warnings()
            );
            Ok(if report.errors() > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("check") => {
            let query = args.get(1).ok_or("check needs a DQL query string")?;
            let ctx = match args.iter().position(|a| a == "--repo") {
                Some(i) => {
                    let dir = args.get(i + 1).ok_or("--repo needs a directory")?;
                    let repo = modelhub::dlv::Repository::open(&PathBuf::from(dir))?;
                    AnalyzeContext::from_repository(&repo)
                }
                None => AnalyzeContext::default(),
            };
            let diags = match analyze::check(query, &ctx) {
                Ok(d) => d,
                Err(e) => {
                    mh_obs::error!("parse error: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let mut errors = 0usize;
            for d in &diags {
                render(query, d);
                if d.severity == analyze::Severity::Error {
                    errors += 1;
                }
            }
            if diags.is_empty() {
                println!("ok: no diagnostics");
            }
            Ok(if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("gen-sample") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .ok_or("gen-sample needs a target directory")?;
            let repo = Repository::init(&dir)?;
            let base = trained_commit("lenet", 1, None);
            let base_key = repo.commit(&base)?;
            let tuned = trained_commit("lenet-tuned", 2, Some(&base_key.to_string()));
            let tuned_key = repo.commit(&tuned)?;
            println!(
                "created sample repository at {} with versions {base_key} and {tuned_key}",
                dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("archive") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .ok_or("archive needs a repository directory")?;
            apply_jobs(args)?;
            let cfg = ArchiveConfig {
                alpha: flag_value::<f64>(args, "--alpha")?
                    .unwrap_or(ArchiveConfig::default().alpha),
                ..Default::default()
            };
            mh_obs::debug!("archiving {} with alpha {}", dir.display(), cfg.alpha);
            let repo = Repository::open(&dir)?;
            let report = repo.archive(&cfg)?;
            println!(
                "archived {} snapshots ({} matrices) into store {}: {} bytes on disk, \
                 plan cost {:.1}, budget {}",
                report.num_snapshots,
                report.num_matrices,
                report.store.0,
                report.bytes_on_disk,
                report.storage_cost,
                if report.satisfied {
                    "satisfied"
                } else {
                    "exceeded"
                }
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("audit") => {
            if args.iter().any(|a| a == "--version") {
                println!("modelhub audit {}", env!("CARGO_PKG_VERSION"));
                println!("rule inventory:");
                for (code, what) in modelhub::audit::report::rules_inventory() {
                    println!("  {code}  {what}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            let root = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            let report_path = flag_value::<PathBuf>(args, "--report")?;
            let max_waivers = flag_value::<usize>(args, "--max-waivers")?;
            let report = modelhub::audit::audit_root(&root)
                .map_err(|e| format!("walking {}: {e}", root.display()))?;
            let rendered = report.render();
            if let Some(path) = &report_path {
                std::fs::write(path, &rendered)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            print!("{rendered}");
            if !report.is_clean() {
                mh_obs::error!(
                    "audit: FAIL — fix the finding or add `mh-audit: allow(CODE, reason)`"
                );
                return Ok(ExitCode::FAILURE);
            }
            if let Some(cap) = max_waivers {
                if report.waived > cap {
                    mh_obs::error!(
                        "audit: FAIL — waiver count {} exceeds --max-waivers {cap}; \
                         remove a waiver or consciously raise the cap",
                        report.waived
                    );
                    return Ok(ExitCode::FAILURE);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("hubd") => {
            let root = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .ok_or("hubd needs a hub root directory")?;
            let addr = flag_value::<String>(args, "--addr")?
                .unwrap_or_else(|| "127.0.0.1:7797".to_string());
            let jobs = flag_value::<usize>(args, "--jobs")?;
            if jobs == Some(0) {
                return Err("--jobs must be at least 1".into());
            }
            let mut config = modelhub::hub::server::Config {
                jobs,
                ..modelhub::hub::server::Config::default()
            };
            if let Some(max_conns) = flag_value::<usize>(args, "--max-conns")? {
                if max_conns == 0 {
                    return Err("--max-conns must be at least 1".into());
                }
                config.max_conns = max_conns;
            }
            if let Some(cache_bytes) = flag_value::<usize>(args, "--cache-bytes")? {
                config.cache_bytes = cache_bytes;
            }
            if let Some(body_budget) = flag_value::<u64>(args, "--body-budget")? {
                config.body_budget_bytes = body_budget;
            }
            if let Some(slow_ms) = flag_value::<u64>(args, "--slow-ms")? {
                config.slow_ms = slow_ms;
            }
            let server = modelhub::hub::HubServer::start_with(&root, &addr, config)?;
            println!(
                "hubd serving {} at {} (ctrl-c to stop)",
                root.display(),
                server.url()
            );
            server.run();
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

/// Print a diagnostic with a caret line under its span.
fn render(src: &str, d: &modelhub::dql::Diagnostic) {
    println!("{}: [{}] {}", d.severity, d.code, d.message);
    println!("  | {src}");
    let width = d.span.end.saturating_sub(d.span.start).max(1);
    println!("  | {}{}", " ".repeat(d.span.start), "^".repeat(width));
}

fn main() -> ExitCode {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            mh_obs::error!("modelhub: {e}");
            ExitCode::FAILURE
        }
    };
    mh_obs::flush();
    code
}
