//! Model sharing through the hosted ModelHub hub (§III-C): publish a
//! repository, search it, and pull it into a fresh clone that can keep
//! working — the collaborative side of the lifecycle.
//!
//! Run with: `cargo run --release --example model_sharing`

use modelhub::dlv::CommitRequest;
use modelhub::dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::ModelHub;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("modelhub-sharing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let repo_dir = base.join("alice-repo");
    let hub_dir = base.join("hub");
    let clone_dir = base.join("bob-clone");

    // Alice trains and commits a model.
    let alice = ModelHub::init(&repo_dir)?;
    let net = zoo::lenet_s(4);
    let data = synth_dataset(&SynthConfig {
        num_classes: 4,
        seed: 12,
        ..Default::default()
    });
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.08,
        ..Default::default()
    });
    let r = trainer.train(&net, Weights::init(&net, 4)?, &data, 12)?;
    let mut req = CommitRequest::new("digit-recognizer", net);
    req.snapshots = vec![(12, r.weights)];
    req.accuracy = Some(r.final_accuracy);
    req.comment = "4-way digit recognizer, synthetic gratings".into();
    alice.repo().commit(&req)?;
    println!(
        "alice committed digit-recognizer (acc {:.1}%)",
        r.final_accuracy * 100.0
    );

    // dlv publish.
    alice.publish(&hub_dir, "alice/vision")?;
    println!("published to hub as alice/vision");

    // dlv search.
    for hit in ModelHub::search(&hub_dir, "%digit%")? {
        println!(
            "search hit: {}/{} [{}] {}",
            hit.repo, hit.version, hit.architecture, hit.comment
        );
    }

    // dlv pull: Bob clones and keeps working.
    let bob = ModelHub::pull(&hub_dir, "alice/vision", &clone_dir)?;
    let acc = bob.repo().eval("digit-recognizer", &data.test)?;
    println!(
        "bob pulled the repo and reproduced accuracy {:.1}%",
        acc * 100.0
    );

    // Bob extends the lineage in his clone.
    let key = bob
        .repo()
        .copy("digit-recognizer", "digit-recognizer-bob", "bob's fork")?;
    println!(
        "bob forked it as {key}; lineage now {:?}",
        bob.repo().lineage()
    );

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
