//! Progressive query evaluation in isolation (§IV-D): archive a trained
//! model, then watch individual inference queries resolve from high-order
//! byte planes, escalating precision only when the interval bounds leave
//! the prediction undetermined.
//!
//! Run with: `cargo run --release --example progressive_inference`

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use modelhub::compress::Level;
use modelhub::delta::DeltaOp;
use modelhub::dnn::{forward, synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::pas::{
    solver, CostModel, GraphBuilder, ModelBinding, ProgressiveEvaluator, SegmentStore,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a model until its logit margins are healthy.
    let net = zoo::lenet_s(4);
    let data = synth_dataset(&SynthConfig {
        num_classes: 4,
        seed: 19,
        ..Default::default()
    });
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.08,
        ..Default::default()
    });
    let result = trainer.train(&net, Weights::init(&net, 3)?, &data, 60)?;
    println!(
        "trained lenet_s: accuracy {:.1}%, {} parameters",
        result.final_accuracy * 100.0,
        result.weights.param_count()
    );

    // Archive its weights as byte planes.
    let mut builder = GraphBuilder::new(CostModel::default());
    let binding_map = builder.add_snapshot("m", 0, &result.weights);
    let (graph, matrices) = builder.finish();
    let plan = solver::mst(&graph)?;
    let dir = std::env::temp_dir().join(format!("modelhub-prog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SegmentStore::create(&dir, &graph, &plan, &matrices, DeltaOp::Sub, Level::Default)?;
    println!(
        "archived into {} bytes of compressed byte planes",
        store.bytes_on_disk()
    );

    // Run progressive queries, narrating precision escalation.
    let binding = ModelBinding::new(net.clone(), binding_map);
    let ev = ProgressiveEvaluator::new(&store, &binding);
    let mut histogram = [0usize; 4];
    for (i, (x, label)) in data.test.iter().enumerate().take(12) {
        let r = ev.eval(x, 1)?;
        let exact = forward(&net, &result.weights, x)?.argmax();
        assert_eq!(
            r.prediction[0], exact,
            "progressive result must equal exact"
        );
        histogram[r.planes_used - 1] += 1;
        println!(
            "query {i:>2}: truth={label} predicted={} determined after {} byte plane(s), \
             read {:>5.1}% of the compressed footprint",
            r.prediction[0],
            r.planes_used,
            r.read_fraction() * 100.0
        );
    }
    println!("\nplanes needed histogram (1..4): {histogram:?}");

    // Bonus: a weight histogram from 2 planes vs full precision.
    let v = *binding.layer_vertex.values().next().unwrap();
    let approx = store.weight_histogram(v, 2, 16, Some((-0.6, 0.6)))?;
    let exacth = store.weight_histogram(v, 4, 16, Some((-0.6, 0.6)))?;
    println!(
        "\nweight histogram from 2 high-order planes (total-variation distance \
         to full precision: {:.4}):",
        exacth.distance(&approx)
    );
    print!("{}", approx.render_ascii(40));

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
