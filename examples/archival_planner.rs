//! The optimal parameter archival storage problem in isolation: build a
//! storage graph from an SD-style repository and compare the five solvers
//! (MST / SPT / LAST / PAS-MT / PAS-PT) across recreation budgets — the
//! experiment behind Fig. 6(c).
//!
//! Run with: `cargo run --release --example archival_planner`

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use modelhub::core::{generate_sd, SdConfig};
use modelhub::dlv::Repository;
use modelhub::pas::{apply_alpha_budgets, solver, CostModel, GraphBuilder, RetrievalScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("modelhub-planner-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let repo = Repository::init(&root)?;

    println!("generating SD workload (fine-tuned variants with checkpoints)...");
    let sd = generate_sd(
        &repo,
        &SdConfig {
            num_versions: 4,
            snapshots_per_version: 3,
            ..Default::default()
        },
    )?;
    println!("  base {} + {} variants", sd.base, sd.versions.len());

    // Build the matrix storage graph with measured compression costs.
    let mut builder = GraphBuilder::new(CostModel::default());
    for summary in repo.list() {
        let spec = summary.key.to_string();
        let mut indices = Vec::new();
        for s in repo.snapshots(&spec)? {
            let w = repo.get_weights(&spec, Some(s.index))?;
            builder.add_snapshot(&spec, s.index, &w);
            indices.push(s.index);
        }
        builder.link_version_chain(&spec, &indices);
    }
    // Lineage deltas between latest snapshots.
    let latest: std::collections::BTreeMap<String, usize> = repo
        .list()
        .iter()
        .map(|s| {
            let spec = s.key.to_string();
            let max = repo
                .snapshots(&spec)
                .unwrap()
                .iter()
                .map(|x| x.index)
                .max()
                .unwrap_or(0);
            (spec, max)
        })
        .collect();
    for (base, derived) in repo.lineage() {
        if let (Some(&b), Some(&d)) = (latest.get(&base), latest.get(&derived)) {
            builder.link_snapshots(&base, b, &derived, d);
        }
    }
    let (graph, _matrices) = builder.finish();
    println!(
        "storage graph: {} matrices, {} edges, {} co-usage groups",
        graph.num_vertices() - 1,
        graph.num_edges(),
        graph.snapshots.len()
    );

    let scheme = RetrievalScheme::Independent;
    let mst = solver::mst(&graph)?;
    let spt = solver::spt(&graph)?;
    println!(
        "\nextremes: MST storage {:.0} (best possible), SPT storage {:.0} (full materialization)",
        mst.storage_cost(&graph),
        spt.storage_cost(&graph)
    );

    println!(
        "\n{:>5} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "alpha", "LAST Cs", "PAS-MT Cs", "PAS-PT Cs", "LAST ok", "MT ok", "PT ok"
    );
    for alpha in [1.1, 1.3, 1.5, 2.0, 3.0, 5.0] {
        let mut g = graph.clone();
        apply_alpha_budgets(&mut g, alpha, scheme)?;
        let last = solver::last(&g, alpha - 1.0)?;
        let mt = solver::pas_mt(&g, scheme)?;
        let pt = solver::pas_pt(&g, scheme)?;
        println!(
            "{:>5.1} {:>12.0} {:>12.0} {:>12.0} {:>8} {:>8} {:>8}",
            alpha,
            last.storage_cost(&g),
            mt.storage_cost(&g),
            pt.storage_cost(&g),
            last.satisfies_budgets(&g, scheme),
            mt.satisfies_budgets(&g, scheme),
            pt.satisfies_budgets(&g, scheme),
        );
    }
    println!("\n(PAS-MT/PT exploit the budgets to stay near the MST; LAST, blind to");
    println!(" group constraints, needs loose budgets before it leaves the SPT.)");

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
