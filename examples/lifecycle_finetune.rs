//! The full DNN modeling lifecycle (§I, Fig. 1): train a base model,
//! fine-tune variants for a new task, compare them with `dlv diff`,
//! archive everything into PAS under a recreation budget, and answer a
//! progressive inference query that never touches low-order bytes.
//!
//! Run with: `cargo run --release --example lifecycle_finetune`

use modelhub::dlv::{diff, ArchiveConfig, CommitRequest};
use modelhub::dnn::{
    fine_tune_setup, synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights,
};
use modelhub::ModelHub;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("modelhub-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let hub = ModelHub::init(&root)?;

    // Base task: 5-way classification.
    let base_net = zoo::alexnet_s(5);
    let base_data = synth_dataset(&SynthConfig {
        num_classes: 5,
        seed: 7,
        ..Default::default()
    });
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.05,
            ..Default::default()
        },
        snapshot_every: 8,
    };
    let base_result = trainer.train(&base_net, Weights::init(&base_net, 1)?, &base_data, 24)?;
    let mut req = CommitRequest::new("alexnet-base", base_net.clone());
    req.snapshots = base_result.snapshots.clone();
    req.log = base_result.log.clone();
    req.accuracy = Some(base_result.final_accuracy);
    req.comment = "base model on 5-way task".into();
    let base_key = hub.repo().commit(&req)?;
    println!(
        "base: {base_key} acc {:.1}%",
        base_result.final_accuracy * 100.0
    );

    // Fine-tune for a 3-way task with two hyperparameter alternations.
    let ft_data = synth_dataset(&SynthConfig {
        num_classes: 3,
        seed: 8,
        ..Default::default()
    });
    for (tag, lr, freeze) in [("a", 0.05f32, false), ("b", 0.01, true)] {
        let (ft_net, ft_init) = fine_tune_setup(&base_net, &base_result.weights, 3, 50)?;
        let mut hp = Hyperparams {
            base_lr: lr,
            ..Default::default()
        };
        if freeze {
            hp.layer_lr.insert("conv1".into(), 0.0);
        }
        let t = Trainer {
            hp: hp.clone(),
            snapshot_every: 8,
        };
        let r = t.train(&ft_net, ft_init, &ft_data, 24)?;
        let mut req = CommitRequest::new(&format!("alexnet-ft-{tag}"), ft_net);
        req.snapshots = r.snapshots.clone();
        req.log = r.log.clone();
        req.accuracy = Some(r.final_accuracy);
        req.parent = Some(base_key.to_string());
        req.hyperparams.insert("base_lr".into(), lr.to_string());
        req.hyperparams
            .insert("freeze_conv1".into(), freeze.to_string());
        req.comment = format!("fine-tuned variant {tag}");
        let key = hub.repo().commit(&req)?;
        println!("fine-tuned: {key} acc {:.1}%", r.final_accuracy * 100.0);
    }

    // dlv list + lineage.
    println!("\nrepository contents:");
    for v in hub.repo().list() {
        println!(
            "  {}  [{} snapshots]  {}",
            v.key, v.num_snapshots, v.comment
        );
    }
    println!("lineage: {:?}", hub.repo().lineage());

    // dlv diff between the two fine-tuned variants.
    let report = diff(hub.repo(), "alexnet-ft-a", "alexnet-ft-b")?;
    println!("\n{}", report.render());

    // dlv archive: all snapshots into PAS with a 2x recreation budget.
    let archive = hub.archive(&ArchiveConfig {
        alpha: 2.0,
        ..Default::default()
    })?;
    println!(
        "archived {} matrices over {} snapshots into {:?}: {} bytes on disk (budgets satisfied: {})",
        archive.num_matrices,
        archive.num_snapshots,
        archive.store,
        archive.bytes_on_disk,
        archive.satisfied
    );

    // Progressive inference against the archived base model.
    let mut planes_histogram = [0usize; 4];
    let mut bytes_frac = 0.0;
    let n = base_data.test.len().min(20);
    for (x, _) in base_data.test.iter().take(n) {
        let r = hub.progressive_eval("alexnet-base", x, 1)?;
        planes_histogram[r.planes_used - 1] += 1;
        bytes_frac += r.read_fraction() / n as f64;
    }
    println!(
        "\nprogressive eval over {n} queries: plane histogram {planes_histogram:?}, \
         avg bytes read {:.0}% of full precision",
        bytes_frac * 100.0
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
