//! Quickstart: train a small CNN, commit it to a ModelHub repository, and
//! inspect the recorded lifecycle artifacts.
//!
//! Run with: `cargo run --release --example quickstart`

use modelhub::dlv::CommitRequest;
use modelhub::dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::ModelHub;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("modelhub-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let hub = ModelHub::init(&root)?;
    println!("initialized repository at {}", root.display());

    // 1. Pick a reference architecture from the zoo and some data.
    let net = zoo::lenet_s(10);
    println!(
        "model: {} ({} parameters)",
        net.architecture_string(),
        net.param_count()?
    );
    let data = synth_dataset(&SynthConfig::default());

    // 2. Train with checkpointing — the modeling loop of Fig. 1.
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: 10,
    };
    let init = Weights::init(&net, 42)?;
    let result = trainer.train(&net, init, &data, 40)?;
    println!(
        "trained 40 iterations, final test accuracy {:.1}%",
        result.final_accuracy * 100.0
    );

    // 3. Commit: network + snapshots + logs + config files, in one version.
    let mut req = CommitRequest::new("lenet-quickstart", net);
    req.snapshots = result.snapshots.clone();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.hyperparams.insert("base_lr".into(), "0.08".into());
    req.files.push((
        "solver.cfg".into(),
        b"base_lr: 0.08\nmax_iter: 40\n".to_vec(),
    ));
    req.comment = "first quickstart model".into();
    let key = hub.repo().commit(&req)?;
    println!("committed as {key}");

    // 4. Explore: dlv list / desc.
    for v in hub.repo().list() {
        println!(
            "dlv list: {}  snaps={}  acc={:.3}  arch={}",
            v.key,
            v.num_snapshots,
            v.accuracy.unwrap_or(f64::NAN),
            v.architecture
        );
    }
    let desc = hub.repo().desc("lenet-quickstart")?;
    println!(
        "dlv desc: {} layers, loss {:.3} -> {:.3}",
        desc.layers.len(),
        desc.loss_curve.first().map(|(_, l)| *l).unwrap_or(0.0),
        desc.loss_curve.last().map(|(_, l)| *l).unwrap_or(0.0),
    );

    // 5. dlv eval against fresh data.
    let acc = hub.repo().eval("lenet-quickstart", &data.test)?;
    println!("dlv eval: accuracy {:.1}%", acc * 100.0);

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
