//! A tour of DQL: the four query archetypes from the paper (Queries 1-4),
//! executed against a freshly-built repository.
//!
//! Run with: `cargo run --release --example dql_tour`

use modelhub::dlv::CommitRequest;
use modelhub::dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::dql::QueryResult;
use modelhub::ModelHub;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("modelhub-dql-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut hub = ModelHub::init(&root)?;
    let data = synth_dataset(&SynthConfig {
        num_classes: 3,
        seed: 3,
        ..Default::default()
    });

    // Populate: two alexnet-family models and a lenet.
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.08,
        ..Default::default()
    });
    for (name, family) in [
        ("alexnet-origin", 1usize),
        ("alexnet-avgv1", 1),
        ("lenet-v1", 0),
    ] {
        let net = if family == 0 {
            zoo::lenet_s(3)
        } else {
            zoo::alexnet_s(3)
        };
        let r = trainer.train(&net, Weights::init(&net, 9)?, &data, 6)?;
        let mut req = CommitRequest::new(name, net);
        req.snapshots = vec![(6, r.weights)];
        req.accuracy = Some(r.final_accuracy);
        hub.repo().commit(&req)?;
    }
    hub.register_dataset("synth", data);

    // Query 1: select by metadata + structure.
    println!("-- Query 1: select models whose relu feeds a max pool --");
    let q1 = r#"select m1 where m1.name like "alexnet%" and m1["relu?"].next has POOL("MAX")"#;
    if let QueryResult::Versions(v) = hub.query(q1)? {
        for s in &v {
            println!("   {} ({})", s.key, s.architecture);
        }
    }

    // Query 2: slice a reusable feature extractor.
    println!("-- Query 2: slice conv1..fc7 out of the alexnets --");
    let q2 = r#"slice m2 from m1 where m1.name like "alexnet%"
                mutate m2.input = m1["conv1"] and m2.output = m1["fc7"]"#;
    if let QueryResult::Derived(d) = hub.query(q2)? {
        for dm in &d {
            println!(
                "   {} -> {} layers, {} params carried over",
                dm.source,
                dm.network.num_nodes(),
                dm.init.as_ref().map(|w| w.param_count()).unwrap_or(0)
            );
        }
    }

    // Query 3: construct variants by inserting layers.
    println!("-- Query 3: append a tanh after every conv (captured index) --");
    let q3 = r#"construct m2 from m1 where m1.name like "alexnet-avgv1%"
                mutate m1["conv(*)"].insert = TANH("tanh$1")"#;
    if let QueryResult::Derived(d) = hub.query(q3)? {
        for dm in &d {
            println!("   derived: {}", dm.derivation);
        }
    }

    // Query 4: enumerate (architecture x hyperparameter) combos, keep top.
    println!("-- Query 4: evaluate with a base_lr grid, keep the best 2 --");
    let q4 = r#"evaluate m from "alexnet-origin%"
                vary config.base_lr in [0.1, 0.01, 0.001]
                keep top(2, m["loss"], 5)"#;
    if let QueryResult::Evaluated(rows) = hub.query(q4)? {
        for r in &rows {
            println!(
                "   {} [{}] loss={:.3} acc={:.1}% kept={} committed={:?}",
                r.source,
                r.config,
                r.loss,
                r.accuracy * 100.0,
                r.kept,
                r.committed.as_ref().map(|k| k.to_string())
            );
        }
    }
    println!(
        "-- repository now holds {} versions --",
        hub.repo().list().len()
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
